//! Profile analysis: critical path, imbalance, and the
//! observed-vs-predicted explain loop.
//!
//! The executor returns a merged [`ProfileData`] stream (see
//! [`runtime::events`]); this module turns it into per-site facts:
//!
//! * **critical-path contribution** — sync episodes are aligned across
//!   processors by their dynamic visit number (`SyncArrive.arg`), so
//!   episode *k* at site *s* is every processor's *k*-th arrival there.
//!   The last arriver gated the episode; the gap between the last and
//!   second-last arrival is the slice of wall-clock only that site's
//!   imbalance can explain, and it is attributed to the last arriver.
//! * **load imbalance** — per-site last-arriver counts per processor,
//!   per-processor wait totals, and a log₂ histogram of per-arrival
//!   *slack* (how far before the last arriver each processor showed
//!   up), reusing the bucket layout of [`runtime::telemetry`].
//! * **observed vs predicted** — [`observed_vs_predicted`] joins two
//!   profiled runs against the optimizer's decision log: the *baseline*
//!   is the optimized plan with every decision site demoted back to a
//!   barrier (`spmd_opt::demote_sites`), so both runs share one
//!   canonical site walk and the per-site wait delta is exactly the
//!   wait the optimizer's placement saved (or did not).
//!
//! Ring overflow never invalidates a report: drops are counted per
//! [`ProfileData::dropped`] and surfaced in every rendering, and the
//! accounting identity `attempted == events + dropped` is checkable by
//! consumers ("zero *unreported* drops", not "zero drops").

use crate::json::Json;
use runtime::events::{EventKind, ProfileData, NO_SITE};
use runtime::telemetry::{SiteMeta, WaitHistogram, HIST_BUCKETS};

/// Aggregated profile facts for one canonical sync site.
#[derive(Clone, Debug, PartialEq)]
pub struct SiteProfile {
    /// Canonical site id.
    pub site: usize,
    /// Slot label from the canonical walk (empty when the stream holds
    /// a site the meta list does not know).
    pub label: String,
    /// The placed sync op's short name ("barrier", "neighbor flags",
    /// "counter", "eliminated").
    pub op: String,
    /// Complete episodes (all `nprocs` arrivals observed).
    pub episodes: u64,
    /// Arrivals that could not be matched into a complete episode
    /// (faulted attempts, ring drops).
    pub partial_arrivals: u64,
    /// Per-processor blocked time at this site, from release records.
    pub wait_ns_by_pid: Vec<u64>,
    /// Longest single wait seen at this site.
    pub max_wait_ns: u64,
    /// Critical-path contribution: Σ over episodes of
    /// (last − second-last arrival).
    pub crit_ns: u64,
    /// Total arrival spread: Σ over episodes of (last − first arrival).
    pub spread_ns: u64,
    /// How often each processor was the episode's last arriver.
    pub last_count_by_pid: Vec<u64>,
    /// Critical-path nanoseconds attributed to each processor (summed
    /// over the episodes it arrived last in).
    pub crit_ns_by_pid: Vec<u64>,
    /// Log₂ histogram of per-arrival slack (last arrival − this
    /// arrival), bucket layout of [`WaitHistogram`].
    pub slack_hist: [u64; HIST_BUCKETS],
    /// Spin→yield escalations inside this site's waits.
    pub yields: u64,
    /// Yield→park escalations inside this site's waits.
    pub parks: u64,
}

impl SiteProfile {
    fn new(site: usize, nprocs: usize) -> Self {
        SiteProfile {
            site,
            label: String::new(),
            op: String::new(),
            episodes: 0,
            partial_arrivals: 0,
            wait_ns_by_pid: vec![0; nprocs],
            max_wait_ns: 0,
            crit_ns: 0,
            spread_ns: 0,
            last_count_by_pid: vec![0; nprocs],
            crit_ns_by_pid: vec![0; nprocs],
            slack_hist: [0; HIST_BUCKETS],
            yields: 0,
            parks: 0,
        }
    }

    /// Total blocked time across processors.
    pub fn wait_ns(&self) -> u64 {
        self.wait_ns_by_pid.iter().sum()
    }

    /// The processor most often last to arrive (`None` when the site
    /// had no complete episode).
    pub fn worst_pid(&self) -> Option<usize> {
        let (pid, &n) = self
            .last_count_by_pid
            .iter()
            .enumerate()
            .max_by_key(|&(pid, &n)| (n, std::cmp::Reverse(pid)))?;
        (n > 0).then_some(pid)
    }
}

/// Supervisor / ambient event totals of one profiled execution.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ProfileMarks {
    /// Write-set checkpoints captured.
    pub checkpoints: u64,
    /// Rollbacks to the checkpoint.
    pub rollbacks: u64,
    /// Retries launched after a failed attempt.
    pub retries: u64,
    /// Spin→yield escalations (all, including outside sync waits).
    pub yields: u64,
    /// Yield→park escalations.
    pub parks: u64,
    /// Optimizer pair queries answered warm (memo hit).
    pub fme_hits: u64,
    /// Optimizer pair queries that ran fresh FME scans.
    pub fme_misses: u64,
    /// Nanoseconds inside warm pair queries.
    pub fme_hit_ns: u64,
    /// Nanoseconds inside fresh pair queries.
    pub fme_miss_ns: u64,
}

/// The analyzed profile of one execution.
#[derive(Clone, Debug, PartialEq)]
pub struct ProfileReport {
    /// Worker count the stream was recorded with.
    pub nprocs: usize,
    /// Writer tracks (workers + supervisor).
    pub tracks: usize,
    /// Ring capacity per track.
    pub capacity: usize,
    /// Events overwritten by ring overflow (reported, never silent).
    pub dropped: u64,
    /// Live events analyzed.
    pub events: u64,
    /// Recovery epochs spanned (1 = single clean attempt).
    pub epochs: u64,
    /// Exactly how many analyzed events carry the saturated epoch
    /// stamp (`u16::MAX`). Zero in any sane run — reaching it means
    /// the recovery supervisor retried ≥ 65535 times, and attempts
    /// past that all share the final epoch, so their episode keys may
    /// collide (those episodes surface as `partial_arrivals`, never as
    /// bogus episodes). The count makes the accounting exact: every
    /// event is either cleanly stamped or tallied here.
    pub epoch_clamp: u64,
    /// Per-site facts, sorted by site id.
    pub sites: Vec<SiteProfile>,
    /// Per-processor region wall-clock (Σ RegionEnd − RegionBegin).
    pub region_ns_by_pid: Vec<u64>,
    /// Supervisor and ambient totals.
    pub marks: ProfileMarks,
}

impl ProfileReport {
    /// Total critical-path nanoseconds across sites.
    pub fn total_crit_ns(&self) -> u64 {
        self.sites.iter().map(|s| s.crit_ns).sum()
    }

    /// Total blocked nanoseconds across sites and processors.
    pub fn total_wait_ns(&self) -> u64 {
        self.sites.iter().map(|s| s.wait_ns()).sum()
    }

    /// The site facts for `site`, if the stream saw it.
    pub fn site(&self, site: usize) -> Option<&SiteProfile> {
        self.sites.iter().find(|s| s.site == site)
    }
}

/// Analyze a merged event stream against the plan's site walk.
///
/// `metas` is the canonical site list ([`crate::site_metas`]) of the
/// plan the run executed; sites present in the stream but not in
/// `metas` (possible after a plan mutation) keep empty labels rather
/// than being dropped.
pub fn analyze(data: &ProfileData, metas: &[SiteMeta], nprocs: usize) -> ProfileReport {
    let nprocs = nprocs.max(1);
    let mut sites: Vec<SiteProfile> = Vec::new();
    let site_ix = |sites: &mut Vec<SiteProfile>, id: usize| -> usize {
        match sites.binary_search_by_key(&id, |s| s.site) {
            Ok(k) => k,
            Err(k) => {
                sites.insert(k, SiteProfile::new(id, nprocs));
                k
            }
        }
    };

    // Pass 1: waits, escalation attribution, region spans, marks.
    // Per-track state is enough: events within one track are in
    // recording order after the (t_ns, track) merge sort, because each
    // single-writer track's timestamps are monotone.
    let mut open_site: Vec<Option<usize>> = vec![None; data.tracks.max(1)];
    let mut region_begin: Vec<Option<u64>> = vec![None; data.tracks.max(1)];
    let mut region_ns_by_pid = vec![0u64; nprocs];
    let mut marks = ProfileMarks::default();
    let mut max_epoch = 0u16;
    let mut clamped_events = 0u64;
    for e in &data.events {
        max_epoch = max_epoch.max(e.epoch);
        if e.epoch == u16::MAX {
            clamped_events += 1;
        }
        let track = (e.track as usize).min(open_site.len() - 1);
        match e.kind {
            EventKind::SyncArrive => open_site[track] = Some(e.site as usize),
            EventKind::SyncRelease => {
                let k = site_ix(&mut sites, e.site as usize);
                if (track) < nprocs {
                    sites[k].wait_ns_by_pid[track] += e.arg;
                }
                sites[k].max_wait_ns = sites[k].max_wait_ns.max(e.arg);
                open_site[track] = None;
            }
            EventKind::RegionBegin => region_begin[track] = Some(e.t_ns),
            EventKind::RegionEnd => {
                if let (Some(t0), true) = (region_begin[track].take(), track < nprocs) {
                    region_ns_by_pid[track] += e.t_ns.saturating_sub(t0);
                }
            }
            EventKind::EscalateYield => {
                marks.yields += 1;
                if let Some(s) = open_site[track] {
                    let k = site_ix(&mut sites, s);
                    sites[k].yields += 1;
                }
            }
            EventKind::EscalatePark => {
                marks.parks += 1;
                if let Some(s) = open_site[track] {
                    let k = site_ix(&mut sites, s);
                    sites[k].parks += 1;
                }
            }
            EventKind::Checkpoint => marks.checkpoints += 1,
            EventKind::Rollback => marks.rollbacks += 1,
            EventKind::Retry => marks.retries += 1,
            EventKind::FmeHit => {
                marks.fme_hits += 1;
                marks.fme_hit_ns += e.arg;
            }
            EventKind::FmeMiss => {
                marks.fme_misses += 1;
                marks.fme_miss_ns += e.arg;
            }
        }
    }

    // Pass 2: episode alignment. Key = (epoch, site, visit); an episode
    // is complete when all nprocs arrivals are present. Each arrival
    // carries its writer track — SyncArrive is only ever recorded by
    // worker `pid` on track `pid` — so attribution uses real processor
    // ids, not the arrival's position in the time-sorted merge.
    use std::collections::HashMap;
    let mut episodes: HashMap<(u16, u32, u64), Vec<(u64, usize)>> = HashMap::new();
    for e in &data.events {
        if e.kind == EventKind::SyncArrive && e.site != NO_SITE {
            episodes
                .entry((e.epoch, e.site, e.arg))
                .or_default()
                .push((e.t_ns, e.track as usize));
        }
    }
    for ((_, site, _), mut by_pid) in episodes {
        let k = site_ix(&mut sites, site as usize);
        if by_pid.len() != nprocs || by_pid.iter().any(|&(_, p)| p >= nprocs) {
            sites[k].partial_arrivals += by_pid.len() as u64;
            continue;
        }
        // Sort by arrival time; the pid rides along with each entry.
        by_pid.sort();
        let (t_first, _) = by_pid[0];
        let (t_last, last_pid) = by_pid[nprocs - 1];
        let crit = if nprocs >= 2 {
            t_last - by_pid[nprocs - 2].0
        } else {
            0
        };
        sites[k].episodes += 1;
        sites[k].crit_ns += crit;
        sites[k].spread_ns += t_last - t_first;
        sites[k].last_count_by_pid[last_pid] += 1;
        sites[k].crit_ns_by_pid[last_pid] += crit;
        for &(t, _) in &by_pid {
            sites[k].slack_hist[WaitHistogram::bucket_of(t_last - t)] += 1;
        }
    }

    for s in &mut sites {
        if let Some(m) = metas.iter().find(|m| m.id == s.site) {
            s.label = m.label.clone();
            s.op = m.op.clone();
        }
    }

    ProfileReport {
        nprocs,
        tracks: data.tracks,
        capacity: data.capacity,
        dropped: data.dropped,
        events: data.events.len() as u64,
        epochs: max_epoch as u64 + 1,
        epoch_clamp: clamped_events,
        sites,
        region_ns_by_pid,
        marks,
    }
}

/// One row of the observed-vs-predicted join: what the optimizer did at
/// a site, and what the wait delta between the barrier baseline and the
/// optimized run actually was.
#[derive(Clone, Debug, PartialEq)]
pub struct OvpRow {
    /// Canonical site id (same walk in both plans).
    pub site: usize,
    /// Slot label.
    pub label: String,
    /// What the optimizer placed ("eliminated", "neighbor flags",
    /// "counter").
    pub placed: String,
    /// The optimizer's reason string from the decision log.
    pub reason: String,
    /// Blocked time at this site in the all-barrier baseline run.
    pub baseline_wait_ns: u64,
    /// Blocked time at this site in the optimized run (0 for an
    /// eliminated site — there is nothing to wait on).
    pub observed_wait_ns: u64,
    /// Baseline − observed (negative when the replacement waited
    /// *longer* than the barrier it replaced).
    pub saved_wait_ns: i64,
    /// Critical-path contribution in the baseline run.
    pub baseline_crit_ns: u64,
    /// Critical-path contribution in the optimized run.
    pub observed_crit_ns: u64,
    /// True when the placement saved wall-wait as predicted.
    pub realized: bool,
}

/// Join the decision log against a baseline and an optimized profile.
///
/// Emits one row per decision whose placement differs from a kept
/// barrier — exactly the sites where the optimizer claimed a win. The
/// baseline profile must come from the optimized plan with those same
/// sites demoted (`spmd_opt::demote_sites`), which keeps the canonical
/// walk — and therefore every site id — identical between the runs.
pub fn observed_vs_predicted(
    decisions: &[spmd_opt::Decision],
    baseline: &ProfileReport,
    optimized: &ProfileReport,
) -> Vec<OvpRow> {
    decisions
        .iter()
        .filter(|d| !matches!(d.placed, spmd_opt::SyncOp::Barrier))
        .map(|d| {
            let base = baseline.site(d.site);
            let opt = optimized.site(d.site);
            let baseline_wait_ns = base.map(|s| s.wait_ns()).unwrap_or(0);
            let observed_wait_ns = opt.map(|s| s.wait_ns()).unwrap_or(0);
            let saved = baseline_wait_ns as i64 - observed_wait_ns as i64;
            OvpRow {
                site: d.site,
                label: d.label.clone(),
                placed: d.placed_str().to_string(),
                reason: d.reason.clone(),
                baseline_wait_ns,
                observed_wait_ns,
                saved_wait_ns: saved,
                baseline_crit_ns: base.map(|s| s.crit_ns).unwrap_or(0),
                observed_crit_ns: opt.map(|s| s.crit_ns).unwrap_or(0),
                realized: saved > 0,
            }
        })
        .collect()
}

fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000 {
        format!("{:.2}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.2}us", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

fn fmt_ns_i(ns: i64) -> String {
    if ns < 0 {
        format!("-{}", fmt_ns(ns.unsigned_abs()))
    } else {
        fmt_ns(ns as u64)
    }
}

/// The human-readable critical-path and imbalance table (what
/// `beopt --run --profile` prints).
pub fn render_profile(r: &ProfileReport) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "--- sync profile (P={}, {} epoch(s), {} events, {} dropped) ---\n",
        r.nprocs, r.epochs, r.events, r.dropped
    ));
    let total_crit = r.total_crit_ns();
    out.push_str(&format!(
        "{:<5} {:<14} {:<30} {:>6} {:>10} {:>6} {:>10} {:>10} {:>9}\n",
        "site", "sync", "label", "eps", "crit", "%crit", "spread", "wait", "last-most"
    ));
    for s in &r.sites {
        let pct = if total_crit > 0 {
            format!("{:.1}%", s.crit_ns as f64 * 100.0 / total_crit as f64)
        } else {
            "-".to_string()
        };
        let worst = match s.worst_pid() {
            Some(p) => format!("P{p}×{}", s.last_count_by_pid[p]),
            None => "-".to_string(),
        };
        out.push_str(&format!(
            "s{:<4} {:<14} {:<30} {:>6} {:>10} {:>6} {:>10} {:>10} {:>9}\n",
            s.site,
            s.op,
            s.label,
            s.episodes,
            fmt_ns(s.crit_ns),
            pct,
            fmt_ns(s.spread_ns),
            fmt_ns(s.wait_ns()),
            worst,
        ));
    }
    out.push_str(&format!(
        "critical path {} | wait {} | escalations {}y/{}p",
        fmt_ns(total_crit),
        fmt_ns(r.total_wait_ns()),
        r.marks.yields,
        r.marks.parks
    ));
    if r.marks.retries > 0 || r.marks.rollbacks > 0 {
        out.push_str(&format!(
            " | recovery {}ckpt/{}rb/{}retry",
            r.marks.checkpoints, r.marks.rollbacks, r.marks.retries
        ));
    }
    if r.marks.fme_hits + r.marks.fme_misses > 0 {
        out.push_str(&format!(
            " | fme {}h/{}m {}",
            r.marks.fme_hits,
            r.marks.fme_misses,
            fmt_ns(r.marks.fme_hit_ns + r.marks.fme_miss_ns)
        ));
    }
    out.push('\n');
    if r.dropped > 0 {
        out.push_str(&format!(
            "note: ring overflow dropped {} oldest events (capacity {}/track); totals under-count\n",
            r.dropped, r.capacity
        ));
    }
    if r.epoch_clamp > 0 {
        out.push_str(&format!(
            "note: recovery epoch stamp saturated at {}; {} event(s) carry the saturated stamp and their episodes count as partial\n",
            u16::MAX,
            r.epoch_clamp
        ));
    }
    out
}

/// The observed-vs-predicted table: per eliminated/replaced site, what
/// the barrier baseline waited there vs what the optimized run did.
pub fn render_saved_wait(rows: &[OvpRow]) -> String {
    let mut out = String::new();
    out.push_str("--- observed vs predicted ---\n");
    if rows.is_empty() {
        out.push_str("(the optimizer kept every barrier — nothing to compare)\n");
        return out;
    }
    out.push_str(&format!(
        "{:<5} {:<30} {:<15} {:>12} {:>12} {:>12} {:>9}\n",
        "site", "label", "placed", "base-wait", "obs-wait", "saved", "realized"
    ));
    let mut total_saved = 0i64;
    for row in rows {
        total_saved += row.saved_wait_ns;
        out.push_str(&format!(
            "s{:<4} {:<30} {:<15} {:>12} {:>12} {:>12} {:>9}\n",
            row.site,
            row.label,
            row.placed,
            fmt_ns(row.baseline_wait_ns),
            fmt_ns(row.observed_wait_ns),
            fmt_ns_i(row.saved_wait_ns),
            if row.realized { "yes" } else { "no" },
        ));
    }
    let realized = rows.iter().filter(|r| r.realized).count();
    out.push_str(&format!(
        "saved {} across {} site(s); {}/{} realized the predicted win\n",
        fmt_ns_i(total_saved),
        rows.len(),
        realized,
        rows.len()
    ));
    out
}

fn hist_json(hist: &[u64; HIST_BUCKETS]) -> Json {
    let mut j = Json::obj();
    for (k, &c) in hist.iter().enumerate() {
        if c > 0 {
            j = j.set(&WaitHistogram::bucket_floor(k).to_string(), c);
        }
    }
    j
}

fn u64s(v: &[u64]) -> Json {
    Json::Arr(v.iter().map(|&x| Json::Num(x as f64)).collect())
}

/// The profile document (what `--profile-json` writes). Deterministic
/// member order; round-trips through [`crate::json::parse`].
pub fn profile_json(program: &str, r: &ProfileReport, ovp: Option<&[OvpRow]>) -> Json {
    let sites: Vec<Json> = r
        .sites
        .iter()
        .map(|s| {
            Json::obj()
                .set("site", s.site)
                .set("label", s.label.as_str())
                .set("sync", s.op.as_str())
                .set("episodes", s.episodes)
                .set("partial_arrivals", s.partial_arrivals)
                .set("crit_ns", s.crit_ns)
                .set("spread_ns", s.spread_ns)
                .set("wait_ns", s.wait_ns())
                .set("max_wait_ns", s.max_wait_ns)
                .set("wait_ns_by_pid", u64s(&s.wait_ns_by_pid))
                .set("last_count_by_pid", u64s(&s.last_count_by_pid))
                .set("crit_ns_by_pid", u64s(&s.crit_ns_by_pid))
                .set("slack_hist", hist_json(&s.slack_hist))
                .set("yields", s.yields)
                .set("parks", s.parks)
        })
        .collect();
    let mut doc = Json::obj()
        .set("program", program)
        .set("nprocs", r.nprocs)
        .set("tracks", r.tracks)
        .set("capacity", r.capacity)
        .set("events", r.events)
        .set("dropped", r.dropped)
        .set("attempted", r.events + r.dropped)
        .set("epochs", r.epochs)
        .set("epoch_clamp", r.epoch_clamp)
        .set("total_crit_ns", r.total_crit_ns())
        .set("total_wait_ns", r.total_wait_ns())
        .set("region_ns_by_pid", u64s(&r.region_ns_by_pid))
        .set(
            "marks",
            Json::obj()
                .set("checkpoints", r.marks.checkpoints)
                .set("rollbacks", r.marks.rollbacks)
                .set("retries", r.marks.retries)
                .set("yields", r.marks.yields)
                .set("parks", r.marks.parks)
                .set("fme_hits", r.marks.fme_hits)
                .set("fme_misses", r.marks.fme_misses)
                .set("fme_hit_ns", r.marks.fme_hit_ns)
                .set("fme_miss_ns", r.marks.fme_miss_ns),
        )
        .set("sites", Json::Arr(sites));
    if let Some(rows) = ovp {
        doc = doc.set(
            "observed_vs_predicted",
            Json::Arr(
                rows.iter()
                    .map(|row| {
                        Json::obj()
                            .set("site", row.site)
                            .set("label", row.label.as_str())
                            .set("placed", row.placed.as_str())
                            .set("reason", row.reason.as_str())
                            .set("baseline_wait_ns", row.baseline_wait_ns)
                            .set("observed_wait_ns", row.observed_wait_ns)
                            .set("saved_wait_ns", Json::Num(row.saved_wait_ns as f64))
                            .set("baseline_crit_ns", row.baseline_crit_ns)
                            .set("observed_crit_ns", row.observed_crit_ns)
                            .set("realized", row.realized)
                    })
                    .collect(),
            ),
        );
    }
    doc
}

#[cfg(test)]
mod tests {
    use super::*;
    use runtime::events::{ProfileEvent, ProfileOptions, Profiler};

    fn meta(id: usize, label: &str, op: &str) -> SiteMeta {
        SiteMeta {
            id,
            kind: "phase-after".into(),
            label: label.into(),
            op: op.into(),
        }
    }

    fn ev(kind: EventKind, site: u32, track: u16, arg: u64, t_ns: u64) -> ProfileEvent {
        ProfileEvent {
            t_ns,
            arg,
            site,
            track,
            epoch: 0,
            kind,
        }
    }

    /// Two processors, two episodes at site 0. P1 arrives last both
    /// times, 100ns and 50ns after P0.
    fn two_episode_data() -> ProfileData {
        let p = Profiler::new(2, ProfileOptions { capacity: 64 });
        p.record_at(0, EventKind::RegionBegin, NO_SITE, 0, 0);
        p.record_at(1, EventKind::RegionBegin, NO_SITE, 0, 5);
        p.record_at(0, EventKind::SyncArrive, 0, 0, 100);
        p.record_at(1, EventKind::SyncArrive, 0, 0, 200);
        p.record_at(0, EventKind::SyncRelease, 0, 110, 210);
        p.record_at(1, EventKind::SyncRelease, 0, 10, 210);
        p.record_at(0, EventKind::SyncArrive, 0, 1, 300);
        p.record_at(1, EventKind::SyncArrive, 0, 1, 350);
        p.record_at(0, EventKind::SyncRelease, 0, 60, 360);
        p.record_at(1, EventKind::SyncRelease, 0, 10, 360);
        p.record_at(0, EventKind::RegionEnd, NO_SITE, 1, 400);
        p.record_at(1, EventKind::RegionEnd, NO_SITE, 1, 405);
        p.snapshot()
    }

    #[test]
    fn last_arriver_attribution_finds_the_straggler() {
        let data = two_episode_data();
        let r = analyze(&data, &[meta(0, "after DOALL i", "barrier")], 2);
        assert_eq!(r.sites.len(), 1);
        let s = &r.sites[0];
        assert_eq!(s.episodes, 2);
        assert_eq!(s.partial_arrivals, 0);
        // Episode 0: last−second-last = 200−100 = 100; episode 1: 50.
        assert_eq!(s.crit_ns, 150);
        assert_eq!(s.spread_ns, 150);
        assert_eq!(s.last_count_by_pid, vec![0, 2]);
        assert_eq!(s.crit_ns_by_pid, vec![0, 150]);
        assert_eq!(s.worst_pid(), Some(1));
        assert_eq!(s.wait_ns_by_pid, vec![170, 20]);
        assert_eq!(s.max_wait_ns, 110);
        assert_eq!(s.label, "after DOALL i");
        assert_eq!(r.region_ns_by_pid, vec![400, 400]);
        assert_eq!(r.total_crit_ns(), 150);
        // Slack histogram: 2 last-arrivals at slack 0 (bucket 0), one
        // at 100 (bucket 6: [64,128)), one at 50 (bucket 5: [32,64)).
        assert_eq!(s.slack_hist[0], 2);
        assert_eq!(s.slack_hist[6], 1);
        assert_eq!(s.slack_hist[5], 1);
    }

    /// The straggler is pid 0 — regression for conflating arrival rank
    /// in the time-sorted merge with processor id: the merged stream is
    /// sorted by time, so rank-as-pid always blamed the last index.
    #[test]
    fn straggler_pid_zero_is_blamed() {
        let p = Profiler::new(2, ProfileOptions { capacity: 64 });
        p.record_at(1, EventKind::SyncArrive, 0, 0, 100);
        p.record_at(0, EventKind::SyncArrive, 0, 0, 250);
        p.record_at(1, EventKind::SyncRelease, 0, 150, 260);
        p.record_at(0, EventKind::SyncRelease, 0, 10, 260);
        let r = analyze(&p.snapshot(), &[], 2);
        let s = r.site(0).unwrap();
        assert_eq!(s.episodes, 1);
        assert_eq!(s.crit_ns, 150);
        assert_eq!(s.last_count_by_pid, vec![1, 0]);
        assert_eq!(s.crit_ns_by_pid, vec![150, 0]);
        assert_eq!(s.worst_pid(), Some(0));
        assert_eq!(s.wait_ns_by_pid, vec![10, 150]);
    }

    /// An arrival from a track past the worker range (malformed stream)
    /// can never index the per-pid arrays; the episode counts as
    /// partial instead.
    #[test]
    fn out_of_range_track_arrivals_are_partial() {
        let p = Profiler::new(3, ProfileOptions { capacity: 16 });
        p.record_at(0, EventKind::SyncArrive, 1, 0, 10);
        p.record_at(2, EventKind::SyncArrive, 1, 0, 20); // supervisor track
        let r = analyze(&p.snapshot(), &[], 2);
        let s = r.site(1).unwrap();
        assert_eq!(s.episodes, 0);
        assert_eq!(s.partial_arrivals, 2);
    }

    #[test]
    fn epoch_clamp_is_flagged_and_rendered() {
        let mut e1 = ev(EventKind::SyncArrive, 0, 0, 0, 1);
        e1.epoch = u16::MAX;
        let mut e2 = ev(EventKind::SyncRelease, 0, 0, 5, 2);
        e2.epoch = u16::MAX;
        let mut e3 = ev(EventKind::SyncArrive, 0, 0, 1, 3);
        e3.epoch = 9; // a normally-stamped event is *not* tallied
        let data = ProfileData {
            tracks: 1,
            capacity: 16,
            dropped: 0,
            events: vec![e1, e2, e3],
        };
        let r = analyze(&data, &[], 1);
        // Accounting-exact: exactly the two saturated-stamp events.
        assert_eq!(r.epoch_clamp, 2);
        assert_eq!(r.epochs, 65536);
        assert!(render_profile(&r).contains("saturated at 65535"));
        assert!(render_profile(&r).contains("2 event(s)"));
        let doc = profile_json("x", &r, None);
        assert_eq!(doc.get("epoch_clamp").unwrap().as_u64(), Some(2));
        let clean = analyze(&two_episode_data(), &[], 2);
        assert_eq!(clean.epoch_clamp, 0);
    }

    #[test]
    fn incomplete_episodes_are_counted_not_attributed() {
        let p = Profiler::new(3, ProfileOptions { capacity: 16 });
        // Only 2 of 3 arrivals: the faulted attempt's torn episode.
        p.record_at(0, EventKind::SyncArrive, 4, 0, 10);
        p.record_at(1, EventKind::SyncArrive, 4, 0, 20);
        let r = analyze(&p.snapshot(), &[], 3);
        let s = r.site(4).unwrap();
        assert_eq!(s.episodes, 0);
        assert_eq!(s.crit_ns, 0);
        assert_eq!(s.partial_arrivals, 2);
    }

    #[test]
    fn escalations_attribute_to_the_enclosing_wait() {
        let evs = vec![
            ev(EventKind::SyncArrive, 2, 0, 0, 100),
            ev(EventKind::EscalateYield, NO_SITE, 0, 64, 150),
            ev(EventKind::EscalatePark, NO_SITE, 0, 256, 180),
            ev(EventKind::SyncRelease, 2, 0, 120, 220),
            // Outside any wait: counted globally, not per-site.
            ev(EventKind::EscalateYield, NO_SITE, 0, 4, 300),
        ];
        let data = ProfileData {
            tracks: 1,
            capacity: 16,
            dropped: 0,
            events: evs,
        };
        let r = analyze(&data, &[], 1);
        let s = r.site(2).unwrap();
        assert_eq!((s.yields, s.parks), (1, 1));
        assert_eq!((r.marks.yields, r.marks.parks), (2, 1));
    }

    #[test]
    fn supervisor_marks_and_fme_totals_roll_up() {
        let evs = vec![
            ev(EventKind::FmeMiss, NO_SITE, 0, 1000, 1),
            ev(EventKind::FmeHit, NO_SITE, 0, 10, 2),
            ev(EventKind::Checkpoint, NO_SITE, 1, 46, 3),
            ev(EventKind::Rollback, NO_SITE, 1, 46, 4),
            ev(EventKind::Retry, NO_SITE, 1, 1, 5),
        ];
        let data = ProfileData {
            tracks: 2,
            capacity: 16,
            dropped: 0,
            events: evs,
        };
        let r = analyze(&data, &[], 1);
        assert_eq!(r.marks.fme_hits, 1);
        assert_eq!(r.marks.fme_misses, 1);
        assert_eq!(r.marks.fme_hit_ns, 10);
        assert_eq!(r.marks.fme_miss_ns, 1000);
        assert_eq!(r.marks.checkpoints, 1);
        assert_eq!(r.marks.rollbacks, 1);
        assert_eq!(r.marks.retries, 1);
    }

    fn decision(site: usize, label: &str, placed: spmd_opt::SyncOp) -> spmd_opt::Decision {
        spmd_opt::Decision {
            site,
            label: label.into(),
            kind: spmd_opt::SlotKind::PhaseAfter,
            outcome: None,
            producer: None,
            placed,
            src_stmts: 1,
            dst_stmts: 1,
            reason: "test".into(),
        }
    }

    #[test]
    fn observed_vs_predicted_joins_on_site_id() {
        let mk = |crit: u64, wait: u64| {
            let mut s = SiteProfile::new(1, 2);
            s.crit_ns = crit;
            s.wait_ns_by_pid = vec![wait / 2; 2];
            ProfileReport {
                nprocs: 2,
                tracks: 2,
                capacity: 64,
                dropped: 0,
                events: 4,
                epochs: 1,
                epoch_clamp: 0,
                sites: vec![s],
                region_ns_by_pid: vec![0, 0],
                marks: ProfileMarks::default(),
            }
        };
        let base = mk(500, 10_000);
        let opt = mk(100, 2_000);
        let decisions = vec![
            decision(1, "after DOALL i", spmd_opt::SyncOp::None),
            decision(3, "end of region r0", spmd_opt::SyncOp::Barrier),
        ];
        let rows = observed_vs_predicted(&decisions, &base, &opt);
        // The kept barrier produces no row; the eliminated site joins.
        assert_eq!(rows.len(), 1);
        let row = &rows[0];
        assert_eq!(row.site, 1);
        assert_eq!(row.placed, "eliminated");
        assert_eq!(row.baseline_wait_ns, 10_000);
        assert_eq!(row.observed_wait_ns, 2_000);
        assert_eq!(row.saved_wait_ns, 8_000);
        assert!(row.realized);
        // A site missing from the optimized profile (truly eliminated —
        // no events at all) observes zero wait.
        let empty = ProfileReport {
            sites: Vec::new(),
            ..opt.clone()
        };
        let rows = observed_vs_predicted(&decisions, &base, &empty);
        assert_eq!(rows[0].observed_wait_ns, 0);
        assert_eq!(rows[0].saved_wait_ns, 10_000);
    }

    #[test]
    fn negative_savings_render_and_report_unrealized() {
        let row = OvpRow {
            site: 2,
            label: "bottom of DO t".into(),
            placed: "counter".into(),
            reason: "replaced".into(),
            baseline_wait_ns: 1_000,
            observed_wait_ns: 3_000,
            saved_wait_ns: -2_000,
            baseline_crit_ns: 0,
            observed_crit_ns: 0,
            realized: false,
        };
        let txt = render_saved_wait(&[row]);
        assert!(txt.contains("-2.00us"));
        assert!(txt.contains("0/1 realized"));
    }

    #[test]
    fn rendering_flags_ring_drops() {
        let data = two_episode_data();
        let mut r = analyze(&data, &[meta(0, "after DOALL i", "barrier")], 2);
        let txt = render_profile(&r);
        assert!(txt.contains("0 dropped"));
        assert!(!txt.contains("ring overflow"));
        r.dropped = 7;
        let txt = render_profile(&r);
        assert!(txt.contains("ring overflow dropped 7"));
    }

    #[test]
    fn profile_json_round_trips() {
        let data = two_episode_data();
        let r = analyze(&data, &[meta(0, "after DOALL i", "barrier")], 2);
        let rows = vec![OvpRow {
            site: 0,
            label: "after DOALL i".into(),
            placed: "neighbor flags".into(),
            reason: "replaced".into(),
            baseline_wait_ns: 190,
            observed_wait_ns: 20,
            saved_wait_ns: 170,
            baseline_crit_ns: 150,
            observed_crit_ns: 10,
            realized: true,
        }];
        let doc = profile_json("jacobi", &r, Some(&rows));
        assert_eq!(doc.get("attempted").unwrap().as_u64(), Some(r.events));
        assert_eq!(doc.get("dropped").unwrap().as_u64(), Some(0));
        let sites = doc.get("sites").unwrap().as_arr().unwrap();
        assert_eq!(sites[0].get("crit_ns").unwrap().as_u64(), Some(150));
        let ovp = doc.get("observed_vs_predicted").unwrap().as_arr().unwrap();
        assert_eq!(ovp[0].get("saved_wait_ns").unwrap().as_num(), Some(170.0));
        let txt = doc.to_string_pretty();
        assert_eq!(crate::json::parse(&txt).unwrap(), doc);
    }
}
