//! Conjunctive systems of affine constraints and Fourier-Motzkin
//! elimination in the paper's scan order.

use crate::constraint::{Constraint, ConstraintKind};
use crate::linexpr::LinExpr;
use crate::var::{VarId, VarTable};
use std::collections::BTreeSet;
use std::fmt;

/// A conjunction of affine constraints.
///
/// The `contradictory` flag records that normalization discovered an
/// outright contradiction (e.g. `-1 >= 0` or `2i == 5`); such a system is
/// inconsistent regardless of its remaining constraints.
#[derive(Clone, Default)]
pub struct System {
    constraints: Vec<Constraint>,
    contradictory: bool,
}

impl System {
    /// The empty (always-true) system.
    pub fn new() -> Self {
        Self::default()
    }

    /// A system that is unsatisfiable by construction.
    pub fn contradiction() -> Self {
        System {
            constraints: Vec::new(),
            contradictory: true,
        }
    }

    /// Add `expr >= 0`.
    pub fn add_ge(&mut self, expr: LinExpr) {
        self.push(Constraint::ge_zero(expr));
    }

    /// Add `expr == 0`.
    pub fn add_eq(&mut self, expr: LinExpr) {
        self.push(Constraint::eq_zero(expr));
    }

    /// Add `lo <= e` i.e. `e - lo >= 0`.
    pub fn add_le(&mut self, lo: LinExpr, e: LinExpr) {
        self.add_ge(e - lo);
    }

    /// Add a lower and an upper bound: `lo <= e <= hi`.
    pub fn add_range(&mut self, e: LinExpr, lo: LinExpr, hi: LinExpr) {
        self.add_ge(e.clone() - lo);
        self.add_ge(hi - e);
    }

    /// Add a constraint, normalizing it first.
    pub fn push(&mut self, mut c: Constraint) {
        if self.contradictory {
            return;
        }
        if !c.normalize() {
            self.contradictory = true;
            self.constraints.clear();
            return;
        }
        if !c.is_trivially_true() {
            self.constraints.push(c);
        }
    }

    /// Conjoin all constraints of `other` into `self`.
    pub fn conjoin(&mut self, other: &System) {
        if other.contradictory {
            self.contradictory = true;
            self.constraints.clear();
            return;
        }
        for c in &other.constraints {
            self.push(c.clone());
        }
    }

    /// The constraints currently in the system.
    pub fn constraints(&self) -> &[Constraint] {
        &self.constraints
    }

    /// Number of constraints.
    pub fn len(&self) -> usize {
        self.constraints.len()
    }

    /// True if the system has no constraints (and is not contradictory).
    pub fn is_empty(&self) -> bool {
        self.constraints.is_empty() && !self.contradictory
    }

    /// True if normalization already discovered a contradiction.
    pub fn is_contradictory(&self) -> bool {
        self.contradictory
    }

    /// All variables mentioned by the system.
    pub fn vars(&self) -> BTreeSet<VarId> {
        let mut s = BTreeSet::new();
        for c in &self.constraints {
            for (v, _) in c.expr.terms() {
                s.insert(v);
            }
        }
        s
    }

    /// Substitute `replacement` for `v` in every constraint.
    pub fn substitute(&mut self, v: VarId, replacement: &LinExpr) {
        if self.contradictory {
            return;
        }
        let old = std::mem::take(&mut self.constraints);
        for c in old {
            let expr = c.expr.substituted(v, replacement);
            self.push(Constraint { expr, kind: c.kind });
        }
    }

    /// Remove exact duplicates (after normalization they compare equal).
    pub fn dedup(&mut self) {
        let mut seen: BTreeSet<(u8, Vec<(VarId, i128)>, i128)> = BTreeSet::new();
        self.constraints.retain(|c| {
            let key = (
                match c.kind {
                    ConstraintKind::GeZero => 0u8,
                    ConstraintKind::EqZero => 1u8,
                },
                c.expr.terms().collect::<Vec<_>>(),
                c.expr.constant_term(),
            );
            seen.insert(key)
        });
    }

    /// Use equalities with a ±1 coefficient to substitute variables away.
    /// This is exact over the integers and keeps FME cheap.
    pub fn propagate_unit_equalities(&mut self) {
        loop {
            if self.contradictory {
                return;
            }
            let mut target: Option<(usize, VarId, LinExpr)> = None;
            'outer: for (idx, c) in self.constraints.iter().enumerate() {
                if c.kind != ConstraintKind::EqZero {
                    continue;
                }
                for (v, coef) in c.expr.terms() {
                    if coef == 1 || coef == -1 {
                        // coef*v + rest == 0  =>  v = -rest/coef = -coef*rest
                        let mut rest = c.expr.clone();
                        rest.set_coeff(v, 0);
                        let replacement = rest.scaled(-coef);
                        target = Some((idx, v, replacement));
                        break 'outer;
                    }
                }
            }
            match target {
                None => return,
                Some((idx, v, replacement)) => {
                    self.constraints.remove(idx);
                    self.substitute(v, &replacement);
                }
            }
        }
    }

    /// Fourier-Motzkin elimination of a single variable.
    ///
    /// If an equality mentions `v` it is used as the pivot (exact integer
    /// combination); otherwise all lower/upper inequality pairs are
    /// cross-combined. With gcd+floor normalization the result
    /// over-approximates the integer projection, which is the safe
    /// direction for communication tests (never misses communication).
    pub fn eliminate(&self, v: VarId) -> System {
        if self.contradictory {
            return System::contradiction();
        }
        // Prefer an equality pivot with the smallest |coefficient|.
        let mut pivot: Option<(usize, i128)> = None;
        for (idx, c) in self.constraints.iter().enumerate() {
            if c.kind == ConstraintKind::EqZero {
                let coef = c.expr.coeff(v);
                if coef != 0 && pivot.map_or(true, |(_, pc)| coef.abs() < pc.abs()) {
                    pivot = Some((idx, coef));
                }
            }
        }
        let mut out = System::new();
        if let Some((pidx, b)) = pivot {
            let eq = self.constraints[pidx].expr.clone();
            for (idx, c) in self.constraints.iter().enumerate() {
                if idx == pidx {
                    continue;
                }
                let a = c.expr.coeff(v);
                if a == 0 {
                    out.push(c.clone());
                    continue;
                }
                // t*|b| + eq*(-a*sign(b)) cancels v exactly and preserves
                // the comparison direction since |b| > 0.
                let expr = c.expr.scaled(b.abs()) + eq.scaled(-a * b.signum());
                debug_assert_eq!(expr.coeff(v), 0);
                out.push(Constraint { expr, kind: c.kind });
            }
            out.dedup();
            return out;
        }
        // No equality pivot: classic lower/upper pairing.
        let mut lowers: Vec<&Constraint> = Vec::new();
        let mut uppers: Vec<&Constraint> = Vec::new();
        for c in &self.constraints {
            let coef = c.expr.coeff(v);
            if coef == 0 {
                out.push(c.clone());
            } else if coef > 0 {
                lowers.push(c);
            } else {
                uppers.push(c);
            }
        }
        for l in &lowers {
            let a = l.expr.coeff(v);
            for u in &uppers {
                let b = -u.expr.coeff(v);
                debug_assert!(a > 0 && b > 0);
                // a*v + e >= 0 and -b*v + f >= 0  =>  b*e + a*f >= 0
                let expr = l.expr.scaled(b) + u.expr.scaled(a);
                debug_assert_eq!(expr.coeff(v), 0);
                out.push(Constraint::ge_zero(expr));
            }
        }
        out.dedup();
        out
    }

    /// Project the system onto `keep`, eliminating every other variable
    /// (inner classes first, per the scan order of `vt`).
    pub fn project_onto(&self, vt: &VarTable, keep: &[VarId]) -> System {
        let keep: BTreeSet<VarId> = keep.iter().copied().collect();
        let mut sys = self.clone();
        for v in vt.elimination_order() {
            if keep.contains(&v) {
                continue;
            }
            if sys.vars().contains(&v) {
                sys = sys.eliminate(v);
                if sys.contradictory {
                    return System::contradiction();
                }
            }
        }
        sys
    }

    /// Feasibility test: eliminate every variable in the paper's scan
    /// order (array indices first, symbolics last) and check what remains.
    ///
    /// Returns `false` only when the system has **no** integer solution;
    /// `true` means a rational solution exists (and usually an integer
    /// one) — the conservative answer for communication analysis.
    pub fn is_consistent(&self, vt: &VarTable) -> bool {
        if self.contradictory {
            return false;
        }
        let mut sys = self.clone();
        sys.propagate_unit_equalities();
        sys.dedup();
        for v in vt.elimination_order() {
            if sys.contradictory {
                return false;
            }
            if sys.constraints.is_empty() {
                return true;
            }
            if sys.vars().contains(&v) {
                sys = sys.eliminate(v);
            }
        }
        if sys.contradictory {
            return false;
        }
        // Whatever is left mentions no variables; push() has already
        // filtered trivially-true constraints and flagged false ones.
        sys.constraints.is_empty()
    }

    /// Exhaustively search an integer box for a satisfying assignment —
    /// exponential, only for tests and oracles. `bounds` pairs each
    /// variable with an inclusive range; variables outside `bounds` must
    /// not occur in the system.
    pub fn find_integer_solution(
        &self,
        bounds: &[(VarId, i128, i128)],
    ) -> Option<Vec<(VarId, i128)>> {
        if self.contradictory {
            return None;
        }
        fn rec(
            sys: &System,
            bounds: &[(VarId, i128, i128)],
            idx: usize,
            assign: &mut Vec<(VarId, i128)>,
        ) -> bool {
            if idx == bounds.len() {
                let lookup = |v: VarId| -> i128 {
                    assign
                        .iter()
                        .find(|(av, _)| *av == v)
                        .map(|(_, x)| *x)
                        .expect("unbound variable in system")
                };
                return sys.constraints.iter().all(|c| c.holds_int(&lookup));
            }
            let (v, lo, hi) = bounds[idx];
            for x in lo..=hi {
                assign.push((v, x));
                if rec(sys, bounds, idx + 1, assign) {
                    return true;
                }
                assign.pop();
            }
            false
        }
        let mut assign = Vec::new();
        if rec(self, bounds, 0, &mut assign) {
            Some(assign)
        } else {
            None
        }
    }

    /// Render with variable names, one constraint per line.
    pub fn display<'a>(&'a self, vt: &'a VarTable) -> impl fmt::Display + 'a {
        DisplaySystem { s: self, vt }
    }
}

struct DisplaySystem<'a> {
    s: &'a System,
    vt: &'a VarTable,
}

impl fmt::Display for DisplaySystem<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.s.contradictory {
            return writeln!(f, "<contradiction>");
        }
        for c in &self.s.constraints {
            writeln!(f, "{}", c.display(self.vt))?;
        }
        Ok(())
    }
}

impl fmt::Debug for System {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.contradictory {
            return write!(f, "System<contradiction>");
        }
        f.debug_list().entries(&self.constraints).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::var::VarKind;

    fn table() -> (VarTable, VarId, VarId, VarId) {
        let mut vt = VarTable::new();
        let n = vt.fresh("n", VarKind::Symbolic);
        let i = vt.fresh("i", VarKind::LoopIndex);
        let j = vt.fresh("j", VarKind::LoopIndex);
        (vt, n, i, j)
    }

    #[test]
    fn empty_system_is_consistent() {
        let (vt, ..) = table();
        assert!(System::new().is_consistent(&vt));
    }

    #[test]
    fn contradiction_is_inconsistent() {
        let (vt, ..) = table();
        assert!(!System::contradiction().is_consistent(&vt));
        let mut s = System::new();
        s.add_ge(LinExpr::constant(-1));
        assert!(!s.is_consistent(&vt));
    }

    #[test]
    fn box_with_point_inside() {
        let (vt, _, i, _) = table();
        let mut s = System::new();
        s.add_range(LinExpr::var(i), LinExpr::constant(1), LinExpr::constant(10));
        s.add_eq(LinExpr::var(i) - LinExpr::constant(7));
        assert!(s.is_consistent(&vt));
    }

    #[test]
    fn box_with_point_outside() {
        let (vt, _, i, _) = table();
        let mut s = System::new();
        s.add_range(LinExpr::var(i), LinExpr::constant(1), LinExpr::constant(10));
        s.add_eq(LinExpr::var(i) - LinExpr::constant(42));
        assert!(!s.is_consistent(&vt));
    }

    #[test]
    fn two_var_chain() {
        let (vt, _, i, j) = table();
        // 0 <= i <= 5, j == i + 10, j <= 12  => i <= 2, feasible
        let mut s = System::new();
        s.add_range(LinExpr::var(i), LinExpr::constant(0), LinExpr::constant(5));
        s.add_eq(LinExpr::var(j) - LinExpr::var(i) - LinExpr::constant(10));
        s.add_ge(LinExpr::constant(12) - LinExpr::var(j));
        assert!(s.is_consistent(&vt));
        // tighten: j <= 9 makes it infeasible (j >= 10 always)
        s.add_ge(LinExpr::constant(9) - LinExpr::var(j));
        assert!(!s.is_consistent(&vt));
    }

    #[test]
    fn symbolic_bound_consistency() {
        let (vt, n, i, _) = table();
        // 1 <= i <= n and n >= 1 is consistent; adding n <= 0 kills it.
        let mut s = System::new();
        s.add_range(LinExpr::var(i), LinExpr::constant(1), LinExpr::var(n));
        s.add_ge(LinExpr::var(n) - LinExpr::constant(1));
        assert!(s.is_consistent(&vt));
        s.add_ge(-LinExpr::var(n));
        assert!(!s.is_consistent(&vt));
    }

    #[test]
    fn integer_tightening_catches_parity_gap() {
        let (vt, _, i, _) = table();
        // 2i == 1 infeasible over the integers (feasible over rationals).
        let mut s = System::new();
        s.add_eq(LinExpr::term(i, 2) - LinExpr::constant(1));
        assert!(!s.is_consistent(&vt));
    }

    #[test]
    fn eliminate_pairs_bounds() {
        let (vt, _, i, j) = table();
        // i <= j and j <= i - 1 => infeasible after eliminating j.
        let mut s = System::new();
        s.add_ge(LinExpr::var(j) - LinExpr::var(i));
        s.add_ge(LinExpr::var(i) - LinExpr::constant(1) - LinExpr::var(j));
        let e = s.eliminate(j);
        assert!(e.is_contradictory() || !e.is_consistent(&vt));
    }

    #[test]
    fn propagate_unit_equalities_substitutes() {
        let (vt, _, i, j) = table();
        let mut s = System::new();
        s.add_eq(LinExpr::var(j) - LinExpr::var(i) - LinExpr::constant(1)); // j = i+1
        s.add_range(LinExpr::var(i), LinExpr::constant(0), LinExpr::constant(3));
        s.add_eq(LinExpr::var(j) - LinExpr::constant(10)); // j = 10 -> i = 9, out of range
        s.propagate_unit_equalities();
        assert!(!s.is_consistent(&vt));
    }

    #[test]
    fn find_integer_solution_oracle() {
        let (_, _, i, j) = table();
        let mut s = System::new();
        s.add_eq(LinExpr::var(i) + LinExpr::var(j) - LinExpr::constant(5));
        s.add_ge(LinExpr::var(i) - LinExpr::var(j)); // i >= j
        let sol = s
            .find_integer_solution(&[(i, 0, 5), (j, 0, 5)])
            .expect("solution exists");
        let get = |v: VarId| sol.iter().find(|(a, _)| *a == v).unwrap().1;
        assert_eq!(get(i) + get(j), 5);
        assert!(get(i) >= get(j));
    }

    #[test]
    fn projection_keeps_only_requested_vars() {
        let (vt, n, i, _) = table();
        let mut s = System::new();
        s.add_range(LinExpr::var(i), LinExpr::constant(1), LinExpr::var(n));
        let p = s.project_onto(&vt, &[n]);
        // Projection of 1 <= i <= n onto n is n >= 1.
        assert!(p.constraints().iter().all(|c| c.expr.coeff(i) == 0));
        let mut feas = p.clone();
        feas.add_eq(LinExpr::var(n) - LinExpr::constant(3));
        assert!(feas.is_consistent(&vt));
        let mut infeas = p.clone();
        infeas.add_eq(LinExpr::var(n)); // n == 0 contradicts n >= 1
        assert!(!infeas.is_consistent(&vt));
    }

    #[test]
    fn dedup_removes_duplicates() {
        let (_, _, i, _) = table();
        let mut s = System::new();
        s.add_ge(LinExpr::var(i));
        s.add_ge(LinExpr::var(i));
        s.dedup();
        assert_eq!(s.len(), 1);
    }
}
