//! Fault detection for the blocking primitives: deadline-guarded waits
//! and region poisoning.
//!
//! Every blocking primitive in this crate spins forever in its plain
//! form — correct when the optimizer placed enough synchronization,
//! fatal when it did not (an eliminated-sync miscompile, a dropped
//! increment, a panicked producer). This module turns those silent
//! hangs into *detected* failures:
//!
//! * a [`Watchdog`] holds the team-wide wait deadline and the region's
//!   poison state;
//! * [`Watchdog::guarded_wait`] is the single escalating wait loop
//!   (spin → yield → park under a [`SpinPolicy`]) every `*_until`
//!   primitive variant delegates to, returning
//!   [`SyncError::DeadlineExceeded`] with the sync site, processor, and
//!   expected/observed progress instead of hanging;
//! * [`Watchdog::poison`] marks the region failed (first cause wins)
//!   and unparks every guarded waiter, so one processor's panic or
//!   timeout tears the whole region down within one park slice instead
//!   of leaving peers wedged at the next barrier.
//!
//! # The sampled-watchdog contract
//!
//! The fault machinery stays off the per-poll fast path. A guarded
//! wait's poll loop touches only the caller's condition atomics; the
//! watchdog side-channel — one epoch-stamped status word
//! ([`Watchdog::status`]-internal: poison bit plus a wake epoch) and
//! one `Instant::now()` — is sampled only
//!
//! * on every park transition (the wait is already ≥ many OS quanta
//!   long, so a clock read is noise), and
//! * every [`DEADLINE_SAMPLE`] polls during the spin/yield phases
//!   (bounding detection latency while a waiter that never escalates
//!   pays at most one sample per `DEADLINE_SAMPLE` cheap polls).
//!
//! Consequently deadline and poison detection are *sampled*, not
//! instantaneous: an armed deadline fires within one sample period or
//! one park slice of the true expiry, never later than
//! `deadline + park_slice + ε`. The poison *cause* string lives behind
//! a mutex that is only touched when poisoning or when a waiter is
//! already failing — never on a healthy wait's path.
//!
//! Producers never touch the watchdog (increments stay two atomic
//! instructions), so parked waiters re-check their condition on a
//! bounded slice rather than being woken eagerly — progress latency
//! degrades to at most one slice once a wait escalates past spinning,
//! which only happens on waits that are already multiple OS quanta
//! long.

use crate::spin::{SpinPhase, SpinPolicy, SpinWait, WaitEffort};
use crate::stats::SyncKind;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::thread::Thread;
use std::time::{Duration, Instant};

/// Sentinel site id for the fork-join dispatch broadcast, which is not
/// part of the canonical sync-site walk.
pub const DISPATCH_SITE: usize = usize::MAX;

/// Compatibility bound on how long a guarded waiter stays parked
/// before re-checking its condition. Policies may park in shorter
/// slices; none park longer.
pub const PARK_SLICE: Duration = Duration::from_millis(1);

/// Spin/yield polls between two watchdog samples (see the module docs
/// for the sampled-watchdog contract).
pub const DEADLINE_SAMPLE: u32 = 256;

/// Poison flag inside the status word; the remaining bits are the wake
/// epoch, bumped by every poison or spurious wake.
const POISON_BIT: u64 = 1;

/// Why a guarded wait returned without its condition becoming true.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SyncError {
    /// The wait outlived the watchdog deadline: at sync site `site`,
    /// processor `pid` needed the observed progress value to reach
    /// `expected` but last saw `observed`.
    DeadlineExceeded {
        /// Canonical sync-site id ([`DISPATCH_SITE`] for the dispatch
        /// broadcast, which is outside the site walk).
        site: usize,
        /// Processor that timed out.
        pid: usize,
        /// Which primitive was blocked.
        kind: SyncKind,
        /// Progress value the wait needed.
        expected: u64,
        /// Progress value last observed.
        observed: u64,
    },
    /// Another processor poisoned the region (panic or earlier
    /// timeout) while this one was waiting.
    Poisoned {
        /// Site this processor was waiting at when it saw the poison.
        site: usize,
        /// Processor that observed the poison.
        pid: usize,
        /// First poison cause, as recorded by [`Watchdog::poison`].
        cause: String,
    },
    /// A primitive was reset out from under this waiter: a counter
    /// bank's generation moved mid-wait, or a barrier episode the
    /// waiter belonged to was discarded by `CentralBarrier::reset`.
    StaleGeneration {
        /// Site the waiter was blocked at.
        site: usize,
        /// Processor whose wait went stale.
        pid: usize,
    },
}

impl SyncError {
    /// The sync site the error is attributed to.
    pub fn site(&self) -> usize {
        match self {
            SyncError::DeadlineExceeded { site, .. }
            | SyncError::Poisoned { site, .. }
            | SyncError::StaleGeneration { site, .. } => *site,
        }
    }

    /// The processor the error occurred on.
    pub fn pid(&self) -> usize {
        match self {
            SyncError::DeadlineExceeded { pid, .. }
            | SyncError::Poisoned { pid, .. }
            | SyncError::StaleGeneration { pid, .. } => *pid,
        }
    }

    /// True for the variants that *initiate* a region failure (poison
    /// observations are secondary — some peer failed first).
    pub fn is_primary(&self) -> bool {
        !matches!(self, SyncError::Poisoned { .. })
    }
}

impl std::fmt::Display for SyncError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let site_str = |s: usize| {
            if s == DISPATCH_SITE {
                "dispatch".to_string()
            } else {
                format!("s{s}")
            }
        };
        match self {
            SyncError::DeadlineExceeded {
                site,
                pid,
                kind,
                expected,
                observed,
            } => write!(
                f,
                "deadline exceeded at {} on P{pid}: {kind:?} wait needed {expected}, observed {observed}",
                site_str(*site)
            ),
            SyncError::Poisoned { site, pid, cause } => write!(
                f,
                "region poisoned while P{pid} waited at {}: {cause}",
                site_str(*site)
            ),
            SyncError::StaleGeneration { site, pid } => write!(
                f,
                "counter bank reset under P{pid} waiting at {}",
                site_str(*site)
            ),
        }
    }
}

/// What a guarded wait's observation closure reports each poll.
#[derive(Debug)]
pub enum WaitPoll {
    /// The condition holds; the wait succeeds.
    Ready,
    /// Still blocked; the payload is the progress value observed (for
    /// the eventual [`SyncError::DeadlineExceeded`]).
    Pending(u64),
    /// The wait can never succeed (e.g. a stale counter generation).
    Failed(SyncError),
}

/// Team-level deadline and poison state shared by every guarded wait
/// of one region execution.
///
/// Construction is cheap; executors build one per observed run. The
/// deadline bounds each *individual* blocked interval, which is the
/// quantity a lost wakeup makes unbounded — a healthy region never
/// blocks longer than its slowest peer's work chunk.
pub struct Watchdog {
    deadline: Duration,
    /// The epoch-stamped poison word: bit 0 is the poison flag, the
    /// upper bits count wake events (poisons and spurious wakes). One
    /// acquire load tells a waiter both whether the region died and
    /// whether any wake landed since it last looked — the entire fault
    /// side-channel a healthy wait ever samples.
    status: AtomicU64,
    cause: Mutex<Option<String>>,
    parked: Mutex<Vec<Thread>>,
}

impl Watchdog {
    /// A watchdog allowing each blocking wait up to `deadline`.
    pub fn new(deadline: Duration) -> Self {
        Watchdog {
            deadline,
            status: AtomicU64::new(0),
            cause: Mutex::new(None),
            parked: Mutex::new(Vec::new()),
        }
    }

    /// The per-wait deadline.
    pub fn deadline(&self) -> Duration {
        self.deadline
    }

    /// True once any processor poisoned the region.
    pub fn is_poisoned(&self) -> bool {
        self.status.load(Ordering::Acquire) & POISON_BIT != 0
    }

    /// The wake epoch: bumped by every [`Watchdog::poison`] and
    /// [`Watchdog::spurious_wake`].
    pub fn wake_epoch(&self) -> u64 {
        self.status.load(Ordering::Acquire) >> 1
    }

    /// The first recorded poison cause, if any.
    pub fn poison_cause(&self) -> Option<String> {
        self.cause.lock().clone()
    }

    /// Mark the region failed and wake every parked guarded waiter.
    /// The first cause is kept; later calls only re-wake waiters.
    pub fn poison(&self, cause: impl Into<String>) {
        {
            let mut c = self.cause.lock();
            if c.is_none() {
                *c = Some(cause.into());
            }
        }
        // Set the flag and bump the wake epoch in one visible step
        // each: waiters racing towards a park compare the whole word.
        self.status.fetch_add(2, Ordering::AcqRel);
        self.status.fetch_or(POISON_BIT, Ordering::AcqRel);
        for t in self.parked.lock().drain(..) {
            t.unpark();
        }
    }

    /// Wake every parked guarded waiter without poisoning (used by the
    /// chaos layer to inject spurious wakeups — a correct waiter must
    /// re-check its condition and go back to sleep).
    pub fn spurious_wake(&self) {
        self.status.fetch_add(2, Ordering::AcqRel);
        for t in self.parked.lock().drain(..) {
            t.unpark();
        }
    }

    /// The escalating guarded wait every `*_until` primitive delegates
    /// to: poll `observe` under `policy`'s spin → yield → park ladder
    /// until `Ready`, poison, a `Failed` poll, or the deadline. Returns
    /// the wait's escalation counts on success so callers can feed
    /// their stats.
    ///
    /// Deadline and poison are checked on the sampled side-channel
    /// only (every park transition, else every [`DEADLINE_SAMPLE`]
    /// polls) — see the module docs for the precision this trades.
    pub fn guarded_wait(
        &self,
        site: usize,
        pid: usize,
        kind: SyncKind,
        expected: u64,
        policy: SpinPolicy,
        mut observe: impl FnMut() -> WaitPoll,
    ) -> Result<WaitEffort, SyncError> {
        // Fast path: a satisfied wait costs one poll — no clock read,
        // no status load, no allocation.
        match observe() {
            WaitPoll::Ready => return Ok(WaitEffort::default()),
            WaitPoll::Failed(e) => return Err(e),
            WaitPoll::Pending(_) => {}
        }
        let deadline = Instant::now() + self.deadline;
        let mut sw = SpinWait::new(policy);
        let mut polls: u32 = 0;
        loop {
            match observe() {
                WaitPoll::Ready => return Ok(sw.effort()),
                WaitPoll::Pending(_) => {}
                WaitPoll::Failed(e) => return Err(e),
            }
            let phase = sw.advise();
            polls += 1;
            let mut now = None;
            if phase == SpinPhase::Park || polls >= DEADLINE_SAMPLE {
                polls = 0;
                if self.is_poisoned() {
                    return Err(SyncError::Poisoned {
                        site,
                        pid,
                        cause: self.poison_cause().unwrap_or_default(),
                    });
                }
                let t = Instant::now();
                if t >= deadline {
                    // One final check: the condition may have become
                    // true between the poll above and here.
                    let observed = match observe() {
                        WaitPoll::Ready => return Ok(sw.effort()),
                        WaitPoll::Pending(v) => v,
                        WaitPoll::Failed(e) => return Err(e),
                    };
                    return Err(SyncError::DeadlineExceeded {
                        site,
                        pid,
                        kind,
                        expected,
                        observed,
                    });
                }
                now = Some(t);
            }
            match phase {
                SpinPhase::Spin => std::hint::spin_loop(),
                SpinPhase::Yield => std::thread::yield_now(),
                SpinPhase::Park => {
                    // Register, then re-check condition and status: a
                    // poison or wake landing between the sample above
                    // and the park would otherwise be a lost wakeup.
                    self.parked.lock().push(std::thread::current());
                    let recheck_ready = matches!(observe(), WaitPoll::Ready);
                    if recheck_ready || self.is_poisoned() {
                        let me = std::thread::current().id();
                        self.parked.lock().retain(|t| t.id() != me);
                        if recheck_ready {
                            return Ok(sw.effort());
                        }
                        continue;
                    }
                    let slice = policy.park_slice.min(PARK_SLICE);
                    std::thread::park_timeout(slice.min(deadline - now.unwrap()));
                    let me = std::thread::current().id();
                    self.parked.lock().retain(|t| t.id() != me);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;
    use std::sync::Arc;

    fn wait_on(
        wd: &Watchdog,
        c: &AtomicU64,
        target: u64,
        site: usize,
        pid: usize,
    ) -> Result<WaitEffort, SyncError> {
        wd.guarded_wait(
            site,
            pid,
            SyncKind::Counter,
            target,
            SpinPolicy::auto(),
            || {
                let v = c.load(Ordering::Acquire);
                if v >= target {
                    WaitPoll::Ready
                } else {
                    WaitPoll::Pending(v)
                }
            },
        )
    }

    #[test]
    fn satisfied_wait_returns_ok_with_zero_effort() {
        let wd = Watchdog::new(Duration::from_secs(5));
        let c = AtomicU64::new(3);
        assert_eq!(wait_on(&wd, &c, 3, 0, 0), Ok(WaitEffort::default()));
    }

    #[test]
    fn deadline_fires_with_attribution() {
        let wd = Watchdog::new(Duration::from_millis(30));
        let c = AtomicU64::new(1);
        let t0 = Instant::now();
        let err = wait_on(&wd, &c, 4, 7, 2).unwrap_err();
        assert!(t0.elapsed() < Duration::from_secs(5), "wait did not bound");
        assert_eq!(
            err,
            SyncError::DeadlineExceeded {
                site: 7,
                pid: 2,
                kind: SyncKind::Counter,
                expected: 4,
                observed: 1,
            }
        );
    }

    #[test]
    fn blocked_wait_reports_its_escalation_effort() {
        let wd = Arc::new(Watchdog::new(Duration::from_secs(30)));
        let c = Arc::new(AtomicU64::new(0));
        let h = {
            let wd = Arc::clone(&wd);
            let c = Arc::clone(&c);
            std::thread::spawn(move || wait_on(&wd, &c, 1, 0, 0))
        };
        std::thread::sleep(Duration::from_millis(15));
        c.store(1, Ordering::Release);
        let effort = h.join().unwrap().unwrap();
        assert!(
            effort.spins + effort.yields + effort.parks > 0,
            "a 15ms block must have escalated: {effort:?}"
        );
    }

    #[test]
    fn poison_wakes_parked_waiter_promptly() {
        let wd = Arc::new(Watchdog::new(Duration::from_secs(30)));
        let c = Arc::new(AtomicU64::new(0));
        let h = {
            let wd = Arc::clone(&wd);
            let c = Arc::clone(&c);
            std::thread::spawn(move || wait_on(&wd, &c, 1, 3, 1))
        };
        // Let the waiter escalate to parking, then poison.
        std::thread::sleep(Duration::from_millis(20));
        let t0 = Instant::now();
        wd.poison("P0 panicked: boom");
        let err = h.join().unwrap().unwrap_err();
        assert!(
            t0.elapsed() < Duration::from_secs(2),
            "poison took {:?} to propagate",
            t0.elapsed()
        );
        match err {
            SyncError::Poisoned {
                site: 3,
                pid: 1,
                cause,
            } => {
                assert!(cause.contains("boom"), "{cause}");
            }
            other => panic!("expected Poisoned, got {other:?}"),
        }
    }

    #[test]
    fn first_poison_cause_wins() {
        let wd = Watchdog::new(Duration::from_secs(1));
        wd.poison("first");
        wd.poison("second");
        assert_eq!(wd.poison_cause().as_deref(), Some("first"));
    }

    #[test]
    fn status_word_stamps_epochs_and_poison() {
        let wd = Watchdog::new(Duration::from_secs(1));
        assert_eq!(wd.wake_epoch(), 0);
        assert!(!wd.is_poisoned());
        wd.spurious_wake();
        assert_eq!(wd.wake_epoch(), 1);
        assert!(!wd.is_poisoned());
        wd.poison("x");
        assert_eq!(wd.wake_epoch(), 2);
        assert!(wd.is_poisoned());
        wd.spurious_wake();
        assert_eq!(wd.wake_epoch(), 3);
        assert!(wd.is_poisoned(), "wakes never clear poison");
    }

    #[test]
    fn spurious_wake_does_not_fail_the_wait() {
        let wd = Arc::new(Watchdog::new(Duration::from_secs(30)));
        let c = Arc::new(AtomicU64::new(0));
        let h = {
            let wd = Arc::clone(&wd);
            let c = Arc::clone(&c);
            std::thread::spawn(move || wait_on(&wd, &c, 1, 0, 1))
        };
        std::thread::sleep(Duration::from_millis(10));
        wd.spurious_wake();
        std::thread::sleep(Duration::from_millis(10));
        c.store(1, Ordering::Release);
        assert!(h.join().unwrap().is_ok());
    }

    #[test]
    fn eager_park_policy_still_meets_the_deadline_contract() {
        let wd = Watchdog::new(Duration::from_millis(30));
        let c = AtomicU64::new(0);
        let t0 = Instant::now();
        let err = wd
            .guarded_wait(1, 0, SyncKind::Counter, 1, SpinPolicy::eager_park(), || {
                let v = c.load(Ordering::Acquire);
                if v >= 1 {
                    WaitPoll::Ready
                } else {
                    WaitPoll::Pending(v)
                }
            })
            .unwrap_err();
        assert!(matches!(err, SyncError::DeadlineExceeded { .. }));
        // Sampled contract: fires within deadline + slice + scheduling
        // noise, never unbounded.
        assert!(t0.elapsed() < Duration::from_secs(5));
    }
}
