//! ADI (alternating-direction implicit) integration fragment.
//!
//! The row sweep relaxes along `j` inside each processor's rows —
//! entirely local. The column sweep relaxes along the *distributed*
//! dimension `i`, so each `DOALL j` phase belongs wholly to `owner(i)`
//! and the carried dependence `i-1 → i` crosses a processor boundary
//! once per block: the optimizer replaces the per-`i` barrier with
//! neighbor flags, producing the classic software pipeline.

use crate::{Built, Scale};
use ir::build::*;

/// Build at the given scale.
pub fn build(scale: Scale) -> Built {
    let (nv, tv) = match scale {
        Scale::Test => (12, 2),
        Scale::Small => (48, 6),
        Scale::Full => (256, 12),
    };
    let mut pb = ProgramBuilder::new("adi");
    let n = pb.sym("n");
    let tmax = pb.sym("tmax");
    let x = pb.array("X", &[sym(n), sym(n)], dist_block());
    let a = pb.array("A", &[sym(n), sym(n)], dist_block());

    let i0 = pb.begin_par("i0", con(0), sym(n) - 1);
    let j0 = pb.begin_seq("j0", con(0), sym(n) - 1);
    pb.assign(
        elem(x, [idx(i0), idx(j0)]),
        ival(idx(i0) * 17 + idx(j0)).sin(),
    );
    pb.assign(
        elem(a, [idx(i0), idx(j0)]),
        ex(0.25) + ival(idx(i0) + idx(j0) * 7).cos() * ex(0.05),
    );
    pb.end();
    pb.end();

    let _t = pb.begin_seq("t", con(0), sym(tmax) - 1);

    // Row sweep: parallel over rows, serial recurrence along j (local).
    let i1 = pb.begin_par("i1", con(0), sym(n) - 1);
    let j1 = pb.begin_seq("j1", con(1), sym(n) - 1);
    // Convex relaxation keeps the recurrence numerically bounded.
    pb.assign(
        elem(x, [idx(i1), idx(j1)]),
        ex(0.7) * arr(x, [idx(i1), idx(j1)])
            + arr(x, [idx(i1), idx(j1) - 1]) * arr(a, [idx(i1), idx(j1)]),
    );
    pb.end();
    pb.end();

    // Column sweep: serial recurrence along the distributed dimension,
    // parallel over columns — the pipelined phase.
    let i2 = pb.begin_seq("i2", con(1), sym(n) - 1);
    let j2 = pb.begin_par("j2", con(0), sym(n) - 1);
    pb.assign(
        elem(x, [idx(i2), idx(j2)]),
        ex(0.7) * arr(x, [idx(i2), idx(j2)])
            + arr(x, [idx(i2) - 1, idx(j2)]) * arr(a, [idx(i2), idx(j2)]),
    );
    pb.end();
    pb.end();

    pb.end(); // t

    Built {
        prog: pb.finish(),
        values: vec![(n, nv), (tmax, tv)],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spmd_opt::{RItem, SyncOp, TopItem};

    #[test]
    fn column_sweep_is_pipelined_with_neighbor_flags() {
        let built = build(Scale::Test);
        let bind = built.bindings(4);
        let plan = spmd_opt::optimize(&built.prog, &bind);
        let st = plan.static_stats();
        assert_eq!(st.regions, 1, "{st:?}");
        assert!(st.neighbor_syncs >= 1, "{st:?}");
        // Find the inner i2 sequential loop and check its bottom sync is
        // a neighbor op, not a barrier.
        fn find_seq_bottoms(items: &[RItem], out: &mut Vec<SyncOp>) {
            for it in items {
                if let RItem::Seq { body, bottom, .. } = it {
                    out.push(bottom.clone());
                    find_seq_bottoms(body, out);
                }
            }
        }
        let mut bottoms = Vec::new();
        for item in &plan.items {
            if let TopItem::Region(r) = item {
                find_seq_bottoms(&r.items, &mut bottoms);
            }
        }
        assert!(
            bottoms.iter().any(|b| matches!(b, SyncOp::Neighbor { .. })),
            "expected a pipelined bottom sync, got {bottoms:?}"
        );
    }
}
