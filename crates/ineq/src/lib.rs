//! Systems of symbolic linear inequalities and Fourier-Motzkin elimination.
//!
//! This crate is the mathematical substrate of the barrier-elimination
//! optimizer: it reimplements the inequality machinery the Stanford SUIF
//! compiler used for communication analysis (Amarasinghe & Lam, PLDI'93;
//! Ancourt & Irigoin, PPoPP'91). Local definitions and nonlocal accesses
//! are encoded as conjunctions of affine constraints over four classes of
//! variables — *symbolics*, *processors*, *loop indices*, and *array
//! indices* — and the central question ("can two different processors touch
//! the same array element?") becomes a feasibility test answered by
//! Fourier-Motzkin elimination in that scan order.
//!
//! Everything is exact: constraints carry `i128` integer coefficients and
//! are renormalized by their gcd (with floor tightening of the constant,
//! which makes the test slightly stronger than the pure rational
//! relaxation while remaining sound: *infeasible* answers are always
//! correct for integers, *feasible* answers are conservative).
//!
//! # Quick example
//!
//! ```
//! use ineq::{VarTable, VarKind, System, LinExpr};
//!
//! let mut vt = VarTable::new();
//! let i = vt.fresh("i", VarKind::LoopIndex);
//! // 1 <= i <= 10  and  i == 42  is infeasible
//! let mut sys = System::new();
//! sys.add_ge(LinExpr::var(i) - LinExpr::constant(1));   // i - 1 >= 0
//! sys.add_ge(LinExpr::constant(10) - LinExpr::var(i));  // 10 - i >= 0
//! sys.add_eq(LinExpr::var(i) - LinExpr::constant(42));  // i == 42
//! assert!(!sys.is_consistent(&vt));
//! ```

pub mod cache;
pub mod constraint;
pub mod linexpr;
pub mod rational;
pub mod scan;
pub mod simplify;
pub mod snapshot;
pub mod system;
pub mod var;

pub use cache::{canonicalize, CanonicalSystem, FmeCache, FmeCacheStats};
pub use constraint::{Constraint, ConstraintKind};
pub use linexpr::LinExpr;
pub use rational::{Overflow, Rational};
pub use scan::{BoundExpr, VarBounds};
pub use snapshot::{
    decode_snapshot, encode_snapshot, load_snapshot, write_snapshot, SnapshotCorrupt, SnapshotLoad,
    SNAPSHOT_MAGIC, SNAPSHOT_SCHEMA_VERSION,
};
pub use system::{Feasibility, IntSearch, System, MAX_FEAS_CONSTRAINTS};
pub use var::{VarId, VarKind, VarTable};
