//! Failure-repro bundles.
//!
//! When a fuzz case fails, printing the seed alone forces whoever
//! triages it to rebuild the whole pipeline state by hand. A repro
//! bundle captures everything needed to see the failure at a glance:
//! the program text, the optimizer's full decision log (which
//! elimination condition fired at every sync slot), and a
//! chrome://tracing timeline of the optimized schedule under an
//! adversarial interleaving.

use crate::gen::GenProgram;
use interp::{run_virtual_traced, Mem, ScheduleOrder};
use obs::{FailureReport, Json, TraceBuilder};
use spmd_opt::{fork_join, optimize_logged};
use std::io;
use std::path::{Path, PathBuf};

/// Write a repro bundle for `g` under `dir/seed-<seed>/` and return the
/// bundle directory. Contents:
///
/// * `case.txt` — seed, shape, nprocs, chaos seed (when a fault
///   injector was active), and the reported failures;
/// * `program.txt` — the generated program, pretty-printed;
/// * `decisions.json` — the explain pass (one decision per sync slot);
/// * `trace.json` — the optimized schedule's timeline under the reverse
///   (adversarial) virtual interleaving, loadable in chrome://tracing;
/// * `failure.json` — the structured [`FailureReport`]s of every
///   real-thread run that timed out, was poisoned, or lost a worker
///   (only written when there are any).
pub fn dump_repro(
    dir: &Path,
    g: &GenProgram,
    nprocs: i64,
    failures: &[String],
    reports: &[FailureReport],
) -> io::Result<PathBuf> {
    let bundle = dir.join(format!("seed-{}", g.seed));
    std::fs::create_dir_all(&bundle)?;

    let mut case = format!("seed: {}\nshape: {:?}\nnprocs: {nprocs}\n", g.seed, g.shape);
    if let Some(chaos) = reports.iter().find_map(|r| r.chaos_seed) {
        case.push_str(&format!("chaos seed: {chaos}\n"));
    }
    case.push_str("\nfailures:\n");
    for f in failures {
        case.push_str("  ");
        case.push_str(f);
        case.push('\n');
    }
    std::fs::write(bundle.join("case.txt"), case)?;
    if !reports.is_empty() {
        let doc = Json::Arr(reports.iter().map(obs::failure_json).collect());
        std::fs::write(bundle.join("failure.json"), doc.to_string_pretty())?;
    }
    std::fs::write(bundle.join("program.txt"), ir::pretty::pretty(&g.prog))?;

    let bind = g.bindings(nprocs);
    let (plan, log) = optimize_logged(&g.prog, &bind);
    let base = fork_join(&g.prog, &bind);
    let doc = obs::explain_json(&g.prog, nprocs, &plan, &base, &log);
    std::fs::write(bundle.join("decisions.json"), doc.to_string_pretty())?;

    let mem = Mem::new(&g.prog, &bind);
    let (_, spans) = run_virtual_traced(&g.prog, &bind, &plan, &mem, ScheduleOrder::Reverse);
    let mut tb = TraceBuilder::new(&g.prog.name, nprocs as usize);
    tb.extend(spans);
    std::fs::write(bundle.join("trace.json"), tb.to_json().to_string_compact())?;

    Ok(bundle)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bundle_contains_all_four_artifacts() {
        let g = crate::generate(7);
        let dir = std::env::temp_dir().join(format!("be-repro-test-{}", std::process::id()));
        let bundle =
            dump_repro(&dir, &g, 4, &["example failure".to_string()], &[]).expect("dump_repro");
        for name in ["case.txt", "program.txt", "decisions.json", "trace.json"] {
            let p = bundle.join(name);
            assert!(p.is_file(), "missing {name}");
            assert!(std::fs::metadata(&p).unwrap().len() > 0, "{name} is empty");
        }
        // No reports -> no failure.json.
        assert!(!bundle.join("failure.json").exists());
        // Both JSON artifacts must parse back.
        for name in ["decisions.json", "trace.json"] {
            let src = std::fs::read_to_string(bundle.join(name)).unwrap();
            obs::parse(&src).unwrap_or_else(|e| panic!("{name}: {e}"));
        }
        let case = std::fs::read_to_string(bundle.join("case.txt")).unwrap();
        assert!(case.contains("seed: 7") && case.contains("example failure"));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn failure_reports_land_in_the_bundle() {
        use obs::FailureCause;
        let g = crate::generate(9);
        let dir = std::env::temp_dir().join(format!("be-repro-fail-{}", std::process::id()));
        let report = FailureReport {
            program: g.prog.name.clone(),
            nprocs: 4,
            deadline_ms: 250.0,
            cause: FailureCause::Panic {
                pid: 1,
                message: "example".to_string(),
            },
            site_label: String::new(),
            per_proc: vec!["ok".to_string(); 4],
            chaos_seed: Some(42),
            sites: Vec::new(),
        };
        let bundle = dump_repro(&dir, &g, 4, &["boom".to_string()], &[report]).expect("dump_repro");
        let case = std::fs::read_to_string(bundle.join("case.txt")).unwrap();
        assert!(case.contains("chaos seed: 42"));
        let src = std::fs::read_to_string(bundle.join("failure.json")).unwrap();
        let doc = obs::parse(&src).expect("failure.json parses");
        match doc {
            Json::Arr(items) => {
                assert_eq!(items.len(), 1);
                assert_eq!(items[0].get("chaos_seed").unwrap().as_u64(), Some(42));
            }
            other => panic!("expected array, got {other:?}"),
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
