//! Ablation A3 — how the data decomposition interacts with the
//! synchronization optimizer: LU with block, cyclic, and block-cyclic
//! column distributions. Block columns keep the trailing update local
//! longer (fewer counters) but serialize the tail; cyclic balances load
//! but every step communicates; block-cyclic interpolates.

use interp::{run_sequential, run_virtual, Mem, ScheduleOrder};
use ir::build::{dist_block_cyclic_dim, dist_block_dim, dist_cyclic_dim, DistSpec};
use spmd_bench::{dyn_counts, Table};
use suite::kernels::lu;
use suite::Scale;

fn main() {
    let nprocs = 8;
    println!("Ablation: LU column distribution vs synchronization (P = {nprocs})\n");
    let dists: [(&str, DistSpec); 4] = [
        ("block", dist_block_dim(1)),
        ("cyclic", dist_cyclic_dim(1)),
        ("cyclic(2)", dist_block_cyclic_dim(1, 2)),
        ("cyclic(4)", dist_block_cyclic_dim(1, 4)),
    ];
    let mut t = Table::new(&[
        "distribution",
        "barriers base",
        "barriers opt",
        "counters",
        "% barriers removed",
    ]);
    for (label, dist) in dists {
        let built = lu::build_with_dist(Scale::Small, dist);
        let bind = built.bindings(nprocs);
        let base = dyn_counts(&built.prog, &bind, &spmd_opt::fork_join(&built.prog, &bind));
        let plan = spmd_opt::optimize(&built.prog, &bind);
        let opt = dyn_counts(&built.prog, &bind, &plan);
        // Correctness for each distribution.
        let oracle = Mem::new(&built.prog, &bind);
        run_sequential(&built.prog, &bind, &oracle);
        let mem = Mem::new(&built.prog, &bind);
        run_virtual(&built.prog, &bind, &plan, &mem, ScheduleOrder::Reverse);
        assert!(mem.max_abs_diff(&oracle) < 1e-9, "{label} diverged");
        t.row(vec![
            label.to_string(),
            base.barriers.to_string(),
            opt.barriers.to_string(),
            opt.counter_increments.to_string(),
            format!(
                "{:.0}%",
                spmd_bench::pct_reduction(base.barriers, opt.barriers)
            ),
        ]);
    }
    print!("{}", t.render());
    println!("\nExpected shape: every distribution keeps the counter broadcast; the");
    println!("optimizer's reductions are distribution-robust (same schedule shape).");
}
