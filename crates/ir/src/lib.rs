//! Affine loop-nest intermediate representation.
//!
//! This crate plays the role of the SUIF IR in the reproduction of
//! *Compiler Optimizations for Eliminating Barrier Synchronization*
//! (Tseng, PPoPP'95): sequential scientific programs are expressed as
//! nests of `DO` loops over statements whose array subscripts and loop
//! bounds are affine in the loop indices and symbolic constants. Loops
//! carry a parallel/sequential marker (the output of a parallelizing
//! front end, which the paper assumes), arrays carry data decompositions
//! (block / cyclic / replicated, the output of the global decomposition
//! pass), and the whole program can be executed by the reference
//! interpreter in `interp`.
//!
//! The representation is an arena: every structural node ([`Node`]) lives
//! in the [`Program`] and is referenced by [`NodeId`], which lets the
//! analyses attach results to nodes and lets the optimizer describe
//! transformed schedules without copying subtrees.
//!
//! # Example
//!
//! ```
//! use ir::build::*;
//!
//! let mut p = ProgramBuilder::new("saxpy");
//! let n = p.sym("n");
//! let x = p.array("x", &[sym(n)], dist_block());
//! let y = p.array("y", &[sym(n)], dist_block());
//! let i = p.begin_par("i", con(1), sym(n));
//! p.assign(elem(y, [idx(i)]), ex(2.0) * arr(x, [idx(i)]) + arr(y, [idx(i)]));
//! p.end();
//! let prog = p.finish();
//! assert_eq!(prog.parallel_loops().len(), 1);
//! ```

pub mod build;
pub mod decl;
pub mod expr;
pub mod node;
pub mod pretty;
pub mod program;

pub use decl::{ArrayDecl, ArrayId, DimDist, Distribution, ScalarDecl, ScalarId, SymDecl, SymId};
pub use expr::{AffAtom, Affine, BinOp, Expr, UnOp};
pub use node::{Assign, CmpOp, Guard, GuardCond, LhsRef, Loop, LoopId, LoopKind, Node, RedOp};
pub use program::{NodeId, Program, StmtPath};
