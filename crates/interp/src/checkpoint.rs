//! Live-in memory checkpoints for retried executions.
//!
//! A recovery retry re-executes a schedule against the memory it
//! started from, so the supervisor must be able to roll back whatever a
//! failed attempt half-wrote. Snapshotting all of memory would work but
//! scales with the footprint, not the damage; instead the checkpoint
//! reuses the access-trace machinery ([`crate::trace`]): because every
//! subscript and guard in the IR is affine in loop indices and symbolic
//! constants — never data-dependent — the set of cells a schedule can
//! write is computable *without* running the real execution, by
//! replaying the work events against a scratch memory with a tracer
//! attached. The checkpoint stores pre-images of exactly that write
//! set (plus every scalar — they are few and cheap), so
//! [`Checkpoint::rollback`] restores the live-in state bit-for-bit.
//!
//! Privatizable (per-processor) arrays are deliberately excluded:
//! privatizable means written-before-read within the schedule, so a
//! retry can never observe an abandoned attempt's leftovers there.

use crate::events::{exec_work, Event};
use crate::mem::Mem;
use crate::trace::{AccessKind, Target, TraceBuffer};
use analysis::Bindings;
use ir::{ArrayId, Program};
use std::collections::BTreeSet;
use std::sync::Arc;

/// Pre-images of every shared cell a schedule's event list can write.
pub struct Checkpoint {
    /// `(array, flat offset, f64 bits)` of each shared element in the
    /// write set.
    elems: Vec<(ArrayId, u64, u64)>,
    /// Bits of every scalar, in declaration order.
    scalars: Vec<u64>,
}

impl Checkpoint {
    /// Capture the pre-images of `events`' write set from `mem`.
    ///
    /// The write set is derived by executing every work event for every
    /// processor against a scratch memory with an access tracer — legal
    /// in any order precisely because access sets are value-independent
    /// (see the module docs). `mem` itself is only read.
    pub fn capture(prog: &Program, bind: &Bindings, events: &[Event], mem: &Mem) -> Checkpoint {
        let tracer = Arc::new(TraceBuffer::new());
        let scratch = Mem::new(prog, bind).with_tracer(Arc::clone(&tracer));
        let nprocs = bind.nprocs as usize;
        for ev in events {
            if matches!(ev, Event::Work { .. } | Event::SerialWork { .. }) {
                for pid in 0..nprocs {
                    exec_work(prog, bind, &scratch, pid, nprocs, ev);
                }
            }
        }
        let mut written = BTreeSet::new();
        for a in tracer.drain() {
            if matches!(a.kind, AccessKind::Write | AccessKind::Reduce) {
                if let Target::Elem(arr, off) = a.target {
                    written.insert((arr, off));
                }
            }
        }
        let elems = written
            .into_iter()
            .map(|(arr, off)| (arr, off, mem.array(arr).get_linear(off as usize).to_bits()))
            .collect();
        let scalars = (0..prog.scalars.len())
            .map(|k| mem.get_scalar(ir::ScalarId(k as u32)).to_bits())
            .collect();
        Checkpoint { elems, scalars }
    }

    /// Restore every checkpointed cell of `mem` to its pre-image,
    /// bit-for-bit.
    pub fn rollback(&self, mem: &Mem) {
        for &(arr, off, bits) in &self.elems {
            mem.array(arr)
                .set_linear(off as usize, f64::from_bits(bits));
        }
        for (k, &bits) in self.scalars.iter().enumerate() {
            mem.set_scalar(ir::ScalarId(k as u32), f64::from_bits(bits));
        }
    }

    /// Number of array elements in the snapshot (diagnostics — how
    /// "minimal" the checkpoint is relative to the full footprint).
    pub fn elem_cells(&self) -> usize {
        self.elems.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::events::unroll;
    use ir::build::*;
    use spmd_opt::optimize;

    /// DOALL writing B from A: the checkpoint must cover B (the write
    /// set) but not A, and rollback must erase a clobbered run.
    #[test]
    fn checkpoint_covers_exactly_the_write_set_and_rolls_back() {
        let mut pb = ProgramBuilder::new("cp");
        let n = pb.sym("n");
        let a = pb.array("A", &[sym(n)], dist_block());
        let b = pb.array("B", &[sym(n)], dist_block());
        let i = pb.begin_par("i", con(0), sym(n) - 1);
        pb.assign(elem(b, [idx(i)]), arr(a, [idx(i)]) * ex(2.0));
        pb.end();
        let prog = pb.finish();
        let bind = Bindings::new(2).set(n, 8);
        let plan = optimize(&prog, &bind);
        let events = unroll(&prog, &bind, &plan);

        let mem = Mem::new(&prog, &bind);
        mem.fill(a, |s| s[0] as f64);
        mem.fill(b, |s| -(s[0] as f64));
        let cp = Checkpoint::capture(&prog, &bind, &events, &mem);
        // Only B's 8 elements are writable.
        assert_eq!(cp.elem_cells(), 8);

        // Clobber both arrays, then roll back: B (and scalars) are
        // restored; A was never checkpointed but also never written by
        // the schedule, so the test leaves it alone.
        mem.fill(b, |_| 99.0);
        cp.rollback(&mem);
        for k in 0..8 {
            assert_eq!(mem.array(b).get(&[k]), -(k as f64));
            assert_eq!(mem.array(a).get(&[k]), k as f64);
        }
    }

    #[test]
    fn rollback_restores_scalars_bit_for_bit() {
        let mut pb = ProgramBuilder::new("cps");
        let s = pb.scalar("s", 1.5);
        let n = pb.sym("n");
        let a = pb.array("A", &[sym(n)], dist_block());
        let i = pb.begin_par("i", con(0), sym(n) - 1);
        pb.assign(elem(a, [idx(i)]), ex(1.0));
        pb.end();
        let prog = pb.finish();
        let bind = Bindings::new(2).set(n, 4);
        let plan = optimize(&prog, &bind);
        let events = unroll(&prog, &bind, &plan);
        let mem = Mem::new(&prog, &bind);
        let cp = Checkpoint::capture(&prog, &bind, &events, &mem);
        mem.set_scalar(s, f64::NAN);
        mem.array(a).set(&[2], 7.0);
        cp.rollback(&mem);
        assert_eq!(mem.get_scalar(s), 1.5);
        assert_eq!(mem.array(a).get(&[2]), 0.0);
    }
}
