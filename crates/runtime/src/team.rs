//! A persistent worker team for SPMD execution.
//!
//! Threads are created once (like the paper's measured programs, whose
//! timings exclude thread startup) and then repeatedly execute SPMD
//! regions: `run` hands every worker the same closure, which receives its
//! processor id.

use parking_lot::{Condvar, Mutex};
use std::sync::Arc;

type Job = Arc<dyn Fn(usize) + Send + Sync>;

struct State {
    gen: u64,
    job: Option<Job>,
    done: usize,
    shutdown: bool,
}

struct Shared {
    m: Mutex<State>,
    work_cv: Condvar,
    done_cv: Condvar,
    n: usize,
}

/// A fixed-size team of persistent worker threads.
pub struct Team {
    shared: Arc<Shared>,
    handles: Vec<std::thread::JoinHandle<()>>,
}

impl Team {
    /// Spawn a team of `n` workers (ids `0..n`).
    pub fn new(n: usize) -> Self {
        assert!(n >= 1);
        let shared = Arc::new(Shared {
            m: Mutex::new(State {
                gen: 0,
                job: None,
                done: 0,
                shutdown: false,
            }),
            work_cv: Condvar::new(),
            done_cv: Condvar::new(),
            n,
        });
        let handles = (0..n)
            .map(|pid| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("spmd-worker-{pid}"))
                    .spawn(move || worker_loop(pid, shared))
                    .expect("failed to spawn worker")
            })
            .collect();
        Team { shared, handles }
    }

    /// Number of processors in the team.
    pub fn nprocs(&self) -> usize {
        self.shared.n
    }

    /// Execute `f(pid)` on every worker and block until all finish.
    ///
    /// Panics in workers propagate on [`Team::drop`] (join); the region
    /// closure must therefore not panic in normal operation.
    pub fn run<F>(&self, f: F)
    where
        F: Fn(usize) + Send + Sync + 'static,
    {
        self.run_arc(Arc::new(f));
    }

    /// As [`Team::run`] with a pre-wrapped job (avoids re-allocating when
    /// dispatching the same region repeatedly).
    pub fn run_arc(&self, job: Job) {
        let mut st = self.shared.m.lock();
        st.job = Some(job);
        st.done = 0;
        st.gen += 1;
        let gen = st.gen;
        self.shared.work_cv.notify_all();
        while !(st.gen == gen && st.done == self.shared.n) {
            self.shared.done_cv.wait(&mut st);
        }
        st.job = None;
    }
}

fn worker_loop(pid: usize, shared: Arc<Shared>) {
    let mut seen_gen = 0u64;
    loop {
        let job = {
            let mut st = shared.m.lock();
            while !st.shutdown && (st.gen == seen_gen || st.job.is_none()) {
                shared.work_cv.wait(&mut st);
            }
            if st.shutdown {
                return;
            }
            seen_gen = st.gen;
            Arc::clone(st.job.as_ref().unwrap())
        };
        job(pid);
        let mut st = shared.m.lock();
        st.done += 1;
        if st.done == shared.n {
            shared.done_cv.notify_all();
        }
    }
}

impl Drop for Team {
    fn drop(&mut self) {
        {
            let mut st = self.shared.m.lock();
            st.shutdown = true;
            self.shared.work_cv.notify_all();
        }
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

    #[test]
    fn all_workers_run_each_region() {
        let team = Team::new(4);
        let hits = Arc::new(AtomicUsize::new(0));
        for _ in 0..50 {
            let hits = Arc::clone(&hits);
            team.run(move |_pid| {
                hits.fetch_add(1, Ordering::SeqCst);
            });
        }
        assert_eq!(hits.load(Ordering::SeqCst), 200);
    }

    #[test]
    fn workers_receive_distinct_pids() {
        let team = Team::new(8);
        let mask = Arc::new(AtomicU64::new(0));
        {
            let mask = Arc::clone(&mask);
            team.run(move |pid| {
                mask.fetch_or(1 << pid, Ordering::SeqCst);
            });
        }
        assert_eq!(mask.load(Ordering::SeqCst), 0xFF);
    }

    #[test]
    fn run_blocks_until_completion() {
        let team = Team::new(3);
        let v = Arc::new(AtomicUsize::new(0));
        {
            let v = Arc::clone(&v);
            team.run(move |_| {
                std::thread::sleep(std::time::Duration::from_millis(5));
                v.fetch_add(1, Ordering::SeqCst);
            });
        }
        // run() returned, so every worker finished.
        assert_eq!(v.load(Ordering::SeqCst), 3);
    }

    #[test]
    fn single_worker_team() {
        let team = Team::new(1);
        let v = Arc::new(AtomicUsize::new(0));
        let vv = Arc::clone(&v);
        team.run(move |pid| {
            assert_eq!(pid, 0);
            vv.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(v.load(Ordering::SeqCst), 1);
    }
}
