//! End-to-end tests for the always-on sync profiler: event-ring
//! accounting and critical-path analysis on profiled real-thread runs,
//! observed-vs-predicted joins against the decision log, profile-JSON
//! round-trips, Chrome-trace well-formedness with the profile event
//! classes (instants, async spans, flows) for every shipped kernel
//! under both plans, and stats aggregation across recovery attempts.

use barrier_elim::analysis::Bindings;
use barrier_elim::frontend;
use barrier_elim::interp::{run_parallel_observed, run_parallel_recovering, Mem, ObserveOptions};
use barrier_elim::ir::{Program, SymId};
use barrier_elim::obs::{self, Json, TraceBuilder};
use barrier_elim::oracle::{ChaosConfig, ChaosInjector, DropSpec};
use barrier_elim::runtime::events::ProfileOptions;
use barrier_elim::runtime::{RetryPolicy, Team};
use barrier_elim::spmd_opt::{
    demote_sites, fork_join, optimize_explained, OptimizeOptions, SyncOp,
};
use std::sync::Arc;
use std::time::Duration;

const KERNELS: &[(&str, &[(&str, i64)])] = &[
    ("broadcast.be", &[("n", 12)]),
    ("jacobi.be", &[("n", 48), ("tmax", 4)]),
    ("pipeline.be", &[("n", 16), ("tmax", 3)]),
    ("private_gather.be", &[("n", 10)]),
    ("shallow.be", &[("n", 12), ("tmax", 2)]),
];

fn load(kernel: &str, sets: &[(&str, i64)], nprocs: i64) -> (Arc<Program>, Arc<Bindings>) {
    let src = std::fs::read_to_string(format!("kernels/{kernel}")).unwrap();
    let prog = frontend::parse(&src).unwrap_or_else(|e| panic!("{kernel}: {e}"));
    let mut bind = Bindings::new(nprocs);
    for (name, v) in sets {
        let pos = prog
            .syms
            .iter()
            .position(|s| &s.name == name)
            .unwrap_or_else(|| panic!("sym {name} missing"));
        bind.bind(SymId(pos as u32), *v);
    }
    (Arc::new(prog), Arc::new(bind))
}

fn profiled_opts() -> ObserveOptions {
    ObserveOptions {
        telemetry: true,
        trace: true,
        profile: Some(ProfileOptions::default()),
        ..ObserveOptions::default()
    }
}

// --- event-ring accounting and analysis ---------------------------------

/// Every kernel, both plans: a profiled run returns an event stream
/// whose accounting identity holds with zero drops at the default
/// capacity, and whose analysis attributes at least one complete
/// episode to every live sync site.
#[test]
fn profiled_runs_account_for_every_event_on_every_kernel() {
    let team = Team::new(4);
    for (kernel, sets) in KERNELS {
        let (prog, bind) = load(kernel, sets, 4);
        for (label, plan) in [
            ("fork-join", fork_join(&prog, &bind)),
            ("optimized", barrier_elim::spmd_opt::optimize(&prog, &bind)),
        ] {
            let mem = Arc::new(Mem::new(&prog, &bind));
            let out = run_parallel_observed(&prog, &bind, &plan, &mem, &team, &profiled_opts());
            assert!(out.ok(), "{kernel} {label}: profiled run failed");
            let data = out.profile.as_ref().expect("profile requested");
            assert_eq!(
                data.events.len() as u64 + data.dropped,
                data.attempted(),
                "{kernel} {label}: ring accounting broken"
            );
            assert_eq!(data.dropped, 0, "{kernel} {label}: default ring overflowed");
            assert!(!data.events.is_empty(), "{kernel} {label}: no events");

            let metas = obs::site_metas(&prog, &plan);
            let report = obs::analyze(data, &metas, 4);
            assert_eq!(report.nprocs, 4);
            for sp in &report.sites {
                let meta = &metas[sp.site];
                assert!(
                    meta.op != "eliminated",
                    "{kernel} {label}: eliminated slot s{} produced sync events",
                    sp.site
                );
                assert!(
                    sp.episodes > 0,
                    "{kernel} {label}: live site s{} has no complete episode",
                    sp.site
                );
                assert!(
                    sp.crit_ns <= sp.spread_ns,
                    "{kernel} {label}: s{}: last-arriver gap exceeds full spread",
                    sp.site
                );
                let hist: u64 = sp.slack_hist.iter().sum();
                assert_eq!(
                    hist,
                    sp.episodes as u64 * 4,
                    "{kernel} {label}: s{}: slack histogram misses arrivals",
                    sp.site
                );
            }
            // Every live (non-eliminated) site shows up in the report.
            let live = metas.iter().filter(|m| m.op != "eliminated").count();
            assert_eq!(
                report.sites.len(),
                live,
                "{kernel} {label}: live sites missing from the profile"
            );
            // Region begin/end pairs: every worker ran one region.
            for pid in 0..4 {
                assert!(
                    report.region_ns_by_pid[pid] > 0,
                    "{kernel} {label}: P{pid} has no region span"
                );
            }
        }
    }
}

// --- observed vs predicted ----------------------------------------------

/// The observed-vs-predicted join emits one row for every decision the
/// optimizer changed, keyed by canonical site id, and the profile JSON
/// document round-trips through the obs JSON parser.
#[test]
fn observed_vs_predicted_covers_every_changed_decision_and_round_trips() {
    let team = Team::new(4);
    for (kernel, sets) in KERNELS {
        let (prog, bind) = load(kernel, sets, 4);
        let (plan, log, _) = optimize_explained(&prog, &bind, OptimizeOptions::default());
        let changed: Vec<usize> = log
            .iter()
            .filter(|d| !matches!(d.placed, SyncOp::Barrier))
            .map(|d| d.site)
            .collect();
        assert!(!changed.is_empty(), "{kernel}: optimizer changed nothing");
        let mut base_plan = plan.clone();
        demote_sites(&mut base_plan, &changed);

        let mem_o = Arc::new(Mem::new(&prog, &bind));
        let out_o = run_parallel_observed(&prog, &bind, &plan, &mem_o, &team, &profiled_opts());
        let mem_b = Arc::new(Mem::new(&prog, &bind));
        let out_b =
            run_parallel_observed(&prog, &bind, &base_plan, &mem_b, &team, &profiled_opts());

        let opt_report = obs::analyze(
            out_o.profile.as_ref().unwrap(),
            &obs::site_metas(&prog, &plan),
            4,
        );
        let base_report = obs::analyze(
            out_b.profile.as_ref().unwrap(),
            &obs::site_metas(&prog, &base_plan),
            4,
        );
        let rows = obs::observed_vs_predicted(&log, &base_report, &opt_report);
        assert_eq!(
            rows.iter().map(|r| r.site).collect::<Vec<_>>(),
            changed,
            "{kernel}: OVP rows must cover exactly the changed decisions, in site order"
        );
        for r in &rows {
            assert_eq!(
                r.saved_wait_ns,
                r.baseline_wait_ns as i64 - r.observed_wait_ns as i64,
                "{kernel}: s{}: saved-wait arithmetic",
                r.site
            );
            assert_ne!(r.placed, "barrier", "{kernel}: kept barrier in OVP rows");
            // The demoted baseline really ran the site as a barrier, so
            // it must have synchronized there.
            assert!(
                base_report.site(r.site).is_some(),
                "{kernel}: baseline never synced at changed site s{}",
                r.site
            );
        }

        let doc = obs::profile_json(&prog.name, &opt_report, Some(&rows));
        let parsed = obs::parse(&doc.to_string_pretty()).expect("profile JSON parses");
        assert_eq!(
            parsed.get("program").and_then(Json::as_str),
            Some(&*prog.name)
        );
        assert_eq!(parsed.get("nprocs").and_then(Json::as_u64), Some(4));
        assert_eq!(
            parsed.get("dropped").and_then(Json::as_u64),
            Some(0),
            "{kernel}: drops must be reported in the document"
        );
        let sites = parsed.get("sites").and_then(Json::as_arr).unwrap();
        assert_eq!(sites.len(), opt_report.sites.len());
        let ovp = parsed
            .get("observed_vs_predicted")
            .and_then(Json::as_arr)
            .expect("{kernel}: OVP array present");
        assert_eq!(ovp.len(), rows.len());
        for (j, r) in ovp.iter().zip(&rows) {
            assert_eq!(j.get("site").and_then(Json::as_u64), Some(r.site as u64));
            assert_eq!(
                j.get("saved_wait_ns").and_then(Json::as_num),
                Some(r.saved_wait_ns as f64)
            );
            assert_eq!(j.get("realized").and_then(Json::as_bool), Some(r.realized));
        }
    }
}

// --- Chrome trace with profile event classes ----------------------------

/// The trace writer stays well-formed when the profile stream is lowered
/// onto it: for every kernel under both plans the document parses,
/// timestamps are non-decreasing per track, B/E nesting balances, pid
/// and tid are integers, instants carry thread scope, and async/flow
/// phases arrive in matched id-sharing pairs.
#[test]
fn profiled_trace_is_well_formed_for_every_kernel_and_plan() {
    let team = Team::new(4);
    for (kernel, sets) in KERNELS {
        let (prog, bind) = load(kernel, sets, 4);
        for (label, plan) in [
            ("fork-join", fork_join(&prog, &bind)),
            ("optimized", barrier_elim::spmd_opt::optimize(&prog, &bind)),
        ] {
            let mem = Arc::new(Mem::new(&prog, &bind));
            let out = run_parallel_observed(&prog, &bind, &plan, &mem, &team, &profiled_opts());
            assert!(out.ok(), "{kernel} {label}: run failed");
            let data = out.profile.as_ref().unwrap();
            let metas = obs::site_metas(&prog, &plan);

            let mut tb = TraceBuilder::new(&prog.name, 4);
            tb.extend(out.spans.clone());
            tb.extend_with_profile(data, &metas, 4, 0, "");
            let text = tb.to_json().to_string_compact();
            let doc = obs::parse(&text)
                .unwrap_or_else(|e| panic!("{kernel} {label}: trace does not parse: {e}"));
            let events = doc.get("traceEvents").and_then(Json::as_arr).unwrap();

            let mut last_ts: Vec<u64> = Vec::new();
            let mut depth: Vec<i64> = Vec::new();
            let mut open_async: Vec<u64> = Vec::new();
            let mut open_flow: Vec<u64> = Vec::new();
            let mut flow_finishes: Vec<u64> = Vec::new();
            let mut saw = (0u32, 0u32, 0u32); // instants, async pairs, flow pairs
            for ev in events {
                let ph = ev.get("ph").and_then(Json::as_str).expect("ph");
                let tid = ev
                    .get("tid")
                    .and_then(Json::as_u64)
                    .unwrap_or_else(|| panic!("{kernel} {label}: non-integer tid in {ph}"))
                    as usize;
                assert!(
                    ev.get("pid").and_then(Json::as_u64).is_some(),
                    "{kernel} {label}: non-integer pid"
                );
                if tid >= last_ts.len() {
                    last_ts.resize(tid + 1, 0);
                    depth.resize(tid + 1, 0);
                }
                if ph == "M" {
                    continue;
                }
                let ts = ev.get("ts").and_then(Json::as_u64).expect("ts");
                assert!(
                    ts >= last_ts[tid],
                    "{kernel} {label}: timestamps regress on track {tid}"
                );
                last_ts[tid] = ts;
                assert!(
                    ev.get("name").and_then(Json::as_str).is_some(),
                    "{kernel} {label}: {ph} event without a name"
                );
                match ph {
                    "B" => depth[tid] += 1,
                    "E" => {
                        depth[tid] -= 1;
                        assert!(depth[tid] >= 0, "{kernel} {label}: E without B");
                    }
                    "i" => {
                        assert_eq!(
                            ev.get("s").and_then(Json::as_str),
                            Some("t"),
                            "{kernel} {label}: instant without thread scope"
                        );
                        saw.0 += 1;
                    }
                    "b" => open_async.push(ev.get("id").and_then(Json::as_u64).expect("id")),
                    "e" => {
                        let id = ev.get("id").and_then(Json::as_u64).expect("id");
                        let k = open_async
                            .iter()
                            .position(|&x| x == id)
                            .unwrap_or_else(|| panic!("{kernel} {label}: e without b (id {id})"));
                        open_async.swap_remove(k);
                        saw.1 += 1;
                    }
                    // Flow start/finish live on different tracks, so
                    // either may come first in (tid-major) document
                    // order; Chrome pairs them by id. Collect and match
                    // at the end.
                    "s" => open_flow.push(ev.get("id").and_then(Json::as_u64).expect("id")),
                    "f" => {
                        flow_finishes.push(ev.get("id").and_then(Json::as_u64).expect("id"));
                        assert_eq!(
                            ev.get("bp").and_then(Json::as_str),
                            Some("e"),
                            "{kernel} {label}: flow finish without bp:e"
                        );
                        saw.2 += 1;
                    }
                    other => panic!("{kernel} {label}: unexpected phase {other:?}"),
                }
            }
            assert!(
                depth.iter().all(|&d| d == 0),
                "{kernel} {label}: unbalanced spans"
            );
            assert!(
                open_async.is_empty(),
                "{kernel} {label}: dangling async span"
            );
            open_flow.sort_unstable();
            flow_finishes.sort_unstable();
            assert_eq!(
                open_flow, flow_finishes,
                "{kernel} {label}: flow starts and finishes must pair by id"
            );
            // Every live site contributes one critical-path flow.
            let live = metas.iter().filter(|m| m.op != "eliminated").count() as u32;
            assert_eq!(
                saw.2, live,
                "{kernel} {label}: one flow arrow per live site"
            );
        }
    }
}

// --- recovery: profiling across attempts --------------------------------

/// A persistent drop forces retries: the profile stream spans multiple
/// epochs, records the supervisor's checkpoint/rollback/retry marks on
/// its own track, keeps its accounting identity, and the aggregated
/// `total_stats` dominate the final attempt's counters (the satellite-1
/// contract behind `--metrics-json` under `--recover`).
#[test]
fn recovery_profile_spans_epochs_and_aggregates_stats_across_attempts() {
    let (prog, bind) = load("jacobi.be", &[("n", 48), ("tmax", 4)], 4);
    let plan = barrier_elim::spmd_opt::optimize(&prog, &bind);
    let mem = Arc::new(Mem::new(&prog, &bind));
    let team = Team::new(4);
    let opts = ObserveOptions {
        telemetry: true,
        deadline: Some(Duration::from_millis(150)),
        chaos: Some(Arc::new(ChaosInjector::with_config(
            7,
            ChaosConfig {
                drop: Some(DropSpec {
                    site: 1,
                    pid: 2,
                    from_visit: 1,
                }),
                ..ChaosConfig::default()
            },
        ))),
        profile: Some(ProfileOptions::default()),
        ..ObserveOptions::default()
    };
    let policy = RetryPolicy {
        backoff_base: Duration::from_millis(1),
        backoff_cap: Duration::from_millis(4),
        ..RetryPolicy::default()
    };
    let r = run_parallel_recovering(&prog, &bind, &plan, &mem, &team, &opts, &policy);
    assert!(r.ok(), "supervised run did not converge");
    assert!(r.attempts_used > 1, "the drop never bit");

    let data = r.outcome.profile.as_ref().expect("profile requested");
    assert_eq!(
        data.events.len() as u64 + data.dropped,
        data.attempted(),
        "ring accounting broken across retries"
    );
    let report = obs::analyze(data, &obs::site_metas(&prog, &r.final_plan), 4);
    assert_eq!(
        report.epochs as u32, r.attempts_used,
        "one profile epoch per attempt"
    );
    assert!(report.marks.checkpoints >= 1, "checkpoint mark missing");
    assert_eq!(
        report.marks.rollbacks,
        r.attempts_used as u64 - 1,
        "one rollback per failed attempt"
    );
    assert_eq!(
        report.marks.retries,
        r.attempts_used as u64 - 1,
        "one retry mark per failed attempt"
    );

    // Satellite 1: totals cover every attempt, not just the final one.
    let total = &r.total_stats;
    let last = &r.outcome.stats;
    let wait = |s: &barrier_elim::runtime::stats::StatsSnapshot| {
        s.barrier_wait_ns + s.counter_wait_ns + s.neighbor_wait_ns
    };
    assert!(total.barrier_arrivals >= last.barrier_arrivals);
    assert!(
        total.spin_rounds + total.yield_rounds + total.parks
            >= last.spin_rounds + last.yield_rounds + last.parks,
        "escalation totals dropped attempts"
    );
    // The failed attempts blocked until a deadline fired, so the
    // aggregate must show strictly more blocked time than the clean
    // final attempt alone.
    assert!(
        wait(total) > wait(last),
        "aggregate wait should include the deadline-length stalls of failed attempts"
    );
    // The per-attempt reports carry their own escalation counters and
    // sum (with the final attempt) to the aggregate.
    let summed: u64 = r.attempts.iter().map(|a| a.parks).sum::<u64>() + last.parks;
    assert_eq!(
        total.parks, summed,
        "per-attempt park counters must sum to the total"
    );
}

// --- overflow is counted, never blocking --------------------------------

/// A deliberately tiny ring overflows: the run still completes and the
/// analyzer reports exactly the overwritten count.
#[test]
fn tiny_rings_overflow_by_counting_not_blocking() {
    let (prog, bind) = load("jacobi.be", &[("n", 48), ("tmax", 4)], 4);
    let plan = barrier_elim::spmd_opt::optimize(&prog, &bind);
    let mem = Arc::new(Mem::new(&prog, &bind));
    let team = Team::new(4);
    let opts = ObserveOptions {
        profile: Some(ProfileOptions { capacity: 8 }),
        ..ObserveOptions::default()
    };
    let out = run_parallel_observed(&prog, &bind, &plan, &mem, &team, &opts);
    assert!(out.ok(), "overflowing profiler must not affect the run");
    let data = out.profile.as_ref().unwrap();
    assert!(data.dropped > 0, "tiny ring never overflowed");
    assert_eq!(data.events.len() as u64 + data.dropped, data.attempted());
    // The drop count survives into the analyzed report and document.
    let report = obs::analyze(data, &obs::site_metas(&prog, &plan), 4);
    assert_eq!(report.dropped, data.dropped);
    let doc = obs::profile_json(&prog.name, &report, None);
    assert_eq!(
        doc.get("dropped").and_then(Json::as_u64),
        Some(data.dropped)
    );
}
