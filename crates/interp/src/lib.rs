//! Reference interpreter and SPMD executors.
//!
//! Three ways to run a program, all over the same [`Mem`] storage:
//!
//! * [`run_sequential`] — the original sequential semantics (the oracle
//!   every parallel execution must reproduce);
//! * [`run_virtual`] — executes an optimized [`spmd_opt::SpmdProgram`]
//!   with `P` *virtual* processors on one thread, interleaving their
//!   work chunks in any order permitted by the placed synchronization
//!   (round-robin, reversed, or seeded-random adversarial orders). This
//!   yields deterministic dynamic synchronization counts for any `P`
//!   (the paper's "barriers executed at run time") and doubles as a
//!   soundness oracle: an insufficient sync placement produces wrong
//!   results under some adversarial order;
//! * [`run_parallel`] — executes the schedule on real threads
//!   (`runtime::Team`) with instrumented barriers/counters/flags, for
//!   wall-clock speedup measurements.
//!
//! All array and scalar cells are relaxed atomics: the synchronization
//! placed by the optimizer provides the acquire/release ordering, and a
//! mis-placed sync produces wrong *values*, never undefined behaviour.

//! ```
//! use ir::build::*;
//! use analysis::Bindings;
//! use interp::{run_sequential, run_virtual, Mem, ScheduleOrder};
//!
//! let mut pb = ProgramBuilder::new("demo");
//! let n = pb.sym("n");
//! let a = pb.array("A", &[sym(n)], dist_block());
//! let i = pb.begin_par("i", con(0), sym(n) - 1);
//! pb.assign(elem(a, [idx(i)]), ival(idx(i) * 2));
//! pb.end();
//! let prog = pb.finish();
//! let bind = Bindings::new(4).set(n, 16);
//!
//! let oracle = Mem::new(&prog, &bind);
//! run_sequential(&prog, &bind, &oracle);
//!
//! let plan = spmd_opt::optimize(&prog, &bind);
//! let mem = Mem::new(&prog, &bind);
//! let out = run_virtual(&prog, &bind, &plan, &mem, ScheduleOrder::Reverse);
//! assert_eq!(mem.max_abs_diff(&oracle), 0.0);
//! assert_eq!(out.counts.barriers, 1);
//! ```

pub mod checkpoint;
pub mod degrade;
pub mod eval;
pub mod events;
pub mod mem;
pub mod par;
pub mod recover;
pub mod trace;
pub mod virt;

pub use checkpoint::Checkpoint;
pub use degrade::{run_parallel_degrading, DegradeOutcome, DegradeRound, DegradeRung};
pub use events::{render_events, unroll, Event};
pub use mem::Mem;
pub use par::{
    run_parallel, run_parallel_observed, run_parallel_observed_on, run_parallel_with, BarrierKind,
    ChaosAction, ObserveOptions, ParallelOutcome, SyncChaos, SyncFabric,
};
pub use recover::{run_parallel_recovering, RecoveryOutcome};
pub use trace::{Access, AccessKind, Target, TraceBuffer};
pub use virt::{run_virtual, run_virtual_traced, ScheduleOrder, VirtualOutcome};

use analysis::Bindings;
use ir::Program;

/// Execute the program with its original sequential semantics.
pub fn run_sequential(prog: &Program, bind: &Bindings, mem: &Mem) {
    let mut env = eval::Env::new(prog);
    for &node in &prog.body {
        eval::exec_subtree_seq(prog, bind, mem, &mut env, node, 0);
    }
}
