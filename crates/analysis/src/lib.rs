//! Dependence, computation-partition, and communication analysis.
//!
//! This crate implements §3.2 of Tseng (PPoPP'95): given a program whose
//! parallel loops and data decompositions are known, it decides — for any
//! pair of statement groups and any loop level — whether *inter-processor
//! data movement* can occur, and if so what shape it has (nearest
//! neighbor, unique producer, or general). The decision procedure encodes
//! loop bounds, guards, computation partitions, and array-subscript
//! equality as a system of symbolic linear inequalities (`ineq` crate)
//! and scans it with Fourier-Motzkin elimination in the paper's variable
//! order.
//!
//! The outputs feed the optimizer in `spmd-opt`:
//! * [`CommPattern::NoComm`] — the barrier between the groups can be
//!   **eliminated**;
//! * [`CommPattern::Neighbor`] — it can be replaced with neighbor
//!   post/wait flags;
//! * [`CommPattern::Producer1`] — it can be replaced with a counter
//!   (unique producer increments, consumers wait);
//! * [`CommPattern::General`] — the barrier must stay.
//!
//! ```
//! use ir::build::*;
//! use analysis::{Bindings, CommMode, CommPattern, CommQuery};
//!
//! // Producer writes A(i); consumer reads A(j-1): one-element shift.
//! let mut pb = ProgramBuilder::new("shift");
//! let n = pb.sym("n");
//! let a = pb.array("A", &[sym(n)], dist_block());
//! let b = pb.array("B", &[sym(n)], dist_block());
//! let i = pb.begin_par("i", con(0), sym(n) - 1);
//! pb.assign(elem(a, [idx(i)]), ival(idx(i)).sin());
//! pb.end();
//! let j = pb.begin_par("j", con(1), sym(n) - 1);
//! pb.assign(elem(b, [idx(j)]), arr(a, [idx(j) - 1]));
//! pb.end();
//! let prog = pb.finish();
//!
//! let q = CommQuery::new(&prog, Bindings::new(8).set(n, 128));
//! let stmts = prog.all_statements();
//! assert_eq!(
//!     q.comm_stmts(&stmts[0], &stmts[1], CommMode::LoopIndependent),
//!     CommPattern::Neighbor { fwd: true, bwd: false },
//! );
//! ```

pub mod bindings;
pub mod codegen;
pub mod comm;
pub mod dep;
pub mod partition;
pub mod privatization;
pub mod translate;

pub use bindings::Bindings;
pub use codegen::{scan_owned_range, ScannedBounds};
pub use comm::{
    set_pair_probe, AnalysisConfig, AnalysisStats, CommMode, CommOutcome, CommPattern, CommQuery,
    DistSet, PairProbe, ProducerSpec, MAX_PAIR_DIST, MAX_PAIR_FANIN,
};
pub use dep::{check_parallel_loops, loop_carries_dependence};
pub use partition::{
    loop_is_replicated, loop_partition, stmt_partition, LoopPartition, StmtPartition,
};
pub use privatization::check_privatizable;
