//! Rendering of SPMD schedules (used by the transformation-example
//! figure and for debugging).

use crate::plan::{PhaseKind, RItem, Region, SpmdProgram, SyncOp, TopItem};
use ir::pretty::pretty_node;
use ir::Program;
use std::fmt::Write;

fn sync_str(s: &SyncOp) -> Option<String> {
    match s {
        SyncOp::None => None,
        SyncOp::Barrier => Some("-- BARRIER --".into()),
        SyncOp::Neighbor { fwd, bwd } => {
            let dir = match (fwd, bwd) {
                (true, true) => "both",
                (true, false) => "fwd",
                (false, true) => "bwd",
                (false, false) => "none",
            };
            Some(format!("-- neighbor post/wait ({dir}) --"))
        }
        SyncOp::Counter { id, .. } => Some(format!("-- counter #{id} incr/wait --")),
        SyncOp::PairCounter { dists, producers } => {
            let prods = if producers.is_empty() {
                String::new()
            } else {
                format!(" + {} producer(s)", producers.len())
            };
            Some(format!(
                "-- pairwise post/wait (dists {}{prods}) --",
                dists.render()
            ))
        }
    }
}

fn render_items(prog: &Program, items: &[RItem], indent: usize, out: &mut String) {
    let pad = "  ".repeat(indent);
    for it in items {
        match it {
            RItem::Phase(p) => {
                let hdr = match &p.kind {
                    PhaseKind::Par { .. } => "",
                    PhaseKind::Master => "IF (myproc == 0) THEN  ! guarded\n",
                    PhaseKind::Replicated => "! replicated on all processors\n",
                };
                if !hdr.is_empty() {
                    write!(out, "{pad}{hdr}").unwrap();
                }
                out.push_str(&pretty_node(prog, p.node, indent));
                if matches!(p.kind, PhaseKind::Master) {
                    writeln!(out, "{pad}ENDIF").unwrap();
                }
                if let Some(s) = sync_str(&p.after) {
                    writeln!(out, "{pad}{s}").unwrap();
                }
            }
            RItem::Seq {
                node,
                body,
                bottom,
                after,
            } => {
                let l = prog.expect_loop(*node);
                writeln!(
                    out,
                    "{pad}DO {} = {}, {}   ! replicated control",
                    l.name,
                    ir::pretty::affine_str(prog, &l.lo),
                    ir::pretty::affine_str(prog, &l.hi)
                )
                .unwrap();
                render_items(prog, body, indent + 1, out);
                if let Some(s) = sync_str(bottom) {
                    writeln!(out, "{pad}  {s}").unwrap();
                }
                writeln!(out, "{pad}ENDDO").unwrap();
                if let Some(s) = sync_str(after) {
                    writeln!(out, "{pad}{s}").unwrap();
                }
            }
        }
    }
}

fn render_region(prog: &Program, r: &Region, indent: usize, out: &mut String) {
    let pad = "  ".repeat(indent);
    writeln!(out, "{pad}PARALLEL REGION (all processors)").unwrap();
    render_items(prog, &r.items, indent + 1, out);
    if let Some(s) = sync_str(&r.end) {
        writeln!(out, "{pad}  {s} (region end)").unwrap();
    }
    writeln!(out, "{pad}END REGION").unwrap();
}

/// Render a schedule as pseudo-Fortran with sync annotations.
pub fn render_plan(prog: &Program, plan: &SpmdProgram) -> String {
    let mut out = String::new();
    writeln!(out, "SCHEDULE {}", plan.name).unwrap();
    fn rec(prog: &Program, items: &[TopItem], indent: usize, out: &mut String) {
        let pad = "  ".repeat(indent);
        for it in items {
            match it {
                TopItem::SerialStmt(n) => {
                    writeln!(out, "{pad}! master only").unwrap();
                    out.push_str(&pretty_node(prog, *n, indent));
                }
                TopItem::MasterLoop { node, body } => {
                    let l = prog.expect_loop(*node);
                    writeln!(
                        out,
                        "{pad}DO {} = {}, {}   ! master drives",
                        l.name,
                        ir::pretty::affine_str(prog, &l.lo),
                        ir::pretty::affine_str(prog, &l.hi)
                    )
                    .unwrap();
                    rec(prog, body, indent + 1, out);
                    writeln!(out, "{pad}ENDDO").unwrap();
                }
                TopItem::Region(r) => render_region(prog, r, indent, out),
            }
        }
    }
    rec(prog, &plan.items, 1, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use crate::build::{fork_join, optimize};
    use analysis::Bindings;
    use ir::build::*;

    #[test]
    fn renders_sync_annotations() {
        let mut pb = ProgramBuilder::new("r");
        let n = pb.sym("n");
        let a = pb.array("A", &[sym(n)], dist_block());
        let b = pb.array("B", &[sym(n)], dist_block());
        let i = pb.begin_par("i", con(0), sym(n) - 1);
        pb.assign(elem(b, [idx(i)]), arr(a, [idx(i)]));
        pb.end();
        let j = pb.begin_par("j", con(1), sym(n) - 1);
        pb.assign(elem(a, [idx(j)]), arr(b, [idx(j) - 1]));
        pb.end();
        let prog = pb.finish();
        let bind = Bindings::new(4).set(n, 64);
        let opt = super::render_plan(&prog, &optimize(&prog, &bind));
        assert!(opt.contains("PARALLEL REGION"), "{opt}");
        assert!(opt.contains("neighbor post/wait"), "{opt}");
        let fj = super::render_plan(&prog, &fork_join(&prog, &bind));
        assert!(fj.contains("BARRIER"), "{fj}");
    }
}
