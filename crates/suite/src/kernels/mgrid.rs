//! Two-level multigrid V-cycle fragment (NAS `mgrid` class): smooth on
//! the fine grid, restrict to the coarse grid (`C(i) = F(2i±1)`),
//! smooth coarse, prolongate back (`F(2i) += C(i)`).
//!
//! The interesting analysis fact: with the fine grid block-distributed
//! over `2n` elements and the coarse grid over `n`, the owner of
//! `F(2i)` *is* the owner of `C(i)` (block sizes differ by exactly the
//! stride), so the restriction/prolongation phases are aligned and keep
//! no barrier — a stride-2 identity Fourier-Motzkin proves from the
//! block inequalities. The smoothing phases keep their neighbor flags.

use crate::{Built, Scale};
use ir::build::*;

/// Build at the given scale (`n` = coarse points; fine grid has `2n`).
pub fn build(scale: Scale) -> Built {
    let (nv, tv) = match scale {
        Scale::Test => (16, 2),
        Scale::Small => (256, 8),
        Scale::Full => (1 << 15, 30),
    };
    let mut pb = ProgramBuilder::new("mgrid");
    let n = pb.sym("n");
    let tmax = pb.sym("tmax");
    let f = pb.array("F", &[sym(n) * 2 + 2], dist_block());
    let fs = pb.array("FS", &[sym(n) * 2 + 2], dist_block());
    let c = pb.array("C", &[sym(n) + 2], dist_block());
    let cs = pb.array("CS", &[sym(n) + 2], dist_block());

    let i0 = pb.begin_par("i0", con(0), sym(n) * 2 + 1);
    pb.assign(elem(f, [idx(i0)]), ival(idx(i0) * 3).sin());
    pb.end();

    let _t = pb.begin_seq("t", con(0), sym(tmax) - 1);

    // Fine smooth (neighbor).
    let i1 = pb.begin_par("i1", con(1), sym(n) * 2);
    pb.assign(
        elem(fs, [idx(i1)]),
        ex(0.25) * (arr(f, [idx(i1) - 1]) + arr(f, [idx(i1) + 1])) + ex(0.5) * arr(f, [idx(i1)]),
    );
    pb.end();

    // Restrict: C(i) = weighted F(2i-1..2i+1) — stride-2 aligned.
    let i2 = pb.begin_par("i2", con(1), sym(n));
    pb.assign(
        elem(c, [idx(i2)]),
        ex(0.25) * arr(fs, [idx(i2) * 2 - 1])
            + ex(0.5) * arr(fs, [idx(i2) * 2])
            + ex(0.25) * arr(fs, [idx(i2) * 2 + 1]),
    );
    pb.end();

    // Coarse smooth (neighbor on the coarse grid).
    let i3 = pb.begin_par("i3", con(1), sym(n));
    pb.assign(
        elem(cs, [idx(i3)]),
        ex(0.25) * (arr(c, [idx(i3) - 1]) + arr(c, [idx(i3) + 1])) + ex(0.5) * arr(c, [idx(i3)]),
    );
    pb.end();

    // Prolongate: F(2i) = FS(2i) + CS(i) — stride-2 aligned again.
    let i4 = pb.begin_par("i4", con(1), sym(n));
    pb.assign(
        elem(f, [idx(i4) * 2]),
        arr(fs, [idx(i4) * 2]) + arr(cs, [idx(i4)]) * ex(0.1),
    );
    pb.assign(
        elem(f, [idx(i4) * 2 + 1]),
        arr(fs, [idx(i4) * 2 + 1]) + arr(cs, [idx(i4)]) * ex(0.05),
    );
    pb.end();

    pb.end(); // t

    Built {
        prog: pb.finish(),
        values: vec![(n, nv), (tmax, tv)],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inter_grid_transfers_are_aligned() {
        let built = build(Scale::Test);
        let bind = built.bindings(4);
        let st = spmd_opt::optimize(&built.prog, &bind).static_stats();
        // All four phases in one region, at most the end barrier remains;
        // the stride-2 restrict/prolongate slots are neighbor or
        // eliminated — never barriers.
        assert_eq!(st.regions, 1, "{st:?}");
        assert_eq!(st.barriers, 1, "{st:?}");
        assert!(st.neighbor_syncs >= 2, "{st:?}");
    }
}
