//! Livermore kernel 18 (explicit 2-D hydrodynamics fragment): three
//! stencil phases per time step over block-distributed rows, with ±1
//! reads in both dimensions — the classic multi-phase neighbor pattern.

use crate::{Built, Scale};
use ir::build::*;

/// Build at the given scale.
pub fn build(scale: Scale) -> Built {
    let (nv, tv) = match scale {
        Scale::Test => (10, 2),
        Scale::Small => (48, 8),
        Scale::Full => (384, 24),
    };
    let mut pb = ProgramBuilder::new("livermore18");
    let n = pb.sym("n");
    let tmax = pb.sym("tmax");
    let za = pb.array("ZA", &[sym(n), sym(n)], dist_block());
    let zb = pb.array("ZB", &[sym(n), sym(n)], dist_block());
    let zp = pb.array("ZP", &[sym(n), sym(n)], dist_block());
    let zq = pb.array("ZQ", &[sym(n), sym(n)], dist_block());
    let zr = pb.array("ZR", &[sym(n), sym(n)], dist_block());
    let zu = pb.array("ZU", &[sym(n), sym(n)], dist_block());

    let i0 = pb.begin_par("i0", con(0), sym(n) - 1);
    let j0 = pb.begin_seq("j0", con(0), sym(n) - 1);
    pb.assign(elem(zp, [idx(i0), idx(j0)]), ival(idx(i0) + idx(j0)).sin());
    pb.assign(
        elem(zq, [idx(i0), idx(j0)]),
        ival(idx(i0) * 2 + idx(j0)).cos(),
    );
    pb.assign(elem(zr, [idx(i0), idx(j0)]), ival(idx(i0) - idx(j0)).sin());
    pb.assign(elem(zu, [idx(i0), idx(j0)]), ex(0.0));
    pb.end();
    pb.end();

    let _t = pb.begin_seq("t", con(0), sym(tmax) - 1);

    // Phase 1: ZA from ZP/ZQ (reads at -1/+1).
    let i1 = pb.begin_par("i1", con(1), sym(n) - 2);
    let j1 = pb.begin_seq("j1", con(1), sym(n) - 2);
    pb.assign(
        elem(za, [idx(i1), idx(j1)]),
        (arr(zp, [idx(i1), idx(j1) - 1]) + arr(zq, [idx(i1), idx(j1) - 1])
            - arr(zp, [idx(i1) - 1, idx(j1)])
            - arr(zq, [idx(i1) - 1, idx(j1)]))
            * ex(0.5),
    );
    pb.end();
    pb.end();

    // Phase 2: ZB from ZA and ZR (reads at ±1).
    let i2 = pb.begin_par("i2", con(1), sym(n) - 2);
    let j2 = pb.begin_seq("j2", con(1), sym(n) - 2);
    pb.assign(
        elem(zb, [idx(i2), idx(j2)]),
        (arr(za, [idx(i2), idx(j2)]) - arr(za, [idx(i2) - 1, idx(j2)]))
            * arr(zr, [idx(i2), idx(j2)])
            + (arr(za, [idx(i2), idx(j2)]) - arr(za, [idx(i2), idx(j2) - 1])) * ex(0.25),
    );
    pb.end();
    pb.end();

    // Phase 3: velocity update feeding the next iteration.
    let i3 = pb.begin_par("i3", con(1), sym(n) - 2);
    let j3 = pb.begin_seq("j3", con(1), sym(n) - 2);
    pb.assign(
        elem(zu, [idx(i3), idx(j3)]),
        arr(zu, [idx(i3), idx(j3)]) + arr(zb, [idx(i3), idx(j3)]) * ex(0.1)
            - arr(za, [idx(i3) + 1, idx(j3)]) * ex(0.05),
    );
    pb.assign(
        elem(zp, [idx(i3), idx(j3)]),
        arr(zp, [idx(i3), idx(j3)]) + arr(zu, [idx(i3), idx(j3)]) * ex(0.01),
    );
    pb.end();
    pb.end();

    pb.end(); // t

    Built {
        prog: pb.finish(),
        values: vec![(n, nv), (tmax, tv)],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hydro_phases_use_neighbor_sync() {
        let built = build(Scale::Test);
        let bind = built.bindings(4);
        let st = spmd_opt::optimize(&built.prog, &bind).static_stats();
        assert_eq!(st.regions, 1);
        assert_eq!(st.barriers, 1, "{st:?}");
        assert!(st.neighbor_syncs >= 2, "{st:?}");
    }
}
