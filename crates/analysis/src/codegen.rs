//! Per-processor loop bounds by *scanning the owner polyhedron*
//! (Ancourt & Irigoin [2,3]) — the code-generation half of the paper's
//! machinery.
//!
//! For a block-partitioned parallel loop the set of iterations processor
//! `p` executes is the polyhedron
//!
//! ```text
//! { i :  lo <= i <= hi  ∧  p·b <= sub(i) <= p·b + b - 1 }
//! ```
//!
//! Projecting everything else away and reading the bounds of `i` yields
//! closed-form lower/upper expressions in `p` (and the outer loop
//! indices), exactly what a code generator would emit as the processor's
//! private loop header. The executor's hand-derived fast path
//! (`interp::events`) computes the same ranges arithmetically; the
//! property tests in this module check the two agree, which is precisely
//! the cross-validation the SUIF implementation relied on.

use crate::bindings::Bindings;
use crate::partition::LoopPartition;
use ineq::scan::{bounds_of, VarBounds};
use ineq::{Constraint, LinExpr, System, VarId, VarKind, VarTable};
use ir::{AffAtom, Affine, NodeId, Program};
use std::collections::BTreeMap;

/// Closed-form per-processor bounds for one parallel loop.
pub struct ScannedBounds {
    vt: VarTable,
    bounds: VarBounds,
    /// Constraints not mentioning the loop index: guards on whether the
    /// processor executes the phase at all (e.g. an owner input that is
    /// an outer loop index).
    guards: Vec<Constraint>,
    p: VarId,
    /// Reverse mapping for evaluation: inequality variable → IR atom.
    atom_of: BTreeMap<VarId, AffAtom>,
}

impl ScannedBounds {
    /// Evaluate the inclusive iteration range of processor `pid`, with
    /// `outer` supplying values for outer-loop indices and unbound
    /// symbolics. `None` when the range is empty.
    pub fn range(
        &self,
        bind: &Bindings,
        pid: i64,
        outer: &dyn Fn(ir::LoopId) -> Option<i64>,
    ) -> Option<(i64, i64)> {
        let assign = |v: VarId| -> i128 {
            if v == self.p {
                return pid as i128;
            }
            match self.atom_of.get(&v) {
                Some(AffAtom::Sym(s)) => {
                    bind.get(*s).expect("unbound symbolic in scanned bounds") as i128
                }
                Some(AffAtom::Loop(l)) => {
                    outer(*l).expect("unbound outer loop in scanned bounds") as i128
                }
                None => unreachable!("auxiliary variable survived projection"),
            }
        };
        for g in &self.guards {
            if !g.holds_int(&assign) {
                return None;
            }
        }
        let (lo, hi) = self.bounds.range(&assign)?;
        Some((lo as i64, hi as i64))
    }

    /// Number of lower/upper bound expressions (diagnostics).
    pub fn shape(&self) -> (usize, usize) {
        (self.bounds.lowers.len(), self.bounds.uppers.len())
    }
}

/// Translate an IR affine expression, registering atoms as variables.
fn tr(
    e: &Affine,
    vt: &mut VarTable,
    vars: &mut BTreeMap<AffAtom, VarId>,
    atom_of: &mut BTreeMap<VarId, AffAtom>,
    bind: &Bindings,
    iv: Option<(ir::LoopId, VarId)>,
) -> LinExpr {
    let mut out = LinExpr::constant(e.constant_term() as i128);
    for (a, c) in e.terms() {
        if let (Some((il, ivar)), AffAtom::Loop(l)) = (iv, a) {
            if l == il {
                out = out + LinExpr::term(ivar, c as i128);
                continue;
            }
        }
        if let AffAtom::Sym(s) = a {
            if let Some(v) = bind.get(s) {
                out = out + LinExpr::constant(c as i128 * v as i128);
                continue;
            }
        }
        let v = *vars.entry(a).or_insert_with(|| {
            // Outer atoms act like symbolic parameters of the scan.
            let v = vt.fresh(format!("{a:?}"), VarKind::Symbolic);
            atom_of.insert(v, a);
            v
        });
        out = out + LinExpr::term(v, c as i128);
    }
    out
}

/// Scan the owner polyhedron of a block-style partition. Returns `None`
/// for partitions whose iteration sets are not a single interval per
/// processor (cyclic variants) or cannot be bounded (unknown).
pub fn scan_owned_range(
    prog: &Program,
    bind: &Bindings,
    loop_node: NodeId,
    partition: &LoopPartition,
) -> Option<ScannedBounds> {
    let l = prog.expect_loop(loop_node);
    let mut vt = VarTable::new();
    let p = vt.fresh("p", VarKind::Processor);
    let i = vt.fresh(&l.name, VarKind::LoopIndex);
    let mut vars: BTreeMap<AffAtom, VarId> = BTreeMap::new();
    let mut atom_of: BTreeMap<VarId, AffAtom> = BTreeMap::new();
    let mut sys = System::new();

    // Loop bounds.
    let lo = tr(
        &l.lo,
        &mut vt,
        &mut vars,
        &mut atom_of,
        bind,
        Some((l.id, i)),
    );
    let hi = tr(
        &l.hi,
        &mut vt,
        &mut vars,
        &mut atom_of,
        bind,
        Some((l.id, i)),
    );
    sys.add_range(LinExpr::var(i), lo, hi);
    // Processor bounds.
    sys.add_range(
        LinExpr::var(p),
        LinExpr::constant(0),
        LinExpr::constant(bind.nprocs as i128 - 1),
    );

    match partition {
        LoopPartition::BlockOwner { block, sub, .. } => {
            let x = tr(sub, &mut vt, &mut vars, &mut atom_of, bind, Some((l.id, i)));
            let b = *block as i128;
            sys.add_ge(x.clone() - LinExpr::term(p, b));
            sys.add_ge(LinExpr::term(p, b) + LinExpr::constant(b - 1) - x);
        }
        LoopPartition::BlockIndex { lo, block, .. } => {
            let b = *block as i128;
            sys.add_ge(LinExpr::var(i) - LinExpr::constant(*lo as i128) - LinExpr::term(p, b));
            sys.add_ge(
                LinExpr::term(p, b) + LinExpr::constant(b - 1 + *lo as i128) - LinExpr::var(i),
            );
        }
        _ => return None,
    }

    // Every constraint mentions only i, p, and parameter atoms, so the
    // bounds of `i` are directly scannable; constraints without `i`
    // become guards (the processor may own no iteration at all).
    let bounds = bounds_of(&sys, i);
    if bounds.uppers.is_empty() || bounds.lowers.is_empty() {
        return None;
    }
    let guards = sys
        .constraints()
        .iter()
        .filter(|c| c.expr.coeff(i) == 0)
        .cloned()
        .collect();
    Some(ScannedBounds {
        vt,
        bounds,
        guards,
        p,
        atom_of,
    })
}

impl ScannedBounds {
    /// The variable table (diagnostics / display).
    pub fn var_table(&self) -> &VarTable {
        &self.vt
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::loop_partition;
    use ir::build::*;

    fn block_prog(nv: i64) -> (Program, Bindings, NodeId) {
        let mut pb = ProgramBuilder::new("cg");
        let n = pb.sym("n");
        let a = pb.array("A", &[sym(n) + 2], dist_block());
        let i = pb.begin_par("i", con(1), sym(n));
        pb.assign(elem(a, [idx(i) + 1]), ival(idx(i)).sin());
        pb.end();
        let prog = pb.finish();
        let bind = Bindings::new(4).set(n, nv);
        let node = prog.parallel_loops()[0];
        (prog, bind, node)
    }

    #[test]
    fn scanned_ranges_match_owner_evaluation() {
        for nv in [5i64, 16, 29, 64] {
            let (prog, bind, node) = block_prog(nv);
            let part = loop_partition(&prog, &bind, node);
            let scanned = scan_owned_range(&prog, &bind, node, &part).expect("block scans");
            for pid in 0..4i64 {
                // Oracle: evaluate the owner function per iteration.
                let mut owned = Vec::new();
                for i in 1..=nv {
                    let owner = part.owner_of(&bind, i, &|_| Some(i));
                    if owner == Some(pid) {
                        owned.push(i);
                    }
                }
                let range = scanned.range(&bind, pid, &|_| None);
                match (owned.is_empty(), range) {
                    (true, None) => {}
                    (true, Some((lo, hi))) => {
                        assert!(lo > hi, "expected empty range, got {lo}..={hi}")
                    }
                    (false, Some((lo, hi))) => {
                        assert_eq!(
                            (lo, hi),
                            (owned[0], *owned.last().unwrap()),
                            "n={nv} pid={pid}"
                        );
                    }
                    (false, None) => panic!("scan lost iterations for pid {pid}"),
                }
            }
        }
    }

    #[test]
    fn cyclic_partitions_are_rejected() {
        let mut pb = ProgramBuilder::new("cy");
        let n = pb.sym("n");
        let a = pb.array("A", &[sym(n)], dist_cyclic());
        let i = pb.begin_par("i", con(0), sym(n) - 1);
        pb.assign(elem(a, [idx(i)]), ex(1.0));
        pb.end();
        let prog = pb.finish();
        let bind = Bindings::new(4).set(n, 16);
        let node = prog.parallel_loops()[0];
        let part = loop_partition(&prog, &bind, node);
        assert!(scan_owned_range(&prog, &bind, node, &part).is_none());
    }

    #[test]
    fn outer_loop_parameters_flow_through() {
        // DO k { DOALL j writing X(k, j) dist dim0 }: owner input is k,
        // so processor owner(k) gets the whole j range and others none.
        let mut pb = ProgramBuilder::new("outer");
        let n = pb.sym("n");
        let x = pb.array("X", &[sym(n), sym(n)], dist_block());
        let k = pb.begin_seq("k", con(0), sym(n) - 1);
        let j = pb.begin_par("j", con(0), sym(n) - 1);
        pb.assign(elem(x, [idx(k), idx(j)]), ival(idx(k) + idx(j)).sin());
        pb.end();
        pb.end();
        let prog = pb.finish();
        let bind = Bindings::new(4).set(n, 16); // block = 4
        let jnode = prog.parallel_loops()[0];
        let part = loop_partition(&prog, &bind, jnode);
        let scanned = scan_owned_range(&prog, &bind, jnode, &part).unwrap();
        let kid = prog.expect_loop(prog.body[0]).id;
        // k = 5 → owner 1 owns all 16 iterations; others own none.
        let outer = |l: ir::LoopId| if l == kid { Some(5) } else { None };
        assert_eq!(scanned.range(&bind, 1, &outer), Some((0, 15)));
        for pid in [0i64, 2, 3] {
            let r = scanned.range(&bind, pid, &outer);
            assert!(
                r.is_none() || r.unwrap().0 > r.unwrap().1,
                "pid {pid}: {r:?}"
            );
        }
    }
}
