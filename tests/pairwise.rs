//! End-to-end tests for distance-vector pairwise synchronization.
//!
//! The unit tests in `analysis::comm` cover the lattice joins and the
//! FME distance spectrum; these tests cover the shipped promise:
//!
//! * the pipelined kernel set really loses its per-step barriers to
//!   pairwise counters (and reverts to barriers when the feature is
//!   ablated — the pre-distance-vector behavior);
//! * pairwise plans are bitwise equal to the barrier-only plans and
//!   the sequential oracle on *random* loop-carried multi-hop
//!   programs, and the vector-clock validator certifies them;
//! * deleting any pairwise wait site is flagged as a race (the wait
//!   sets are necessary, not just sufficient);
//! * a persistently dropped pairwise cell post is absorbed by the
//!   demote → quarantine → isolate recovery ladder with bitwise-exact
//!   recovered memory.

use barrier_elim::analysis::check_parallel_loops;
use barrier_elim::interp::{run_sequential, run_virtual, Mem, ScheduleOrder};
use barrier_elim::ir::build::*;
use barrier_elim::obs::render_recovery;
use barrier_elim::oracle::{self, droppable_posts, recovery_check};
use barrier_elim::runtime::{RetryPolicy, Team};
use barrier_elim::spmd_opt::{fork_join, optimize, optimize_with, OptimizeOptions};
use barrier_elim::suite::{self, Built, Scale};
use proptest::prelude::*;
use std::sync::Arc;
use std::time::Duration;

/// The kernels whose optimized schedules place pairwise counters at
/// four processors and Test scale.
const PAIR_KERNELS: &[&str] = &[
    "wavepipe2d",
    "trisolve_pipe",
    "multihop",
    "pivot_shift",
    "shift_bcast",
];

fn built(name: &str) -> Built {
    (suite::by_name(name).unwrap().build)(Scale::Test)
}

/// The regression the distance-vector classification fixes: with
/// pairwise sync ablated (`use_pairwise: false`, the pre-PR lattice)
/// every one of these kernels keeps extra barriers that the shipped
/// optimizer replaces with pairwise counters.
#[test]
fn ablating_pairwise_restores_the_spurious_barriers() {
    for name in PAIR_KERNELS {
        let b = built(name);
        let bind = b.bindings(4);
        let with = optimize(&b.prog, &bind).static_stats();
        let without = optimize_with(
            &b.prog,
            &bind,
            OptimizeOptions {
                use_pairwise: false,
                ..OptimizeOptions::default()
            },
        )
        .static_stats();
        assert!(with.pair_syncs >= 1, "{name}: {with:?}");
        assert_eq!(without.pair_syncs, 0, "{name}: {without:?}");
        assert!(
            without.barriers > with.barriers,
            "{name}: ablated plan has {} barriers, shipped {} — the \
             pairwise sites never replaced a barrier",
            without.barriers,
            with.barriers
        );
    }
}

/// Deleting any placed pairwise wait is caught by the vector-clock
/// validator: every distance in every wait set is load-bearing.
#[test]
fn deleting_any_pairwise_site_is_flagged_as_a_race() {
    let mut checked = 0;
    for name in PAIR_KERNELS {
        let b = built(name);
        let bind = b.bindings(4);
        let plan = optimize(&b.prog, &bind);
        assert!(
            oracle::validate(&b.prog, &bind, &plan).is_race_free(),
            "{name}: unmutated schedule must validate"
        );
        for site in oracle::sites(&plan) {
            if !site.desc.contains("pairwise") {
                continue;
            }
            let mutant = oracle::delete(&plan, site.index);
            let report = oracle::validate(&b.prog, &bind, &mutant);
            assert!(
                !report.is_race_free(),
                "{name}: deleting pairwise slot {} went unflagged",
                site.desc
            );
            checked += 1;
        }
    }
    assert!(checked >= 5, "only {checked} pairwise sites across the set");
}

/// A persistently dropped pairwise cell post on every pipelined kernel
/// is absorbed by the recovery ladder (demote-to-barrier first), with
/// recovered memory bitwise equal to the sequential oracle.
#[test]
fn dropped_pairwise_posts_are_absorbed_by_the_recovery_ladder() {
    let team = Team::new(4);
    let policy = RetryPolicy {
        backoff_base: Duration::from_millis(1),
        backoff_cap: Duration::from_millis(4),
        ..RetryPolicy::default()
    };
    for name in PAIR_KERNELS {
        let b = built(name);
        let prog = Arc::new(b.prog.clone());
        let bind = Arc::new(b.bindings(4));
        let plan = optimize(&prog, &bind);
        let cands = droppable_posts(&prog, &bind, &plan);
        assert!(
            cands.iter().any(|c| c.kind == "pairwise"),
            "{name}: no pairwise drop candidates in {cands:?}"
        );
        let r = recovery_check(
            &prog,
            &bind,
            &plan,
            &team,
            0xBE9,
            Duration::from_millis(150),
            0.0, // bitwise: recovery must not perturb a single ulp
            &policy,
        );
        assert!(r.benign_ok, "{name}: benign run diverged by {:e}", r.benign_diff);
        let mut pair_teeth = 0;
        for t in &r.teeth {
            assert!(
                t.converged && t.recovered,
                "{name}: {} drop at s{} not absorbed:\n{}",
                t.kind,
                t.spec.site,
                render_recovery(&t.report)
            );
            assert_eq!(
                t.diff, 0.0,
                "{name}: recovered memory diverges by {:e}",
                t.diff
            );
            if t.kind == "pairwise" {
                pair_teeth += 1;
                // The stall may first be detected at the dropped
                // pairwise site or at the downstream barrier the
                // stalled consumer never reaches; either way the
                // ladder must demote on the way to convergence.
                let text = render_recovery(&t.report);
                assert!(
                    text.contains("demote s"),
                    "{name}: pairwise drop at s{} recovered without any \
                     demotion:\n{text}",
                    t.spec.site
                );
            }
        }
        assert!(pair_teeth >= 1, "{name}: no pairwise tooth bit");
    }
}

// ---------------------------------------------------------------------
// Random loop-carried multi-hop programs.
// ---------------------------------------------------------------------

#[derive(Debug, Clone)]
struct HopLoop {
    /// Which array (mod #arrays) the loop writes.
    writes: u8,
    /// (array, hop in ownership-block multiples, small offset) reads.
    reads: Vec<(u8, i8, i8)>,
}

#[derive(Debug, Clone)]
struct HopSpec {
    narrays: u8,
    loops: Vec<HopLoop>,
    timesteps: u8,
}

fn hop_strategy() -> impl Strategy<Value = HopSpec> {
    let hop_loop = (
        0u8..4,
        proptest::collection::vec((0u8..4, -2i8..=2, -1i8..=1), 1..3),
    )
        .prop_map(|(writes, reads)| HopLoop { writes, reads });
    (
        2u8..4,
        proptest::collection::vec(hop_loop, 1..4),
        1u8..4,
    )
        .prop_map(|(narrays, loops, timesteps)| HopSpec {
            narrays,
            loops,
            timesteps,
        })
}

/// Hops are scaled by this stride. The padded extent is 32 + 2·25 =
/// 82, whose ownership block at four processors is 21: a ±1 hop stays
/// within a block (neighbor range) while a ±2 hop (24 cells) crosses
/// into distance-2 territory, so generated programs mix neighbor and
/// multi-hop pairwise patterns (plus a ±1 wobble from the small
/// offset).
const HOP: i64 = 12;

/// Materialize a spec: block-distributed arrays, a time loop around
/// phases reading other arrays at block-multiple hops. Reads never
/// target the written array inside a DOALL, so every parallel marking
/// is valid; all cross-phase and time-carried conflicts remain.
fn build_hops(spec: &HopSpec) -> Option<Built> {
    let na = spec.narrays as usize;
    let pad = 2 * HOP + 1; // max |hop·2 + 1| on either side
    let mut pb = ProgramBuilder::new("hops");
    let n = pb.sym("n");
    let arrays: Vec<_> = (0..na)
        .map(|k| pb.array(format!("A{k}"), &[sym(n) + 2 * pad], dist_block()))
        .collect();

    let i0 = pb.begin_par("i0", con(0), sym(n) + 2 * pad - 1);
    for (k, &a) in arrays.iter().enumerate() {
        pb.assign(elem(a, [idx(i0)]), ival(idx(i0) * (2 * k as i64 + 3)).sin());
    }
    pb.end();

    let _t = pb.begin_seq("t", con(0), con(spec.timesteps as i64 - 1));
    for (k, l) in spec.loops.iter().enumerate() {
        let w = arrays[l.writes as usize % na];
        let i = pb.begin_par(&format!("i{}", k + 1), con(pad), sym(n) + pad - 1);
        let mut rhs = ex(0.1);
        let mut has_read = false;
        for &(r, hop, off) in &l.reads {
            let ra = arrays[r as usize % na];
            if ra == w {
                continue; // would carry a dependence inside the DOALL
            }
            has_read = true;
            rhs = rhs + arr(ra, [idx(i) + (hop as i64 * HOP + off as i64)]) * ex(0.4);
        }
        if !has_read {
            rhs = rhs + ival(idx(i)).cos();
        }
        pb.assign(elem(w, [idx(i)]), rhs);
        pb.end();
    }
    pb.end();

    Some(Built {
        prog: pb.finish(),
        values: vec![(n, 32)],
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Bitwise differential: on random loop-carried multi-hop
    /// programs, the pairwise-optimized plan, the fork-join
    /// barrier-only plan, and the sequential oracle agree to the last
    /// bit under adversarial virtual interleavings — and the
    /// vector-clock validator certifies every optimized wavefront
    /// schedule.
    #[test]
    fn pairwise_plans_are_bitwise_equal_to_barrier_only(spec in hop_strategy()) {
        if let Some(b) = build_hops(&spec) {
            for nprocs in [2i64, 4, 7] {
                let bind = b.bindings(nprocs);
                prop_assert!(
                    check_parallel_loops(&b.prog, &bind).is_empty(),
                    "generator produced an invalid DOALL"
                );
                let oracle_mem = Mem::new(&b.prog, &bind);
                run_sequential(&b.prog, &bind, &oracle_mem);
                let opt = optimize(&b.prog, &bind);
                let report = oracle::validate(&b.prog, &bind, &opt);
                prop_assert!(
                    report.is_race_free(),
                    "optimized schedule races at P={nprocs}: {} pairs",
                    report.num_racing_pairs
                );
                for (label, plan) in
                    [("fork-join", fork_join(&b.prog, &bind)), ("optimized", opt)]
                {
                    for order in [
                        ScheduleOrder::RoundRobin,
                        ScheduleOrder::Reverse,
                        ScheduleOrder::Random(0xBE9),
                    ] {
                        let mem = Mem::new(&b.prog, &bind);
                        run_virtual(&b.prog, &bind, &plan, &mem, order);
                        let diff = mem.max_abs_diff(&oracle_mem);
                        prop_assert!(
                            diff == 0.0,
                            "{label} diverged by {diff:e} under {order:?} (P={nprocs})"
                        );
                    }
                }
            }
        }
    }
}

/// The generator really produces pairwise plans (the property above
/// cannot assert it per-case: some draws are neighbor-only).
#[test]
fn hop_generator_reaches_pairwise_classifications() {
    let spec = HopSpec {
        narrays: 2,
        loops: vec![HopLoop {
            writes: 0,
            reads: vec![(1, -2, 0)],
        }],
        timesteps: 2,
    };
    let b = build_hops(&spec).unwrap();
    let bind = b.bindings(4);
    let st = optimize(&b.prog, &bind).static_stats();
    assert!(st.pair_syncs >= 1, "{st:?}");
}
