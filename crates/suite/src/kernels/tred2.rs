//! Householder-style reduction fragment (stands in for EISPACK `tred2`,
//! the program Bodin et al. also study).
//!
//! Per step `k`: gather row `k` into a replicated work vector, reduce a
//! dot product into a shared scalar, then rank-1-update the trailing
//! rows. The scalar reduction and the row gather keep barriers, while
//! the update phase chain still merges — the partial-win profile the
//! paper reports for dense reductions.

use crate::{Built, Scale};
use ir::build::*;
use ir::RedOp;

/// Build at the given scale.
pub fn build(scale: Scale) -> Built {
    let nv = match scale {
        Scale::Test => 12,
        Scale::Small => 48,
        Scale::Full => 192,
    };
    let mut pb = ProgramBuilder::new("tred2");
    let n = pb.sym("n");
    let a = pb.array("A", &[sym(n), sym(n)], dist_block());
    let d = pb.array("D", &[sym(n)], dist_repl());
    let sigma = pb.scalar("sigma", 0.0);

    let i0 = pb.begin_par("i0", con(0), sym(n) - 1);
    let j0 = pb.begin_seq("j0", con(0), sym(n) - 1);
    pb.assign(
        elem(a, [idx(i0), idx(j0)]),
        ival(idx(i0) * 5 + idx(j0) * 3).sin() + ival(idx(i0) + idx(j0)).cos(),
    );
    pb.end();
    pb.end();

    let k = pb.begin_seq("k", con(0), sym(n) - 2);

    // Gather row k into the work vector (read crosses processors:
    // row k lives on owner(k), the gather loop is index-partitioned).
    let j1 = pb.begin_par("j1", con(0), sym(n) - 1);
    pb.assign(elem(d, [idx(j1)]), arr(a, [idx(k), idx(j1)]));
    pb.end();

    // Dot product of the work vector (reduction into a shared scalar).
    let j2 = pb.begin_par("j2", con(0), sym(n) - 1);
    pb.reduce(
        svar(sigma),
        RedOp::Add,
        arr(d, [idx(j2)]) * arr(d, [idx(j2)]),
    );
    pb.end();

    // Rank-1-style update of the trailing rows.
    let i3 = pb.begin_par("i3", con(0), sym(n) - 1);
    let j3 = pb.begin_seq("j3", con(0), sym(n) - 1);
    pb.begin_guard(vec![ge0(idx(i3) - idx(k) - 1)]);
    pb.assign(
        elem(a, [idx(i3), idx(j3)]),
        arr(a, [idx(i3), idx(j3)])
            - arr(d, [idx(j3)]) * arr(d, [idx(i3)]) * (ex(0.5) / (ex(1.0) + sca(sigma).abs())),
    );
    pb.end();
    pb.end();
    pb.end();

    pb.end(); // k

    Built {
        prog: pb.finish(),
        values: vec![(n, nv)],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reduction_bound_but_still_improves_on_fork_join() {
        let built = build(Scale::Test);
        let bind = built.bindings(4);
        let opt = spmd_opt::optimize(&built.prog, &bind).static_stats();
        let fj = spmd_opt::fork_join(&built.prog, &bind).static_stats();
        assert!(opt.barriers >= 1);
        assert!(opt.barriers <= fj.barriers, "{opt:?} vs {fj:?}");
        assert_eq!(opt.regions, 1);
        assert!(fj.regions > 1);
    }
}
