//! Canonical numbering of a schedule's synchronization slots.
//!
//! Every schedule has four kinds of sync slot: a phase's `after`, a
//! sequential loop's `bottom` and `after`, and a region's `end`. This
//! module assigns each slot a stable **site id** by a deterministic
//! pre-order walk (items in order; a `Seq`'s body slots precede its
//! `bottom` and `after`; a region's items precede its `end`). The same
//! numbering is reproduced arithmetically by the event unroller in
//! `interp`, so per-site runtime telemetry, the optimizer's decision
//! log, and the mutation tester all talk about the same sites.
//!
//! Slots holding [`SyncOp::None`] (eliminated barriers) are numbered
//! too: the explain pass reports *why* they are empty.

use crate::plan::{RItem, SpmdProgram, SyncOp, TopItem};
use ir::{LoopKind, Node, NodeId, Program};

/// Which structural slot a sync site occupies.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SlotKind {
    /// A phase's `after` slot (loop-independent boundary).
    PhaseAfter,
    /// The bottom of a sequential loop inside a region (loop-carried
    /// boundary).
    LoopBottom,
    /// After a sequential loop inside a region.
    LoopAfter,
    /// A region's end (the fork-join join point).
    RegionEnd,
}

impl SlotKind {
    /// Stable lower-case name (used in JSON output).
    pub fn as_str(self) -> &'static str {
        match self {
            SlotKind::PhaseAfter => "phase-after",
            SlotKind::LoopBottom => "loop-bottom",
            SlotKind::LoopAfter => "loop-after",
            SlotKind::RegionEnd => "region-end",
        }
    }
}

/// One synchronization slot of a schedule, with its canonical id.
#[derive(Clone, Debug)]
pub struct SyncSite {
    /// Position in the canonical slot walk.
    pub id: usize,
    /// Structural slot kind.
    pub kind: SlotKind,
    /// Human-readable location, e.g. `after DOALL i [n5]`.
    pub label: String,
    /// The synchronization the plan places there.
    pub op: SyncOp,
}

/// Short human label for a schedule node (`DOALL i`, `DO t`,
/// `statement`, `guarded block`).
pub fn node_label(prog: &Program, node: NodeId) -> String {
    match prog.node(node) {
        Node::Loop(l) => format!(
            "{} {}",
            if l.kind == LoopKind::Par {
                "DOALL"
            } else {
                "DO"
            },
            l.name
        ),
        Node::Assign(_) => "statement".to_string(),
        Node::Guard(_) => "guarded block".to_string(),
    }
}

/// Label of a phase-after slot.
pub(crate) fn phase_after_label(prog: &Program, node: NodeId) -> String {
    format!("after {} [n{}]", node_label(prog, node), node.0)
}

/// Label of a loop-bottom slot.
pub(crate) fn loop_bottom_label(prog: &Program, node: NodeId) -> String {
    format!("bottom of {} [n{}]", node_label(prog, node), node.0)
}

/// Label of a loop-after slot.
pub(crate) fn loop_after_label(prog: &Program, node: NodeId) -> String {
    format!("after {} [n{}]", node_label(prog, node), node.0)
}

/// Label of a region-end slot.
pub(crate) fn region_end_label(region: usize) -> String {
    format!("end of region r{region}")
}

/// Number of sync slots under a list of region items.
pub fn slot_count_items(items: &[RItem]) -> usize {
    items
        .iter()
        .map(|it| match it {
            RItem::Phase(_) => 1,
            RItem::Seq { body, .. } => slot_count_items(body) + 2,
        })
        .sum()
}

/// Number of sync slots under a list of top-level items (a master
/// loop's body is counted once — its slots repeat dynamically but share
/// their static ids).
pub fn slot_count_top(items: &[TopItem]) -> usize {
    items
        .iter()
        .map(|it| match it {
            TopItem::SerialStmt(_) => 0,
            TopItem::MasterLoop { body, .. } => slot_count_top(body),
            TopItem::Region(r) => slot_count_items(&r.items) + 1,
        })
        .sum()
}

fn walk_items(prog: &Program, items: &[RItem], next: &mut usize, out: &mut Vec<SyncSite>) {
    for it in items {
        match it {
            RItem::Phase(p) => {
                out.push(SyncSite {
                    id: *next,
                    kind: SlotKind::PhaseAfter,
                    label: phase_after_label(prog, p.node),
                    op: p.after.clone(),
                });
                *next += 1;
            }
            RItem::Seq {
                node,
                body,
                bottom,
                after,
            } => {
                walk_items(prog, body, next, out);
                out.push(SyncSite {
                    id: *next,
                    kind: SlotKind::LoopBottom,
                    label: loop_bottom_label(prog, *node),
                    op: bottom.clone(),
                });
                *next += 1;
                out.push(SyncSite {
                    id: *next,
                    kind: SlotKind::LoopAfter,
                    label: loop_after_label(prog, *node),
                    op: after.clone(),
                });
                *next += 1;
            }
        }
    }
}

fn walk_top(
    prog: &Program,
    items: &[TopItem],
    next: &mut usize,
    region: &mut usize,
    out: &mut Vec<SyncSite>,
) {
    for it in items {
        match it {
            TopItem::SerialStmt(_) => {}
            TopItem::MasterLoop { body, .. } => walk_top(prog, body, next, region, out),
            TopItem::Region(r) => {
                walk_items(prog, &r.items, next, out);
                out.push(SyncSite {
                    id: *next,
                    kind: SlotKind::RegionEnd,
                    label: region_end_label(*region),
                    op: r.end.clone(),
                });
                *next += 1;
                *region += 1;
            }
        }
    }
}

/// Enumerate every sync slot of a schedule in canonical walk order.
/// Ids are contiguous from zero; the walk order matches the slot
/// enumeration of the mutation tester and the arithmetic numbering the
/// event unroller computes.
pub fn sync_sites(prog: &Program, plan: &SpmdProgram) -> Vec<SyncSite> {
    let mut out = Vec::new();
    let mut next = 0usize;
    let mut region = 0usize;
    walk_top(prog, &plan.items, &mut next, &mut region, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::{fork_join, optimize};
    use analysis::Bindings;
    use ir::build::*;

    fn sweep() -> (Program, Bindings) {
        let mut pb = ProgramBuilder::new("sweep");
        let n = pb.sym("n");
        let a = pb.array("A", &[sym(n)], dist_block());
        let b = pb.array("B", &[sym(n)], dist_block());
        let _t = pb.begin_seq("t", con(0), con(4));
        let i = pb.begin_par("i", con(1), sym(n) - 2);
        pb.assign(
            elem(b, [idx(i)]),
            ex(0.5) * (arr(a, [idx(i) - 1]) + arr(a, [idx(i) + 1])),
        );
        pb.end();
        let j = pb.begin_par("j", con(1), sym(n) - 2);
        pb.assign(elem(a, [idx(j)]), arr(b, [idx(j)]));
        pb.end();
        pb.end();
        let prog = pb.finish();
        let bind = Bindings::new(4).set(n, 32);
        (prog, bind)
    }

    #[test]
    fn ids_are_contiguous_and_match_slot_counts() {
        let (prog, bind) = sweep();
        for plan in [optimize(&prog, &bind), fork_join(&prog, &bind)] {
            let sites = sync_sites(&prog, &plan);
            assert_eq!(sites.len(), slot_count_top(&plan.items));
            for (k, s) in sites.iter().enumerate() {
                assert_eq!(s.id, k);
                assert!(!s.label.is_empty());
            }
        }
    }

    #[test]
    fn optimized_sweep_sites_name_the_loops() {
        let (prog, bind) = sweep();
        let plan = optimize(&prog, &bind);
        let sites = sync_sites(&prog, &plan);
        let labels: Vec<&str> = sites.iter().map(|s| s.label.as_str()).collect();
        assert!(
            labels.iter().any(|l| l.starts_with("after DOALL i")),
            "{labels:?}"
        );
        assert!(
            labels.iter().any(|l| l.starts_with("bottom of DO t")),
            "{labels:?}"
        );
        assert!(
            labels.iter().any(|l| l.starts_with("end of region r0")),
            "{labels:?}"
        );
    }

    #[test]
    fn demote_site_addresses_the_same_slots_as_the_walk() {
        // For every canonical id, `demote_site` displaces exactly the op
        // the site walk reports there — the two traversals agree.
        let (prog, bind) = sweep();
        for plan in [optimize(&prog, &bind), fork_join(&prog, &bind)] {
            let sites = sync_sites(&prog, &plan);
            for s in &sites {
                let mut p = plan.clone();
                let old = crate::plan::demote_site(&mut p, s.id);
                assert_eq!(old.as_ref(), Some(&s.op), "site {}", s.id);
                let new_sites = sync_sites(&prog, &p);
                assert!(new_sites[s.id].op.is_barrier());
                // Every other slot is untouched.
                for (a, b) in sites.iter().zip(&new_sites) {
                    if a.id != s.id {
                        assert_eq!(a.op, b.op);
                    }
                }
            }
            assert_eq!(
                crate::plan::demote_site(&mut plan.clone(), sites.len()),
                None
            );
        }
    }

    #[test]
    fn site_walk_matches_static_stats_sync_points() {
        // Every non-None slot that static_stats counts appears among the
        // sites with the same op; sites also number the last-slot Nones.
        let (prog, bind) = sweep();
        let plan = optimize(&prog, &bind);
        let st = plan.static_stats();
        let sites = sync_sites(&prog, &plan);
        let barriers = sites.iter().filter(|s| s.op.is_barrier()).count();
        assert_eq!(barriers, st.barriers);
    }
}
