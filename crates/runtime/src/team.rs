//! A persistent worker team for SPMD execution.
//!
//! Threads are created once (like the paper's measured programs, whose
//! timings exclude thread startup) and then repeatedly execute SPMD
//! regions: `run` hands every worker the same closure, which receives its
//! processor id.
//!
//! Worker bodies run under `catch_unwind`: a panicking worker counts as
//! *completed* toward the region's join, so the master never hangs — it
//! gets the first panic back as a [`RegionError`] (from [`Team::try_run`])
//! or re-raised (from [`Team::run`]). The team stays usable for
//! subsequent regions; whether the *shared data* a panicked region left
//! behind is usable is the caller's judgment.
//!
//! Dispatch is intentionally *outside* the lock-free fast-path split
//! that governs the sync primitives (see `crate::spin`): regions
//! amortize one condvar round trip over their whole body, workers
//! should sleep (not burn a core) between regions, and the blocking
//! join is what lets a panicked worker wake the master unconditionally.
//! The `SpinPolicy` escalation ladder applies to the per-episode waits
//! *inside* a region — barriers, counters, neighbor flags — where the
//! round trip is hundreds of nanoseconds, not to the per-region
//! dispatch, where it would be pure waste.

use parking_lot::{Condvar, Mutex};
use std::any::Any;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::Arc;

type Job = Arc<dyn Fn(usize) + Send + Sync>;

/// A worker panicked inside an SPMD region.
pub struct RegionError {
    /// Processor id of the first worker that panicked.
    pub pid: usize,
    /// The panic payload, exactly as `catch_unwind` captured it.
    pub payload: Box<dyn Any + Send>,
}

impl RegionError {
    /// The panic message, when the payload is a string (the common
    /// case for `panic!`/`assert!`).
    pub fn message(&self) -> String {
        if let Some(s) = self.payload.downcast_ref::<&str>() {
            (*s).to_string()
        } else {
            self.payload
                .downcast_ref::<String>()
                .cloned()
                .unwrap_or_else(|| "non-string panic payload".to_string())
        }
    }

    /// Re-raise the worker's panic on the calling thread.
    pub fn resume(self) -> ! {
        resume_unwind(self.payload)
    }
}

impl std::fmt::Debug for RegionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "worker P{} panicked: {}", self.pid, self.message())
    }
}

impl std::fmt::Display for RegionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "worker P{} panicked: {}", self.pid, self.message())
    }
}

struct State {
    gen: u64,
    job: Option<Job>,
    done: usize,
    shutdown: bool,
    /// First panic of the current region (pid, payload).
    panic: Option<(usize, Box<dyn Any + Send>)>,
}

struct Shared {
    m: Mutex<State>,
    work_cv: Condvar,
    done_cv: Condvar,
    n: usize,
}

/// A fixed-size team of persistent worker threads.
pub struct Team {
    shared: Arc<Shared>,
    handles: Vec<std::thread::JoinHandle<()>>,
}

impl Team {
    /// Spawn a team of `n` workers (ids `0..n`).
    pub fn new(n: usize) -> Self {
        assert!(n >= 1);
        let shared = Arc::new(Shared {
            m: Mutex::new(State {
                gen: 0,
                job: None,
                done: 0,
                shutdown: false,
                panic: None,
            }),
            work_cv: Condvar::new(),
            done_cv: Condvar::new(),
            n,
        });
        let handles = (0..n)
            .map(|pid| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("spmd-worker-{pid}"))
                    .spawn(move || worker_loop(pid, shared))
                    .expect("failed to spawn worker")
            })
            .collect();
        Team { shared, handles }
    }

    /// Number of processors in the team.
    pub fn nprocs(&self) -> usize {
        self.shared.n
    }

    /// Execute `f(pid)` on every worker and block until all finish.
    ///
    /// A worker panic is re-raised here (never a hang: panicked workers
    /// still count toward the join). Use [`Team::try_run`] to receive
    /// the panic as a [`RegionError`] instead.
    pub fn run<F>(&self, f: F)
    where
        F: Fn(usize) + Send + Sync + 'static,
    {
        self.run_arc(Arc::new(f));
    }

    /// As [`Team::run`] with a pre-wrapped job (avoids re-allocating when
    /// dispatching the same region repeatedly).
    pub fn run_arc(&self, job: Job) {
        if let Err(e) = self.try_run_arc(job) {
            e.resume();
        }
    }

    /// Execute `f(pid)` on every worker; block until all finish or
    /// panic. Returns the first worker panic as a [`RegionError`].
    pub fn try_run<F>(&self, f: F) -> Result<(), RegionError>
    where
        F: Fn(usize) + Send + Sync + 'static,
    {
        self.try_run_arc(Arc::new(f))
    }

    /// As [`Team::try_run`] with a pre-wrapped job.
    pub fn try_run_arc(&self, job: Job) -> Result<(), RegionError> {
        let mut st = self.shared.m.lock();
        st.job = Some(job);
        st.done = 0;
        st.panic = None;
        st.gen += 1;
        let gen = st.gen;
        self.shared.work_cv.notify_all();
        while !(st.gen == gen && st.done == self.shared.n) {
            self.shared.done_cv.wait(&mut st);
        }
        st.job = None;
        match st.panic.take() {
            Some((pid, payload)) => Err(RegionError { pid, payload }),
            None => Ok(()),
        }
    }
}

fn worker_loop(pid: usize, shared: Arc<Shared>) {
    let mut seen_gen = 0u64;
    loop {
        let job = {
            let mut st = shared.m.lock();
            while !st.shutdown && (st.gen == seen_gen || st.job.is_none()) {
                shared.work_cv.wait(&mut st);
            }
            if st.shutdown {
                return;
            }
            seen_gen = st.gen;
            Arc::clone(st.job.as_ref().unwrap())
        };
        // A panicking region body must still count toward the join —
        // otherwise `done` never reaches `n` and the master hangs
        // forever. Capture the payload; the master re-raises or
        // returns it.
        let outcome = catch_unwind(AssertUnwindSafe(|| job(pid)));
        let mut st = shared.m.lock();
        if let Err(payload) = outcome {
            if st.panic.is_none() {
                st.panic = Some((pid, payload));
            }
        }
        st.done += 1;
        if st.done == shared.n {
            shared.done_cv.notify_all();
        }
    }
}

impl Drop for Team {
    fn drop(&mut self) {
        {
            let mut st = self.shared.m.lock();
            st.shutdown = true;
            self.shared.work_cv.notify_all();
        }
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
    use std::time::{Duration, Instant};

    #[test]
    fn all_workers_run_each_region() {
        let team = Team::new(4);
        let hits = Arc::new(AtomicUsize::new(0));
        for _ in 0..50 {
            let hits = Arc::clone(&hits);
            team.run(move |_pid| {
                hits.fetch_add(1, Ordering::SeqCst);
            });
        }
        assert_eq!(hits.load(Ordering::SeqCst), 200);
    }

    #[test]
    fn workers_receive_distinct_pids() {
        let team = Team::new(8);
        let mask = Arc::new(AtomicU64::new(0));
        {
            let mask = Arc::clone(&mask);
            team.run(move |pid| {
                mask.fetch_or(1 << pid, Ordering::SeqCst);
            });
        }
        assert_eq!(mask.load(Ordering::SeqCst), 0xFF);
    }

    #[test]
    fn run_blocks_until_completion() {
        let team = Team::new(3);
        let v = Arc::new(AtomicUsize::new(0));
        {
            let v = Arc::clone(&v);
            team.run(move |_| {
                std::thread::sleep(std::time::Duration::from_millis(5));
                v.fetch_add(1, Ordering::SeqCst);
            });
        }
        // run() returned, so every worker finished.
        assert_eq!(v.load(Ordering::SeqCst), 3);
    }

    #[test]
    fn single_worker_team() {
        let team = Team::new(1);
        let v = Arc::new(AtomicUsize::new(0));
        let vv = Arc::clone(&v);
        team.run(move |pid| {
            assert_eq!(pid, 0);
            vv.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(v.load(Ordering::SeqCst), 1);
    }

    /// Regression: a panicking worker used to leave `done < n` forever,
    /// hanging the master in `run`. The join must now return promptly
    /// with the panic's pid and payload.
    #[test]
    fn panicking_worker_never_hangs_the_master() {
        let team = Team::new(4);
        let t0 = Instant::now();
        let err = team
            .try_run(|pid| {
                if pid == 2 {
                    panic!("injected worker fault");
                }
            })
            .unwrap_err();
        assert!(
            t0.elapsed() < Duration::from_secs(10),
            "join took {:?}",
            t0.elapsed()
        );
        assert_eq!(err.pid, 2);
        assert_eq!(err.message(), "injected worker fault");
    }

    #[test]
    fn team_survives_a_panicked_region() {
        let team = Team::new(3);
        assert!(team.try_run(|_| panic!("first region dies")).is_err());
        // The team must still run later regions normally.
        let v = Arc::new(AtomicUsize::new(0));
        let vv = Arc::clone(&v);
        team.try_run(move |_| {
            vv.fetch_add(1, Ordering::SeqCst);
        })
        .unwrap();
        assert_eq!(v.load(Ordering::SeqCst), 3);
    }

    #[test]
    fn run_reraises_worker_panics() {
        let team = Team::new(2);
        let r = catch_unwind(AssertUnwindSafe(|| {
            team.run(|pid| {
                if pid == 1 {
                    panic!("bubbled");
                }
            })
        }));
        let payload = r.unwrap_err();
        assert_eq!(payload.downcast_ref::<&str>(), Some(&"bubbled"));
    }

    #[test]
    fn all_workers_panicking_reports_one_error() {
        let team = Team::new(4);
        let err = team.try_run(|pid| panic!("P{pid} down")).unwrap_err();
        assert!(err.pid < 4);
        assert!(err.message().starts_with('P'));
    }
}
