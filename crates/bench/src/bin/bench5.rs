//! Analysis-performance regression harness: `BENCH_5.json`.
//!
//! For every suite kernel, runs the optimizer twice — once in the
//! sequential uncached reference configuration and once with the
//! memoized, parallel analysis — and records per-kernel wall-clock,
//! cache hit rates, and the peak live constraint count of the guarded
//! Fourier-Motzkin scans.
//!
//! The harness is also a correctness gate: the plan rendering and the
//! full decision log of the two configurations must be identical for
//! every kernel. Any divergence is printed and the process exits 1 —
//! caching and parallelism are required to be pure speed knobs.
//!
//! Usage: `bench5 [--quick] [--out PATH] [--baseline PATH] [--nprocs P]`
//!   --quick    Test-scale kernels and fewer repetitions (CI smoke mode)
//!   --out      output path (default BENCH_5.json; `-` for stdout)
//!   --baseline prior BENCH_5.json to compare against; refused unless
//!              its `schema_version` matches this binary's
//!   --nprocs   processor count for the analysis bindings (default 8)

use obs::Json;
use spmd_opt::{
    optimize_explained, optimize_explained_shared, render_plan, AnalysisConfig, OptimizeOptions,
};
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Instant;
use suite::Scale;

struct KernelRow {
    name: &'static str,
    uncached_us: f64,
    cached_us: f64,
    pair_hit_rate: f64,
    fme_hit_rate: f64,
    peak_constraints: usize,
    unknown_verdicts: u64,
    matches: bool,
}

/// Best-of-`reps` wall-clock (microseconds) plus the last run's outputs.
fn run_config(
    prog: &ir::Program,
    bind: &analysis::Bindings,
    cfg: AnalysisConfig,
    reps: usize,
) -> (f64, String, String, analysis::AnalysisStats) {
    let opts = OptimizeOptions {
        analysis: cfg,
        ..Default::default()
    };
    let mut best = f64::INFINITY;
    let mut rendered = String::new();
    let mut log_str = String::new();
    let mut stats = analysis::AnalysisStats::default();
    for _ in 0..reps {
        let t0 = Instant::now();
        let (plan, log, st) = optimize_explained(prog, bind, opts);
        let dt = t0.elapsed().as_secs_f64() * 1e6;
        best = best.min(dt);
        rendered = render_plan(prog, &plan);
        log_str = log
            .iter()
            .map(|d| format!("{d:?}\n"))
            .collect::<Vec<_>>()
            .concat();
        stats = st;
    }
    (best, rendered, log_str, stats)
}

fn main() -> ExitCode {
    let mut quick = false;
    let mut out_path = "BENCH_5.json".to_string();
    let mut nprocs: i64 = 8;
    let mut baseline_path: Option<String> = None;
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--quick" => quick = true,
            "--out" => out_path = it.next().expect("--out needs a path"),
            "--baseline" => baseline_path = Some(it.next().expect("--baseline needs a path")),
            "--nprocs" => {
                nprocs = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--nprocs needs an integer")
            }
            other => {
                eprintln!("bench5: unknown argument {other}");
                eprintln!("usage: bench5 [--quick] [--out PATH] [--baseline PATH] [--nprocs P]");
                return ExitCode::from(2);
            }
        }
    }
    // Resolve (and, on schema mismatch, refuse) the baseline up front,
    // before spending minutes measuring.
    let baseline = match &baseline_path {
        Some(p) => match spmd_bench::load_baseline(p, "analysis-cache-regression") {
            Ok(doc) => Some(doc),
            Err(e) => {
                eprintln!("bench5: {e}");
                return ExitCode::from(2);
            }
        },
        None => None,
    };
    let (scale, reps) = if quick {
        (Scale::Test, 1)
    } else {
        (Scale::Small, 3)
    };

    let mut rows: Vec<KernelRow> = Vec::new();
    let mut references: Vec<(String, String)> = Vec::new();
    let mut instances: Vec<(ir::Program, analysis::Bindings)> = Vec::new();
    let mut diverged = false;
    for def in suite::all() {
        let (built, bind) = spmd_bench::instance(&def, scale, nprocs);
        let (unc_us, unc_plan, unc_log, _) = run_config(
            &built.prog,
            &bind,
            AnalysisConfig::sequential_uncached(),
            reps,
        );
        let (cad_us, cad_plan, cad_log, stats) =
            run_config(&built.prog, &bind, AnalysisConfig::default(), reps);
        let matches = unc_plan == cad_plan && unc_log == cad_log;
        if !matches {
            diverged = true;
            eprintln!(
                "bench5: DIVERGENCE on kernel {}: cached/parallel output differs from the \
                 sequential uncached reference",
                def.name
            );
            if unc_plan != cad_plan {
                eprintln!("--- reference plan ---\n{unc_plan}--- cached plan ---\n{cad_plan}");
            }
            if unc_log != cad_log {
                eprintln!("--- reference log ---\n{unc_log}--- cached log ---\n{cad_log}");
            }
        }
        rows.push(KernelRow {
            name: def.name,
            uncached_us: unc_us,
            cached_us: cad_us,
            pair_hit_rate: stats.pair_hit_rate(),
            fme_hit_rate: stats.fme.feas_hit_rate(),
            peak_constraints: stats.fme.peak_constraints,
            unknown_verdicts: stats.fme.unknown_verdicts,
            matches,
        });
        references.push((unc_plan, unc_log));
        instances.push((built.prog, bind));
    }

    // Compilation-session measurement: optimize the whole suite in one
    // pass sharing a single FME memo across kernels (fresh per rep, so
    // only genuine cross-kernel reuse is measured), against the same
    // pass with caching off. Each kernel's output is still checked
    // against the sequential uncached reference.
    let session_opts = OptimizeOptions::default();
    let unc_opts = OptimizeOptions {
        analysis: AnalysisConfig::sequential_uncached(),
        ..Default::default()
    };
    let mut session_unc_us = f64::INFINITY;
    let mut session_cad_us = f64::INFINITY;
    let mut session_stats = analysis::AnalysisStats::default();
    for _ in 0..reps {
        let t0 = Instant::now();
        for (prog, bind) in &instances {
            let _ = optimize_explained(prog, bind, unc_opts);
        }
        session_unc_us = session_unc_us.min(t0.elapsed().as_secs_f64() * 1e6);

        let fme = Arc::new(ineq::FmeCache::new());
        let t0 = Instant::now();
        let mut last = analysis::AnalysisStats::default();
        for (prog, bind) in &instances {
            let (_, _, st) = optimize_explained_shared(prog, bind, session_opts, &fme);
            last = st;
        }
        session_cad_us = session_cad_us.min(t0.elapsed().as_secs_f64() * 1e6);
        session_stats = last;
    }
    // Warm-recompilation measurement: the incremental-rebuild scenario.
    // One untimed pass populates the shared memo, then the whole suite
    // is recompiled against the warm cache. Every feasibility query now
    // hits at level 1, so this bounds what memoization alone buys when
    // the same kernels are analyzed again (edit-recompile loops, build
    // servers keeping the cache across runs).
    let warm_fme = Arc::new(ineq::FmeCache::new());
    for (prog, bind) in &instances {
        let _ = optimize_explained_shared(prog, bind, session_opts, &warm_fme);
    }
    let mut session_warm_us = f64::INFINITY;
    let mut warm_stats = analysis::AnalysisStats::default();
    for _ in 0..reps {
        let t0 = Instant::now();
        let mut last = analysis::AnalysisStats::default();
        for (prog, bind) in &instances {
            let (_, _, st) = optimize_explained_shared(prog, bind, session_opts, &warm_fme);
            last = st;
        }
        session_warm_us = session_warm_us.min(t0.elapsed().as_secs_f64() * 1e6);
        warm_stats = last;
    }

    {
        // Correctness gate for the shared-cache pass (outside timing).
        let fme = Arc::new(ineq::FmeCache::new());
        for (k, (prog, bind)) in instances.iter().enumerate() {
            let (plan, log, _) = optimize_explained_shared(prog, bind, session_opts, &fme);
            let plan = render_plan(prog, &plan);
            let log = log
                .iter()
                .map(|d| format!("{d:?}\n"))
                .collect::<Vec<_>>()
                .concat();
            if (plan, log) != references[k] {
                diverged = true;
                eprintln!(
                    "bench5: DIVERGENCE on kernel {} under the shared session cache",
                    rows[k].name
                );
            }
        }
    }

    let total_unc: f64 = rows.iter().map(|r| r.uncached_us).sum();
    let total_cad: f64 = rows.iter().map(|r| r.cached_us).sum();
    let speedup = if total_cad > 0.0 {
        total_unc / total_cad
    } else {
        0.0
    };

    let mut table = spmd_bench::Table::new(&[
        "kernel",
        "uncached us",
        "cached us",
        "speedup",
        "fme hit",
        "peak",
    ]);
    for r in &rows {
        table.row(vec![
            r.name.to_string(),
            format!("{:.0}", r.uncached_us),
            format!("{:.0}", r.cached_us),
            format!(
                "{:.2}x",
                if r.cached_us > 0.0 {
                    r.uncached_us / r.cached_us
                } else {
                    0.0
                }
            ),
            format!("{:.0}%", r.fme_hit_rate * 100.0),
            r.peak_constraints.to_string(),
        ]);
    }
    println!("{}", table.render());
    println!(
        "total: uncached {:.1} ms, cached+parallel {:.1} ms, speedup {:.2}x",
        total_unc / 1e3,
        total_cad / 1e3,
        speedup
    );
    let session_speedup = if session_cad_us > 0.0 {
        session_unc_us / session_cad_us
    } else {
        0.0
    };
    println!(
        "session (shared cache across all {} kernels): uncached {:.1} ms, cached {:.1} ms, \
         speedup {:.2}x, fme hit {:.0}%",
        rows.len(),
        session_unc_us / 1e3,
        session_cad_us / 1e3,
        session_speedup,
        session_stats.fme.feas_hit_rate() * 100.0
    );
    println!(
        "session cache internals: total {:.1} ms, canonicalize {:.1} ms, scans {:.1} ms, \
         saved {:.1} ms, {} queries, {} entries",
        session_stats.fme.query_ns as f64 / 1e6,
        session_stats.fme.canon_ns as f64 / 1e6,
        session_stats.fme.scan_ns as f64 / 1e6,
        session_stats.fme.saved_ns as f64 / 1e6,
        session_stats.fme.feas_hits + session_stats.fme.feas_misses,
        session_stats.fme.entries
    );
    let warm_speedup = if session_warm_us > 0.0 {
        session_unc_us / session_warm_us
    } else {
        0.0
    };
    println!(
        "warm recompilation (memo kept across builds): {:.1} ms vs uncached {:.1} ms, \
         speedup {:.2}x, fme hit {:.0}%",
        session_warm_us / 1e3,
        session_unc_us / 1e3,
        warm_speedup,
        warm_stats.fme.feas_hit_rate() * 100.0
    );

    let kernels: Vec<Json> = rows
        .iter()
        .map(|r| {
            Json::obj()
                .set("name", r.name)
                .set("uncached_us", r.uncached_us)
                .set("cached_us", r.cached_us)
                .set(
                    "speedup",
                    if r.cached_us > 0.0 {
                        r.uncached_us / r.cached_us
                    } else {
                        0.0
                    },
                )
                .set("pair_hit_rate", r.pair_hit_rate)
                .set("fme_hit_rate", r.fme_hit_rate)
                .set("peak_constraints", r.peak_constraints as f64)
                .set("unknown_verdicts", r.unknown_verdicts as f64)
                .set("decisions_match_reference", r.matches)
        })
        .collect();
    let doc = Json::obj()
        .set("bench", "analysis-cache-regression")
        .set("mode", if quick { "quick" } else { "full" })
        .set("nprocs", nprocs as f64)
        .set("reps", reps as f64)
        .set("kernels", Json::Arr(kernels))
        .set(
            "total",
            Json::obj()
                .set("uncached_us", total_unc)
                .set("cached_us", total_cad)
                .set("speedup", speedup),
        )
        .set(
            "session",
            Json::obj()
                .set("uncached_us", session_unc_us)
                .set("cached_us", session_cad_us)
                .set("speedup", session_speedup)
                .set("fme_hit_rate", session_stats.fme.feas_hit_rate())
                .set("fme_entries", session_stats.fme.entries as f64),
        )
        .set(
            "warm_recompile",
            Json::obj()
                .set("uncached_us", session_unc_us)
                .set("warm_us", session_warm_us)
                .set("speedup", warm_speedup)
                .set("fme_hit_rate", warm_stats.fme.feas_hit_rate()),
        )
        .set("diverged", diverged);
    let doc = spmd_bench::stamp_schema(doc);
    let rendered = doc.to_string_pretty();
    if out_path == "-" {
        println!("{rendered}");
    } else if let Err(e) = std::fs::write(&out_path, rendered + "\n") {
        eprintln!("bench5: cannot write {out_path}: {e}");
        return ExitCode::FAILURE;
    } else {
        println!("bench5: wrote {out_path}");
    }

    if let Some(base) = &baseline {
        let prev = base
            .get("total")
            .and_then(|t| t.get("speedup"))
            .and_then(|s| s.as_num())
            .unwrap_or(0.0);
        println!(
            "baseline {}: total cache speedup {prev:.2}x then, {speedup:.2}x now",
            baseline_path.as_deref().unwrap_or("-"),
        );
    }

    if diverged {
        eprintln!("bench5: FAILED — cached/parallel analysis changed optimizer output");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
