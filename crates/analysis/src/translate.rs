//! Translation from IR objects to inequality systems over two statement
//! instances (the "producer" and "consumer" of a potential communication).

use crate::bindings::Bindings;
use crate::partition::{stmt_partition, LoopPartition, StmtPartition};
use ineq::{LinExpr, System, VarId, VarKind, VarTable};
use ir::{AffAtom, Affine, CmpOp, GuardCond, LoopId, NodeId, Program, StmtPath, SymId};
use std::collections::BTreeMap;

/// How the loops shared by the two statements relate in the query.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SharedLoopMode {
    /// Same iteration of every shared loop (loop-independent test).
    SameIteration,
    /// The dependence is carried by the given shared loop: iterations of
    /// loops outer to it coincide, the carried loop satisfies
    /// `i2 >= i1 + 1`, shared loops inner to it are unrelated.
    CarriedBy(NodeId),
    /// As `CarriedBy` but with distance exactly one.
    CarriedExactlyOne(NodeId),
}

/// A fully built two-instance system: variables for both statements'
/// loop nests, their processors `p` and `q`, bounds, guards, and
/// partition constraints. Communication queries clone `sys`, add the
/// array-element equality plus a processor relation, and test
/// feasibility.
pub struct PairSystem {
    /// Variable table for the query.
    pub vt: VarTable,
    /// Base system (bounds + guards + partitions + shared-loop mode).
    pub sys: System,
    /// Producer processor variable.
    pub p: VarId,
    /// Consumer processor variable.
    pub q: VarId,
    /// Producer loop-index variables.
    pub map1: BTreeMap<LoopId, VarId>,
    /// Consumer loop-index variables.
    pub map2: BTreeMap<LoopId, VarId>,
    /// Carried-loop iteration variables `(i1_at, i2_at)` when the mode is
    /// carried; `None` for loop-independent queries.
    pub carried_vars: Option<(VarId, VarId)>,
    sym_vars: BTreeMap<SymId, VarId>,
    free_loops: BTreeMap<LoopId, VarId>,
    aux: u32,
    cache: Option<std::sync::Arc<ineq::FmeCache>>,
}

impl PairSystem {
    /// Translate an IR affine expression under a loop-variable map.
    pub fn tr(&mut self, bind: &Bindings, e: &Affine, map: &BTreeMap<LoopId, VarId>) -> LinExpr {
        let mut out = LinExpr::constant(e.constant_term() as i128);
        for (a, c) in e.terms() {
            match a {
                AffAtom::Loop(l) => {
                    // Loops outside the instance's recorded path (e.g.
                    // when a caller analyzes a nested loop in isolation)
                    // become unconstrained shared variables — the
                    // conservative "some fixed but unknown iteration".
                    let v = *map.get(&l).unwrap_or_else(|| {
                        self.free_loops.entry(l).or_insert_with(|| {
                            self.vt.fresh(format!("free{}", l.0), VarKind::LoopIndex)
                        })
                    });
                    out = out + LinExpr::term(v, c as i128);
                }
                AffAtom::Sym(s) => match bind.get(s) {
                    Some(v) => {
                        out = out + LinExpr::constant((c as i128) * (v as i128));
                    }
                    None => {
                        let v = *self.sym_vars.entry(s).or_insert_with(|| {
                            self.vt.fresh(format!("sym{}", s.0), VarKind::Symbolic)
                        });
                        out = out + LinExpr::term(v, c as i128);
                    }
                },
            }
        }
        out
    }

    /// A fresh auxiliary variable (eliminated first in the scan order).
    pub fn fresh_aux(&mut self, name: &str) -> VarId {
        self.aux += 1;
        self.vt
            .fresh(format!("{name}{}", self.aux), VarKind::ArrayIndex)
    }

    /// Add the element-equality constraints `subs1 == subs2`, dimension
    /// by dimension (both accesses refer to the same array).
    pub fn add_elem_equality(&mut self, bind: &Bindings, subs1: &[Affine], subs2: &[Affine]) {
        debug_assert_eq!(subs1.len(), subs2.len());
        for (a, b) in subs1.iter().zip(subs2) {
            let m1 = self.map1.clone();
            let m2 = self.map2.clone();
            let ea = self.tr(bind, a, &m1);
            let eb = self.tr(bind, b, &m2);
            self.sys.add_eq(ea - eb);
        }
    }

    /// Route feasibility queries through a shared memo cache. Sound
    /// because the verdict is a pure function of the canonical form of
    /// the queried system (see `ineq::cache`).
    pub fn set_cache(&mut self, cache: Option<std::sync::Arc<ineq::FmeCache>>) {
        self.cache = cache;
    }

    /// Feasibility of the base system with extra constraints installed by
    /// `extra` (the system is cloned, so queries are independent).
    ///
    /// An `Unknown` verdict (arithmetic overflow or constraint blow-up in
    /// the scan) counts as feasible: the caller keeps the barrier.
    pub fn feasible_with(&self, extra: impl FnOnce(&mut System)) -> bool {
        let mut sys = self.sys.clone();
        extra(&mut sys);
        match &self.cache {
            Some(c) => c.feasibility(&sys, &self.vt).may_hold(),
            None => sys.feasibility(&self.vt).may_hold(),
        }
    }
}

/// Build the two-instance system for statements `s1` (producer side) and
/// `s2` (consumer side) under the given shared-loop mode.
pub fn build_pair_system(
    prog: &Program,
    bind: &Bindings,
    s1: &StmtPath,
    s2: &StmtPath,
    mode: SharedLoopMode,
) -> PairSystem {
    let mut ps = PairSystem {
        vt: VarTable::new(),
        sys: System::new(),
        p: VarId(0),
        q: VarId(0),
        map1: BTreeMap::new(),
        map2: BTreeMap::new(),
        carried_vars: None,
        sym_vars: BTreeMap::new(),
        free_loops: BTreeMap::new(),
        aux: 0,
        cache: None,
    };
    ps.p = ps.vt.fresh("p", VarKind::Processor);
    ps.q = ps.vt.fresh("q", VarKind::Processor);
    let pr = bind.nprocs as i128;
    ps.sys.add_range(
        LinExpr::var(ps.p),
        LinExpr::constant(0),
        LinExpr::constant(pr - 1),
    );
    ps.sys.add_range(
        LinExpr::var(ps.q),
        LinExpr::constant(0),
        LinExpr::constant(pr - 1),
    );

    // Shared prefix of the two loop paths.
    let shared: Vec<NodeId> = s1
        .loops
        .iter()
        .zip(&s2.loops)
        .take_while(|(a, b)| a == b)
        .map(|(a, _)| *a)
        .collect();
    let carried_at = match mode {
        SharedLoopMode::SameIteration => None,
        SharedLoopMode::CarriedBy(at) | SharedLoopMode::CarriedExactlyOne(at) => {
            let pos = shared
                .iter()
                .position(|&n| n == at)
                .expect("carried loop must be shared by both statements");
            Some(pos)
        }
    };

    // Create loop variables. Shared loops outside the carried level use a
    // single variable for both instances; the carried loop gets two
    // related variables; everything else gets independent variables.
    for (k, &node) in s1.loops.iter().enumerate() {
        let l = prog.expect_loop(node);
        let is_shared = k < shared.len();
        let same_var = match carried_at {
            None => is_shared,
            Some(pos) => is_shared && k < pos,
        };
        let v1 = ps.vt.fresh(format!("{}1", l.name), VarKind::LoopIndex);
        ps.map1.insert(l.id, v1);
        if same_var {
            ps.map2.insert(l.id, v1);
        }
    }
    for (k, &node) in s2.loops.iter().enumerate() {
        let l = prog.expect_loop(node);
        if ps.map2.contains_key(&l.id) {
            continue;
        }
        let _ = k;
        let v2 = ps.vt.fresh(format!("{}2", l.name), VarKind::LoopIndex);
        ps.map2.insert(l.id, v2);
    }

    // Carried-loop relation.
    if let Some(pos) = carried_at {
        let l = prog.expect_loop(shared[pos]);
        let i1 = ps.map1[&l.id];
        let i2 = ps.map2[&l.id];
        ps.carried_vars = Some((i1, i2));
        match mode {
            SharedLoopMode::CarriedBy(_) => {
                // i2 >= i1 + 1
                ps.sys
                    .add_ge(LinExpr::var(i2) - LinExpr::var(i1) - LinExpr::constant(1));
            }
            SharedLoopMode::CarriedExactlyOne(_) => {
                ps.sys
                    .add_eq(LinExpr::var(i2) - LinExpr::var(i1) - LinExpr::constant(1));
            }
            SharedLoopMode::SameIteration => unreachable!(),
        }
    }

    // Loop bounds for both instances (bounds may mention outer loop vars,
    // which are already in the maps since paths are outermost-first).
    let m1 = ps.map1.clone();
    for &node in &s1.loops {
        let l = prog.expect_loop(node);
        let v = m1[&l.id];
        let lo = ps.tr(bind, &l.lo, &m1);
        let hi = ps.tr(bind, &l.hi, &m1);
        ps.sys.add_range(LinExpr::var(v), lo, hi);
    }
    let m2 = ps.map2.clone();
    for &node in &s2.loops {
        let l = prog.expect_loop(node);
        let v = m2[&l.id];
        // Skip re-adding identical bounds for unified variables.
        if m1.get(&l.id) == Some(&v) {
            continue;
        }
        let lo = ps.tr(bind, &l.lo, &m2);
        let hi = ps.tr(bind, &l.hi, &m2);
        ps.sys.add_range(LinExpr::var(v), lo, hi);
    }

    // Guards.
    add_guards(&mut ps, bind, &s1.guards, true);
    add_guards(&mut ps, bind, &s2.guards, false);

    // Computation partitions.
    let p = ps.p;
    let q = ps.q;
    let part1 = stmt_partition(prog, bind, s1);
    let part2 = stmt_partition(prog, bind, s2);
    add_partition(&mut ps, bind, &part1, p, true);
    add_partition(&mut ps, bind, &part2, q, false);

    ps
}

fn add_guards(ps: &mut PairSystem, bind: &Bindings, guards: &[GuardCond], first: bool) {
    let map = if first {
        ps.map1.clone()
    } else {
        ps.map2.clone()
    };
    for g in guards {
        let e = ps.tr(bind, &g.expr, &map);
        match g.op {
            CmpOp::Eq => ps.sys.add_eq(e),
            CmpOp::Ge => ps.sys.add_ge(e),
            CmpOp::Le => ps.sys.add_ge(-e),
        }
    }
}

fn add_partition(
    ps: &mut PairSystem,
    bind: &Bindings,
    part: &StmtPartition,
    proc_var: VarId,
    first: bool,
) {
    let map = if first {
        ps.map1.clone()
    } else {
        ps.map2.clone()
    };
    match part {
        StmtPartition::Master => {
            ps.sys.add_eq(LinExpr::var(proc_var));
        }
        StmtPartition::Replicated => {
            // Every processor executes: no constraint beyond 0..P-1.
        }
        StmtPartition::Distributed(loop_id, lp) => match lp {
            LoopPartition::BlockOwner { block, sub, .. } => {
                let x = ps.tr(bind, sub, &map);
                let b = *block as i128;
                // p*b <= x <= p*b + b - 1
                ps.sys.add_ge(x.clone() - LinExpr::term(proc_var, b));
                ps.sys
                    .add_ge(LinExpr::term(proc_var, b) + LinExpr::constant(b - 1) - x);
            }
            LoopPartition::CyclicOwner { sub, .. } => {
                let x = ps.tr(bind, sub, &map);
                let k = ps.fresh_aux("k");
                // x == k*P + p
                ps.sys
                    .add_eq(x - LinExpr::term(k, bind.nprocs as i128) - LinExpr::var(proc_var));
            }
            LoopPartition::BlockCyclicOwner { block, sub, .. } => {
                let x = ps.tr(bind, sub, &map);
                let k = ps.fresh_aux("k");
                let o = ps.fresh_aux("o");
                let b = *block as i128;
                // x == (k*P + p)*b + o, 0 <= o < b
                ps.sys.add_eq(
                    x - LinExpr::term(k, bind.nprocs as i128 * b)
                        - LinExpr::term(proc_var, b)
                        - LinExpr::var(o),
                );
                ps.sys.add_range(
                    LinExpr::var(o),
                    LinExpr::constant(0),
                    LinExpr::constant(b - 1),
                );
            }
            LoopPartition::BlockIndex { lo, block, .. } => {
                let i = map
                    .get(loop_id)
                    .copied()
                    .expect("distributed loop must be in the instance map");
                let b = *block as i128;
                // p*b <= i - lo <= p*b + b - 1
                ps.sys.add_ge(
                    LinExpr::var(i) - LinExpr::constant(*lo as i128) - LinExpr::term(proc_var, b),
                );
                ps.sys.add_ge(
                    LinExpr::term(proc_var, b) + LinExpr::constant(b - 1 + *lo as i128)
                        - LinExpr::var(i),
                );
            }
            LoopPartition::SymbolicBlockOwner { .. } | LoopPartition::Unknown => {
                // No linear constraint exists (the block size is a
                // quotient of symbolics); the processor variable stays
                // free and the structural symbolic path in `comm` takes
                // over where it applies.
            }
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ir::build::*;

    /// Two adjacent DOALLs over block-distributed arrays:
    ///   DOALL i: B(i) = A(i)        (copy, aligned)
    ///   DOALL j: C(j) = B(j)        (aligned read)
    fn aligned_prog() -> (Program, ir::SymId) {
        let mut p = ProgramBuilder::new("aligned");
        let n = p.sym("n");
        let a = p.array("A", &[sym(n)], dist_block());
        let b = p.array("B", &[sym(n)], dist_block());
        let c = p.array("C", &[sym(n)], dist_block());
        let i = p.begin_par("i", con(0), sym(n) - 1);
        p.assign(elem(b, [idx(i)]), arr(a, [idx(i)]));
        p.end();
        let j = p.begin_par("j", con(0), sym(n) - 1);
        p.assign(elem(c, [idx(j)]), arr(b, [idx(j)]));
        p.end();
        (p.finish(), n)
    }

    #[test]
    fn aligned_access_stays_on_processor() {
        let (prog, n) = aligned_prog();
        let bind = Bindings::new(4).set(n, 64);
        let stmts = prog.all_statements();
        let (s1, s2) = (&stmts[0], &stmts[1]);
        let mut ps = build_pair_system(&prog, &bind, s1, s2, SharedLoopMode::SameIteration);
        // Producer writes B(i); consumer reads B(j); same element.
        let i = idx(prog.expect_loop(s1.loops[0]).id);
        let j = idx(prog.expect_loop(s2.loops[0]).id);
        ps.add_elem_equality(&bind, &[i], &[j]);
        // p != q must be infeasible in both directions.
        let p = ps.p;
        let q = ps.q;
        assert!(!ps.feasible_with(|s| {
            s.add_ge(LinExpr::var(q) - LinExpr::var(p) - LinExpr::constant(1))
        }));
        assert!(!ps.feasible_with(|s| {
            s.add_ge(LinExpr::var(p) - LinExpr::var(q) - LinExpr::constant(1))
        }));
    }

    #[test]
    fn shifted_access_crosses_processors() {
        // DOALL i: B(i) = A(i); DOALL j: C(j) = B(j-1)
        let mut pb = ProgramBuilder::new("shift");
        let n = pb.sym("n");
        let a = pb.array("A", &[sym(n)], dist_block());
        let b = pb.array("B", &[sym(n)], dist_block());
        let c = pb.array("C", &[sym(n)], dist_block());
        let i = pb.begin_par("i", con(0), sym(n) - 1);
        pb.assign(elem(b, [idx(i)]), arr(a, [idx(i)]));
        pb.end();
        let j = pb.begin_par("j", con(1), sym(n) - 1);
        pb.assign(elem(c, [idx(j)]), arr(b, [idx(j) - 1]));
        pb.end();
        let prog = pb.finish();
        let bind = Bindings::new(4).set(n, 64);
        let stmts = prog.all_statements();
        let mut ps = build_pair_system(
            &prog,
            &bind,
            &stmts[0],
            &stmts[1],
            SharedLoopMode::SameIteration,
        );
        ps.add_elem_equality(&bind, &[idx(i)], &[idx(j) - 1]);
        let (p, q) = (ps.p, ps.q);
        // forward neighbor communication exists (q = p + 1)…
        assert!(ps.feasible_with(|s| {
            s.add_eq(LinExpr::var(q) - LinExpr::var(p) - LinExpr::constant(1))
        }));
        // …but nothing farther than one processor away.
        assert!(!ps.feasible_with(|s| {
            s.add_ge(LinExpr::var(q) - LinExpr::var(p) - LinExpr::constant(2))
        }));
        assert!(!ps.feasible_with(|s| {
            s.add_ge(LinExpr::var(p) - LinExpr::var(q) - LinExpr::constant(1))
        }));
    }
}
