//! Dense conjugate-gradient-style iteration (NAS CG class, dense
//! stand-in): matvec (row-local), two dot-product reductions, and an
//! axpy update chain per iteration.
//!
//! The mixed profile: the axpy chain's barriers are eliminated (aligned)
//! and the matvec is local, but each dot product reduces into a shared
//! scalar and keeps a barrier — the realistic "reduction-bound" middle
//! of the paper's Table 3.

use crate::{Built, Scale};
use ir::build::*;
use ir::RedOp;

/// Build at the given scale.
pub fn build(scale: Scale) -> Built {
    let (nv, tv) = match scale {
        Scale::Test => (12, 2),
        Scale::Small => (48, 6),
        Scale::Full => (256, 10),
    };
    let mut pb = ProgramBuilder::new("cg_dense");
    let n = pb.sym("n");
    let tmax = pb.sym("tmax");
    let a = pb.array("A", &[sym(n), sym(n)], dist_block());
    let x = pb.array("X", &[sym(n)], dist_block());
    let r = pb.array("R", &[sym(n)], dist_block());
    let p = pb.array("P", &[sym(n)], dist_block());
    let q = pb.array("Q", &[sym(n)], dist_block());
    let rho = pb.scalar("rho", 0.0);
    let pq = pb.scalar("pq", 0.0);

    // Symmetric-ish diagonally dominant matrix + initial residual.
    let i0 = pb.begin_par("i0", con(0), sym(n) - 1);
    let j0 = pb.begin_seq("j0", con(0), sym(n) - 1);
    pb.begin_guard(vec![eq0(idx(i0) - idx(j0))]);
    pb.assign(elem(a, [idx(i0), idx(j0)]), ex(4.0));
    pb.end();
    pb.begin_guard(vec![ge0(idx(i0) - idx(j0) - 1)]);
    pb.assign(
        elem(a, [idx(i0), idx(j0)]),
        ival(idx(i0) + idx(j0)).sin() * ex(0.02),
    );
    pb.end();
    pb.begin_guard(vec![ge0(idx(j0) - idx(i0) - 1)]);
    pb.assign(
        elem(a, [idx(i0), idx(j0)]),
        ival(idx(i0) + idx(j0)).sin() * ex(0.02),
    );
    pb.end();
    pb.end();
    pb.assign(elem(x, [idx(i0)]), ex(0.0));
    pb.assign(elem(r, [idx(i0)]), ival(idx(i0) * 7).cos());
    pb.assign(elem(p, [idx(i0)]), arr(r, [idx(i0)]));
    pb.end();

    let _t = pb.begin_seq("t", con(0), sym(tmax) - 1);

    // q = A p  (rows local; P read fully — replicated reads of a
    // distributed vector cross processors, so a barrier guards it).
    let i1 = pb.begin_par("i1", con(0), sym(n) - 1);
    let j1 = pb.begin_seq("j1", con(0), sym(n) - 1);
    pb.reduce(
        elem(q, [idx(i1)]),
        RedOp::Add,
        arr(a, [idx(i1), idx(j1)]) * arr(p, [idx(j1)]),
    );
    pb.end();
    pb.end();

    // rho = r·r and pq = p·q (reductions — barriers stay).
    let i2 = pb.begin_par("i2", con(0), sym(n) - 1);
    pb.reduce(svar(rho), RedOp::Add, arr(r, [idx(i2)]) * arr(r, [idx(i2)]));
    pb.reduce(svar(pq), RedOp::Add, arr(p, [idx(i2)]) * arr(q, [idx(i2)]));
    pb.end();

    // x += alpha p ; r -= alpha q  (aligned axpy chain — eliminated).
    let i3 = pb.begin_par("i3", con(0), sym(n) - 1);
    pb.assign(
        elem(x, [idx(i3)]),
        arr(x, [idx(i3)]) + arr(p, [idx(i3)]) * (sca(rho) / (ex(1.0) + sca(pq).abs())),
    );
    pb.assign(
        elem(r, [idx(i3)]),
        arr(r, [idx(i3)]) - arr(q, [idx(i3)]) * (sca(rho) / (ex(1.0) + sca(pq).abs())),
    );
    pb.end();
    // p = r + beta p  (aligned with the previous phase — eliminated).
    let i4 = pb.begin_par("i4", con(0), sym(n) - 1);
    pb.assign(
        elem(p, [idx(i4)]),
        arr(r, [idx(i4)]) + arr(p, [idx(i4)]) * ex(0.5),
    );
    pb.end();

    pb.end(); // t

    Built {
        prog: pb.finish(),
        values: vec![(n, nv), (tmax, tv)],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn axpy_chain_barriers_eliminated_reductions_kept() {
        let built = build(Scale::Test);
        let bind = built.bindings(4);
        let opt = spmd_opt::optimize(&built.prog, &bind).static_stats();
        let fj = spmd_opt::fork_join(&built.prog, &bind).static_stats();
        assert!(opt.eliminated >= 1, "{opt:?}");
        assert!(opt.barriers >= 2, "reductions keep barriers: {opt:?}");
        assert!(opt.barriers < fj.barriers, "{opt:?} vs {fj:?}");
    }
}
