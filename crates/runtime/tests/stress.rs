//! Stress tests for the synchronization primitives under oversubscription
//! (more workers than cores) and rapid reuse.

use runtime::{BarrierEpoch, CentralBarrier, Counters, NeighborFlags, Team, TreeBarrier};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

#[test]
fn many_small_regions_dispatch_correctly() {
    let team = Team::new(6);
    let total = Arc::new(AtomicU64::new(0));
    for k in 0..500u64 {
        let total = Arc::clone(&total);
        team.run(move |pid| {
            total.fetch_add(k + pid as u64, Ordering::Relaxed);
        });
    }
    let expect: u64 = (0..500u64).map(|k| 6 * k + 15).sum();
    assert_eq!(total.load(Ordering::Relaxed), expect);
}

#[test]
fn interleaved_barrier_and_counter_protocol() {
    // Producers and consumers alternate roles across 200 rounds; any
    // ordering bug shows up as a stale read.
    let p = 4;
    let team = Team::new(p);
    let barrier = Arc::new(CentralBarrier::new(p));
    let counters = Arc::new(Counters::new(p));
    let cell = Arc::new(AtomicU64::new(0));
    let bad = Arc::new(AtomicU64::new(0));
    {
        let barrier = Arc::clone(&barrier);
        let counters = Arc::clone(&counters);
        let cell = Arc::clone(&cell);
        let bad = Arc::clone(&bad);
        team.run(move |pid| {
            let mut sense = BarrierEpoch::default();
            for round in 1..=200u64 {
                let producer = (round as usize) % 4;
                if pid == producer {
                    cell.store(round * 1000, Ordering::Relaxed);
                    counters.increment(producer);
                } else {
                    counters.wait_ge(producer, round.div_ceil(4));
                    // The counter's acquire pairs with the producer's
                    // release: the value must be current or newer.
                    if cell.load(Ordering::Relaxed) < round * 1000 {
                        bad.fetch_add(1, Ordering::Relaxed);
                    }
                }
                barrier.wait(&mut sense);
            }
        });
    }
    assert_eq!(bad.load(Ordering::Relaxed), 0);
}

#[test]
fn tree_and_central_barriers_agree_under_oversubscription() {
    // 16 workers on however few cores this host has.
    let p = 16;
    let team = Team::new(p);
    for use_tree in [false, true] {
        let central = Arc::new(CentralBarrier::new(p));
        let tree = Arc::new(TreeBarrier::new(p));
        let seq = Arc::new(AtomicU64::new(0));
        let seq2 = Arc::clone(&seq);
        team.run(move |pid| {
            let mut sense = BarrierEpoch::default();
            let mut epoch = 0usize;
            for round in 0..100u64 {
                // Everyone must observe at least `round * p` increments
                // after the barrier.
                seq2.fetch_add(1, Ordering::SeqCst);
                if use_tree {
                    tree.wait(pid, &mut epoch);
                } else {
                    central.wait(&mut sense);
                }
                assert!(seq2.load(Ordering::SeqCst) >= (round + 1) * p as u64);
            }
        });
        assert_eq!(seq.load(Ordering::SeqCst), 100 * p as u64);
    }
}

#[test]
fn neighbor_flags_long_pipeline() {
    // An 8-stage pipeline pushing 300 tokens: each stage must observe
    // every token in order.
    let p = 8;
    let team = Team::new(p);
    let flags = Arc::new(NeighborFlags::new(p));
    let lanes: Arc<Vec<AtomicU64>> = Arc::new((0..p).map(|_| AtomicU64::new(0)).collect());
    {
        let flags = Arc::clone(&flags);
        let lanes = Arc::clone(&lanes);
        team.run(move |pid| {
            for token in 1..=300u64 {
                flags.wait(pid as isize - 1, token);
                if pid > 0 {
                    let upstream = lanes[pid - 1].load(Ordering::Relaxed);
                    assert!(upstream >= token, "stage {pid} saw stale token {upstream}");
                }
                lanes[pid].store(token, Ordering::Relaxed);
                flags.post(pid);
            }
        });
    }
    for l in lanes.iter() {
        assert_eq!(l.load(Ordering::Relaxed), 300);
    }
}

#[test]
fn counters_reset_between_regions() {
    let c = Counters::new(3);
    for _ in 0..10 {
        c.increment(0);
        c.increment(2);
    }
    assert_eq!(c.value(0), 10);
    c.reset();
    assert_eq!(c.value(0), 0);
    assert_eq!(c.value(2), 0);
    // Reusable after reset.
    c.increment(1);
    c.wait_ge(1, 1);
}
