//! Distance-vector pairwise-sync gate: `BENCH_9.json`.
//!
//! Runs the pipelined kernel set — the programs whose communication is
//! multi-hop, wavefront-carried, or a mixed shift/broadcast join — and
//! enforces the three claims the distance-vector classification makes:
//!
//! * **dynamic barrier reduction** — the optimized plan's dynamic
//!   barrier count under the virtual executor must be at least the
//!   per-kernel factor below the fork-join plan's (≥10× for the
//!   pipelined kernels; shift_bcast keeps its wide carried-spectrum
//!   bottom barrier, so it gates on a smaller factor);
//! * **bitwise oracle exactness** — both plans, under every scheduled
//!   virtual order, must reproduce the sequential oracle with a
//!   max-abs difference of exactly zero (pairwise waits never reorder
//!   floating-point work, they only prune barriers);
//! * **race freedom** — the vector-clock validator must certify both
//!   plans, i.e. every wavefront schedule's pairwise wait set is
//!   sufficient, not just fast.
//!
//! The optimized plan must also actually exercise pairwise counters
//! (`pair_posts > 0`) so the gate cannot pass vacuously via barriers.
//!
//! Usage: `bench9 [--quick] [--out PATH] [--baseline PATH]`
//!   --quick     fewer virtual orders (CI smoke)
//!   --out       output path (default BENCH_9.json; `-` for stdout)
//!   --baseline  prior BENCH_9.json; refused unless its schema matches

use interp::{run_sequential, run_virtual, Mem, ScheduleOrder};
use obs::Json;
use spmd_opt::{fork_join, optimize};
use std::process::ExitCode;
use suite::Scale;

/// The pipelined kernels, the minimum dynamic barrier-count reduction
/// each must demonstrate (fork-join / optimized), and the processor
/// count the reduction is reported at.
const KERNELS: &[(&str, f64, i64)] = &[
    ("wavepipe2d", 10.0, 8),
    ("trisolve_pipe", 10.0, 8),
    ("multihop", 10.0, 8),
    ("pivot_shift", 10.0, 8),
    // The broadcast's owner-distance spectrum fits the pairwise
    // fan-in budget only at four processors (three distances); at
    // eight it correctly degrades to a barrier. And the carried
    // spectrum at the loop bottom always exceeds the budget, so the
    // per-step bottom barrier stays; only the inter-phase barrier is
    // pruned.
    ("shift_bcast", 1.5, 4),
];

fn orders(quick: bool) -> Vec<ScheduleOrder> {
    let mut o = vec![ScheduleOrder::RoundRobin, ScheduleOrder::Reverse];
    if !quick {
        o.push(ScheduleOrder::Random(0xBE9));
        o.push(ScheduleOrder::Random(0x9BE ^ 7919));
    }
    o
}

fn main() -> ExitCode {
    let mut quick = false;
    let mut out_path = "BENCH_9.json".to_string();
    let mut baseline_path: Option<String> = None;
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--quick" => quick = true,
            "--out" => out_path = it.next().expect("--out needs a path"),
            "--baseline" => baseline_path = Some(it.next().expect("--baseline needs a path")),
            other => {
                eprintln!("unknown flag {other}");
                eprintln!("usage: bench9 [--quick] [--out PATH] [--baseline PATH]");
                return ExitCode::from(2);
            }
        }
    }
    if let Some(p) = &baseline_path {
        match spmd_bench::load_baseline(p, "pairwise-pipeline") {
            Ok(_) => println!("baseline {p}: schema ok"),
            Err(e) => {
                eprintln!("{e}");
                return ExitCode::FAILURE;
            }
        }
    }

    let nprocs: &[i64] = &[4, 8];
    let orders = orders(quick);
    let mut rows: Vec<Json> = Vec::new();
    let mut all_ok = true;

    for &(name, min_ratio, report_p) in KERNELS {
        let def = suite::by_name(name).unwrap_or_else(|| panic!("unknown kernel {name}"));
        let mut row_ok = true;
        let mut fj_barriers = 0u64;
        let mut opt_barriers = 0u64;
        let mut pair_posts = 0u64;
        let mut pair_waits = 0u64;
        let mut exact = true;
        let mut race_free = true;

        for &p in nprocs {
            let built = (def.build)(Scale::Small);
            let bind = built.bindings(p);
            let oracle_mem = Mem::new(&built.prog, &bind);
            run_sequential(&built.prog, &bind, &oracle_mem);

            for (label, plan) in [
                ("fork-join", fork_join(&built.prog, &bind)),
                ("optimized", optimize(&built.prog, &bind)),
            ] {
                let report = oracle::validate(&built.prog, &bind, &plan);
                if !report.is_race_free() {
                    println!(
                        "{name} P={p} {label}: {} racing pairs — schedule is unsound",
                        report.num_racing_pairs
                    );
                    race_free = false;
                    row_ok = false;
                }
                let mut counts = None;
                for &order in &orders {
                    let mem = Mem::new(&built.prog, &bind);
                    let vo = run_virtual(&built.prog, &bind, &plan, &mem, order);
                    let diff = mem.max_abs_diff(&oracle_mem);
                    if diff != 0.0 {
                        println!("{name} P={p} {label} {order:?}: diverged by {diff:e}");
                        exact = false;
                        row_ok = false;
                    }
                    counts = Some(vo.counts);
                }
                let counts = counts.expect("at least one order");
                if p == report_p {
                    match label {
                        "fork-join" => fj_barriers = counts.barriers,
                        _ => {
                            opt_barriers = counts.barriers;
                            pair_posts = counts.pair_posts;
                            pair_waits = counts.pair_waits;
                        }
                    }
                }
            }
        }

        let ratio = fj_barriers as f64 / opt_barriers.max(1) as f64;
        if ratio < min_ratio {
            println!(
                "{name}: dynamic barrier reduction {ratio:.1}x below the {min_ratio:.1}x gate"
            );
            row_ok = false;
        }
        if pair_posts == 0 {
            println!("{name}: optimized schedule never posted a pairwise cell");
            row_ok = false;
        }
        println!(
            "{name:>14} @ P={report_p}: barriers {fj_barriers:>5} -> {opt_barriers:>3} \
             ({ratio:>5.1}x, gate {min_ratio:.1}x), pair posts {pair_posts:>5}, waits \
             {pair_waits:>5}, exact {exact}, race-free {race_free} -> {}",
            if row_ok { "OK" } else { "FAILED" }
        );
        all_ok &= row_ok;
        rows.push(
            Json::obj()
                .set("kernel", name)
                .set("report_nprocs", report_p as u64)
                .set("fj_barriers", fj_barriers)
                .set("opt_barriers", opt_barriers)
                .set("reduction", ratio)
                .set("gate", min_ratio)
                .set("pair_posts", pair_posts)
                .set("pair_waits", pair_waits)
                .set("exact", exact)
                .set("race_free", race_free)
                .set("ok", row_ok),
        );
    }

    let doc = spmd_bench::stamp_schema(
        Json::obj()
            .set("bench", "pairwise-pipeline")
            .set("mode", if quick { "quick" } else { "full" })
            .set(
                "nprocs",
                Json::Arr(nprocs.iter().map(|&p| Json::from(p as u64)).collect()),
            )
            .set("scale", "small")
            .set("kernels", Json::Arr(rows))
            .set("ok", all_ok),
    );
    let rendered = doc.to_string_pretty();
    if out_path == "-" {
        println!("{rendered}");
    } else if let Err(e) = std::fs::write(&out_path, rendered) {
        eprintln!("cannot write {out_path}: {e}");
        return ExitCode::FAILURE;
    } else {
        println!("wrote {out_path}");
    }
    if all_ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
