//! Variables and the scan-order variable table.
//!
//! The paper sorts variables into the scan order *symbolics, processors,
//! loop index variables, array indices* before scanning a system with
//! Fourier-Motzkin elimination. Variables eliminated first are the ones
//! scanned *last* (innermost), so feasibility testing eliminates array
//! indices first and symbolics last.

use std::fmt;

/// Opaque handle for a variable in a [`VarTable`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VarId(pub u32);

impl fmt::Debug for VarId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// The four variable classes of the paper's scan order.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub enum VarKind {
    /// Symbolic program constants (problem sizes, number of processors…).
    Symbolic,
    /// Processor identifiers (`p`, `q`).
    Processor,
    /// Loop index variables.
    LoopIndex,
    /// Array subscript variables.
    ArrayIndex,
}

impl VarKind {
    /// Position in the scan order: lower scans earlier (outermost).
    pub fn scan_rank(self) -> u8 {
        match self {
            VarKind::Symbolic => 0,
            VarKind::Processor => 1,
            VarKind::LoopIndex => 2,
            VarKind::ArrayIndex => 3,
        }
    }
}

/// Registry mapping [`VarId`]s to names and [`VarKind`]s.
#[derive(Clone, Debug, Default)]
pub struct VarTable {
    names: Vec<String>,
    kinds: Vec<VarKind>,
}

impl VarTable {
    /// An empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a new variable and return its id.
    pub fn fresh(&mut self, name: impl Into<String>, kind: VarKind) -> VarId {
        let id = VarId(self.names.len() as u32);
        self.names.push(name.into());
        self.kinds.push(kind);
        id
    }

    /// The variable's display name.
    pub fn name(&self, v: VarId) -> &str {
        &self.names[v.0 as usize]
    }

    /// The variable's class.
    pub fn kind(&self, v: VarId) -> VarKind {
        self.kinds[v.0 as usize]
    }

    /// Number of registered variables.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True if no variables are registered.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// All variable ids, in registration order.
    pub fn iter(&self) -> impl Iterator<Item = VarId> + '_ {
        (0..self.names.len() as u32).map(VarId)
    }

    /// Variables sorted by scan order (symbolics first, array indices
    /// last); ties broken by registration order so results are
    /// deterministic.
    pub fn scan_order(&self) -> Vec<VarId> {
        let mut vs: Vec<VarId> = self.iter().collect();
        vs.sort_by_key(|v| (self.kind(*v).scan_rank(), v.0));
        vs
    }

    /// Variables in *elimination* order: the reverse of the scan order,
    /// i.e. array indices are eliminated first and symbolics last.
    pub fn elimination_order(&self) -> Vec<VarId> {
        let mut vs = self.scan_order();
        vs.reverse();
        vs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scan_order_groups_by_kind() {
        let mut vt = VarTable::new();
        let i = vt.fresh("i", VarKind::LoopIndex);
        let n = vt.fresh("n", VarKind::Symbolic);
        let p = vt.fresh("p", VarKind::Processor);
        let x = vt.fresh("x", VarKind::ArrayIndex);
        let j = vt.fresh("j", VarKind::LoopIndex);
        assert_eq!(vt.scan_order(), vec![n, p, i, j, x]);
        assert_eq!(vt.elimination_order(), vec![x, j, i, p, n]);
    }

    #[test]
    fn names_and_kinds_roundtrip() {
        let mut vt = VarTable::new();
        let p = vt.fresh("p", VarKind::Processor);
        assert_eq!(vt.name(p), "p");
        assert_eq!(vt.kind(p), VarKind::Processor);
        assert_eq!(vt.len(), 1);
        assert!(!vt.is_empty());
    }
}
