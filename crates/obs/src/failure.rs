//! Structured failure reports for detected sync faults.
//!
//! When a deadline-guarded execution times out, trips over a poisoned
//! region, or loses a worker to a panic, the executor snapshots
//! everything a triager needs into a [`FailureReport`]: the failure
//! cause attributed to a canonical sync site and processor, the site
//! walk of the schedule that was running, and the per-site wait
//! telemetry at the moment of death (which processors were blocked
//! where, and for how long). [`failure_json`] renders it with the
//! deterministic [`crate::json`] emitter so reports can ride inside
//! `beoracle` repro bundles; [`render_failure`] is the human-readable
//! form the CLIs print.

use crate::json::Json;
use crate::metrics;
use runtime::fault::{SyncError, DISPATCH_SITE};
use runtime::telemetry::SiteSnapshot;

/// Why the region died.
#[derive(Clone, Debug, PartialEq)]
pub enum FailureCause {
    /// A guarded wait outlived the watchdog deadline.
    Deadline {
        /// Canonical sync-site id (`usize::MAX` = dispatch broadcast).
        site: usize,
        /// Processor that timed out first.
        pid: usize,
        /// Primitive kind ("barrier", "counter", "neighbor",
        /// "dispatch").
        kind: String,
        /// Progress value the wait needed.
        expected: u64,
        /// Progress value last observed.
        observed: u64,
    },
    /// A worker panicked inside the region.
    Panic {
        /// Processor that panicked.
        pid: usize,
        /// Panic message.
        message: String,
    },
    /// A counter bank was reset under an in-flight guarded wait.
    StaleGeneration {
        /// Site the stale waiter was blocked at.
        site: usize,
        /// Processor whose wait went stale.
        pid: usize,
    },
}

impl FailureCause {
    /// Build the cause from a primitive-level [`SyncError`].
    pub fn from_sync_error(e: &SyncError) -> FailureCause {
        match e {
            SyncError::DeadlineExceeded {
                site,
                pid,
                kind,
                expected,
                observed,
            } => FailureCause::Deadline {
                site: *site,
                pid: *pid,
                kind: if *site == DISPATCH_SITE {
                    "dispatch".to_string()
                } else {
                    format!("{kind:?}").to_lowercase()
                },
                expected: *expected,
                observed: *observed,
            },
            // A poison observation is secondary; reports built from one
            // (no primary error was captured) surface it as a panic-ish
            // cause carrying the recorded reason.
            SyncError::Poisoned { pid, cause, .. } => FailureCause::Panic {
                pid: *pid,
                message: cause.clone(),
            },
            SyncError::StaleGeneration { site, pid } => FailureCause::StaleGeneration {
                site: *site,
                pid: *pid,
            },
        }
    }

    /// The sync site the cause is attributed to, if any.
    pub fn site(&self) -> Option<usize> {
        match self {
            FailureCause::Deadline { site, .. } | FailureCause::StaleGeneration { site, .. } => {
                Some(*site)
            }
            FailureCause::Panic { .. } => None,
        }
    }

    /// The processor the cause is attributed to.
    pub fn pid(&self) -> usize {
        match self {
            FailureCause::Deadline { pid, .. }
            | FailureCause::Panic { pid, .. }
            | FailureCause::StaleGeneration { pid, .. } => *pid,
        }
    }
}

/// Everything known about one detected region failure.
#[derive(Clone, Debug)]
pub struct FailureReport {
    /// Program whose schedule was executing.
    pub program: String,
    /// Team size.
    pub nprocs: usize,
    /// The armed per-wait deadline, in milliseconds.
    pub deadline_ms: f64,
    /// The primary failure.
    pub cause: FailureCause,
    /// Label of the site the cause is attributed to (from the canonical
    /// site walk; "dispatch" for the dispatch broadcast).
    pub site_label: String,
    /// Every processor's terminal error, in pid order, as display
    /// strings ("ok" for processors that finished their traversal).
    pub per_proc: Vec<String>,
    /// Chaos seed, when a fault injector was active (set by the
    /// oracle's chaos driver, not the executor).
    pub chaos_seed: Option<u64>,
    /// Per-site wait telemetry at the moment of failure.
    pub sites: Vec<SiteSnapshot>,
}

impl FailureReport {
    /// Short one-line summary (what CLIs print on the FAIL line).
    pub fn headline(&self) -> String {
        match &self.cause {
            FailureCause::Deadline {
                site,
                pid,
                kind,
                expected,
                observed,
            } => {
                let where_ = if *site == DISPATCH_SITE {
                    "dispatch".to_string()
                } else {
                    format!("s{site} ({})", self.site_label)
                };
                format!(
                    "deadline exceeded after {:.0}ms at {where_} on P{pid}: {kind} wait needed {expected}, observed {observed}",
                    self.deadline_ms
                )
            }
            FailureCause::Panic { pid, message } => {
                format!("worker P{pid} panicked: {message}")
            }
            FailureCause::StaleGeneration { site, pid } => {
                format!(
                    "counter bank reset under P{pid} waiting at s{site} ({})",
                    self.site_label
                )
            }
        }
    }
}

fn cause_json(c: &FailureCause) -> Json {
    match c {
        FailureCause::Deadline {
            site,
            pid,
            kind,
            expected,
            observed,
        } => Json::obj()
            .set("kind", "deadline-exceeded")
            .set(
                "site",
                if *site == DISPATCH_SITE {
                    Json::Str("dispatch".to_string())
                } else {
                    Json::Num(*site as f64)
                },
            )
            .set("pid", *pid)
            .set("sync", kind.as_str())
            .set("expected", *expected)
            .set("observed", *observed),
        FailureCause::Panic { pid, message } => Json::obj()
            .set("kind", "panic")
            .set("pid", *pid)
            .set("message", message.as_str()),
        FailureCause::StaleGeneration { site, pid } => Json::obj()
            .set("kind", "stale-generation")
            .set("site", *site)
            .set("pid", *pid),
    }
}

/// The failure document: cause + attribution + telemetry snapshot. The
/// `"sites"` member reuses the metrics schema, so existing tooling for
/// `--metrics-json` output reads the telemetry section unchanged.
pub fn failure_json(r: &FailureReport) -> Json {
    let mut doc = Json::obj()
        .set("program", r.program.as_str())
        .set("nprocs", r.nprocs)
        .set("deadline_ms", r.deadline_ms)
        .set("cause", cause_json(&r.cause))
        .set("site_label", r.site_label.as_str())
        .set(
            "per_proc",
            Json::Arr(r.per_proc.iter().map(|s| Json::Str(s.clone())).collect()),
        );
    if let Some(seed) = r.chaos_seed {
        doc = doc.set("chaos_seed", seed);
    }
    let telemetry = metrics::metrics_json(
        &r.program,
        r.nprocs,
        &r.sites,
        &runtime::stats::StatsSnapshot::default(),
    );
    doc.set(
        "sites",
        telemetry.get("sites").cloned().unwrap_or(Json::Arr(vec![])),
    )
}

/// Human-readable report (headline, per-processor state, and the wait
/// table for the sites that saw activity before the region died).
pub fn render_failure(r: &FailureReport) -> String {
    let mut out = String::new();
    out.push_str("--- sync failure report ---\n");
    out.push_str(&format!("program : {} (P={})\n", r.program, r.nprocs));
    out.push_str(&format!("cause   : {}\n", r.headline()));
    if let Some(seed) = r.chaos_seed {
        out.push_str(&format!("chaos   : seed {seed}\n"));
    }
    for (pid, state) in r.per_proc.iter().enumerate() {
        out.push_str(&format!("  P{pid}: {state}\n"));
    }
    if !r.sites.is_empty() {
        out.push_str(&metrics::render_site_table(&r.sites));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use runtime::stats::SyncKind;

    fn sample() -> FailureReport {
        FailureReport {
            program: "jacobi".to_string(),
            nprocs: 4,
            deadline_ms: 250.0,
            cause: FailureCause::from_sync_error(&SyncError::DeadlineExceeded {
                site: 2,
                pid: 3,
                kind: SyncKind::Counter,
                expected: 5,
                observed: 4,
            }),
            site_label: "after DOALL i [n5]".to_string(),
            per_proc: vec![
                "ok".to_string(),
                "ok".to_string(),
                "poisoned".to_string(),
                "deadline".to_string(),
            ],
            chaos_seed: Some(42),
            sites: Vec::new(),
        }
    }

    #[test]
    fn json_names_the_site_and_pid() {
        let doc = failure_json(&sample());
        let cause = doc.get("cause").unwrap();
        assert_eq!(
            cause.get("kind").unwrap().as_str(),
            Some("deadline-exceeded")
        );
        assert_eq!(cause.get("site").unwrap().as_u64(), Some(2));
        assert_eq!(cause.get("pid").unwrap().as_u64(), Some(3));
        assert_eq!(cause.get("expected").unwrap().as_u64(), Some(5));
        assert_eq!(doc.get("chaos_seed").unwrap().as_u64(), Some(42));
        // The document round-trips through the strict parser.
        let txt = doc.to_string_pretty();
        assert_eq!(crate::json::parse(&txt).unwrap(), doc);
    }

    #[test]
    fn dispatch_sentinel_renders_by_name() {
        let mut r = sample();
        r.cause = FailureCause::from_sync_error(&SyncError::DeadlineExceeded {
            site: DISPATCH_SITE,
            pid: 1,
            kind: SyncKind::Counter,
            expected: 3,
            observed: 2,
        });
        r.site_label = "dispatch".to_string();
        let doc = failure_json(&r);
        let cause = doc.get("cause").unwrap();
        assert_eq!(cause.get("site").unwrap().as_str(), Some("dispatch"));
        assert_eq!(cause.get("sync").unwrap().as_str(), Some("dispatch"));
        assert!(r.headline().contains("dispatch"));
    }

    #[test]
    fn rendering_carries_headline_and_per_proc() {
        let r = sample();
        let txt = render_failure(&r);
        assert!(txt.contains("deadline exceeded"));
        assert!(txt.contains("after DOALL i [n5]"));
        assert!(txt.contains("P3: deadline"));
        assert!(txt.contains("seed 42"));
    }
}
