//! The supervised shard pool: N worker shards, each owning one slice
//! of the service's FME memo, each crash-isolated and restartable.
//!
//! A shard is a bounded admission queue plus one worker thread. The
//! worker runs every request under `catch_unwind`; a panic (a compiler
//! bug, or an injected [`ServiceFault::KillShard`]) is *fail-stop for
//! the shard, not the process*: the worker thread dies, in-flight
//! reply channels drop (the connection handler answers
//! `shard_crashed` and the client retries with backoff), queued work
//! stays in the shard-owned queue, and the supervisor restarts the
//! worker with a fresh [`FmeCache`] rejoined from the last good
//! snapshot. Nothing a crashed worker half-did is observable: plans
//! are pure functions of the request, and snapshots are atomic.
//!
//! Requests are routed to shards by a deterministic hash of the
//! program text, so repeated compiles of the same program always land
//! on the same memo slice — the warm path survives everything short
//! of losing the snapshot file itself.

use crate::chaos::{ServiceChaos, ServiceFault};
use crate::proto::{ErrorCode, ErrorReply, OptimizeReply, OptimizeRequest, PlanKind, Reply};
use crate::queue::{BoundedQueue, Pop, PushError};
use analysis::Bindings;
use ineq::cache::FxHasher;
use ineq::{load_snapshot, write_snapshot, FmeCache, SnapshotLoad};
use obs::{explain_json, Json};
use spmd_opt::{fork_join, optimize_explained_shared, OptimizeOptions};
use std::hash::Hasher;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Per-shard tuning, shared by every incarnation of the worker.
#[derive(Clone)]
pub struct ShardConfig {
    /// Admission queue bound (requests waiting, not in flight).
    pub queue_cap: usize,
    /// Feasibility-memo capacity for this shard's cache slice.
    pub feas_capacity: usize,
    /// Where snapshots live; `None` disables persistence.
    pub snapshot_dir: Option<PathBuf>,
    /// Persist after this many optimize requests (0 = only explicit
    /// snapshot requests and graceful shutdown).
    pub snapshot_every: u64,
    /// Service-plane fault schedule (tests and chaos campaigns).
    pub chaos: Option<Arc<dyn ServiceChaos>>,
}

impl Default for ShardConfig {
    fn default() -> Self {
        ShardConfig {
            queue_cap: 64,
            feas_capacity: ineq::cache::FEAS_MEMO_CAP,
            snapshot_dir: None,
            snapshot_every: 8,
            chaos: None,
        }
    }
}

/// One unit of admitted work: the request, its deadline, and the
/// channel the connection handler is waiting on. If the worker dies
/// mid-request the sender drops and the handler observes the crash.
pub struct Job {
    /// The compile request.
    pub req: OptimizeRequest,
    /// When the request was admitted (queue-time accounting).
    pub accepted: Instant,
    /// Absolute deadline; expired jobs are answered, not compiled.
    pub deadline: Instant,
    /// Where the connection handler listens for the outcome.
    pub reply: mpsc::Sender<Reply>,
}

/// Monotonic per-shard counters (all relaxed; they are diagnostics).
#[derive(Default)]
pub struct ShardCounters {
    /// Requests answered with a plan.
    pub served: AtomicU64,
    /// Requests answered with `bad_request`.
    pub failed: AtomicU64,
    /// Worker panics (each one is a restart).
    pub panics: AtomicU64,
    /// Worker restarts performed by the supervisor.
    pub restarts: AtomicU64,
    /// Requests refused at admission (queue full).
    pub shed: AtomicU64,
    /// Requests answered with `deadline_exceeded`.
    pub deadline_miss: AtomicU64,
    /// Snapshots successfully written.
    pub snapshots_written: AtomicU64,
    /// Memo entries rejoined from snapshots across all restarts.
    pub entries_loaded: AtomicU64,
    /// Worker starts with an empty memo (missing/rejected snapshot).
    pub cold_starts: AtomicU64,
    /// Snapshot loads rejected by validation.
    pub snapshot_rejects: AtomicU64,
    /// Requests served from a warm memo (feasibility hits observed).
    pub warm_hits: AtomicU64,
}

/// One shard: queue + cache slice + supervised worker thread.
pub struct Shard {
    /// Stable shard index (also the snapshot file name).
    pub id: usize,
    cfg: ShardConfig,
    queue: Arc<BoundedQueue<Job>>,
    fme: Mutex<Arc<FmeCache>>,
    /// Why the last snapshot load cold-started, if it did.
    last_reject: Mutex<Option<String>>,
    c: ShardCounters,
    req_seq: AtomicU64,
    snap_seq: AtomicU64,
    since_snapshot: AtomicU64,
    worker: Mutex<Option<JoinHandle<()>>>,
}

/// Route a program to a shard: deterministic across processes and
/// runs, so the same source always reaches the same memo slice.
pub fn route(program: &str, nshards: usize) -> usize {
    let mut h = FxHasher::default();
    h.write(program.as_bytes());
    (h.finish() % nshards.max(1) as u64) as usize
}

impl Shard {
    /// Build a shard, rejoin its cache from disk, start its worker.
    pub fn start(id: usize, cfg: ShardConfig) -> Arc<Shard> {
        let shard = Arc::new(Shard {
            id,
            queue: Arc::new(BoundedQueue::new(cfg.queue_cap)),
            fme: Mutex::new(Arc::new(FmeCache::with_feas_capacity(cfg.feas_capacity))),
            last_reject: Mutex::new(None),
            c: ShardCounters::default(),
            req_seq: AtomicU64::new(0),
            snap_seq: AtomicU64::new(0),
            since_snapshot: AtomicU64::new(0),
            worker: Mutex::new(None),
            cfg,
        });
        shard.rejoin_cache();
        shard.spawn_worker();
        shard
    }

    /// The snapshot path for this shard, if persistence is on.
    pub fn snapshot_path(&self) -> Option<PathBuf> {
        self.cfg
            .snapshot_dir
            .as_ref()
            .map(|d| d.join(format!("shard-{}.fme", self.id)))
    }

    /// Replace the cache with a fresh one rejoined from the last good
    /// snapshot (cold-start on missing or invalid files, never crash).
    fn rejoin_cache(&self) {
        let cache = Arc::new(FmeCache::with_feas_capacity(self.cfg.feas_capacity));
        if let Some(path) = self.snapshot_path() {
            match load_snapshot(&cache, &path) {
                SnapshotLoad::Loaded { entries, .. } => {
                    self.c
                        .entries_loaded
                        .fetch_add(entries as u64, Ordering::Relaxed);
                    *self.last_reject.lock().unwrap() = None;
                }
                SnapshotLoad::Missing => {
                    self.c.cold_starts.fetch_add(1, Ordering::Relaxed);
                }
                SnapshotLoad::Rejected { reason } => {
                    self.c.cold_starts.fetch_add(1, Ordering::Relaxed);
                    self.c.snapshot_rejects.fetch_add(1, Ordering::Relaxed);
                    *self.last_reject.lock().unwrap() = Some(reason);
                }
            }
        } else {
            self.c.cold_starts.fetch_add(1, Ordering::Relaxed);
        }
        *self.fme.lock().unwrap() = cache;
    }

    fn spawn_worker(self: &Arc<Self>) {
        let me = self.clone();
        let handle = std::thread::Builder::new()
            .name(format!("beoptd-shard-{}", self.id))
            .spawn(move || worker_main(me))
            .expect("spawn shard worker");
        *self.worker.lock().unwrap() = Some(handle);
    }

    /// Admit a job, or report why not (the load-shedding signal).
    pub fn admit(&self, job: Job) -> Result<(), PushError<Job>> {
        let r = self.queue.try_push(job);
        if matches!(r, Err(PushError::Full(_))) {
            self.c.shed.fetch_add(1, Ordering::Relaxed);
        }
        r
    }

    /// Queue depth (for retry-after hints).
    pub fn backlog(&self) -> usize {
        self.queue.len()
    }

    /// Admission capacity.
    pub fn queue_capacity(&self) -> usize {
        self.queue.capacity()
    }

    /// Restart the worker if its thread has died. Returns true when a
    /// restart happened. Called by the supervisor loop.
    pub fn restart_if_dead(self: &Arc<Self>) -> bool {
        let dead = {
            let g = self.worker.lock().unwrap();
            g.as_ref().is_some_and(|h| h.is_finished())
        };
        if !dead {
            return false;
        }
        if let Some(h) = self.worker.lock().unwrap().take() {
            let _ = h.join();
        }
        self.c.restarts.fetch_add(1, Ordering::Relaxed);
        self.rejoin_cache();
        self.spawn_worker();
        true
    }

    /// Close the admission queue (graceful drain).
    pub fn close(&self) {
        self.queue.close();
    }

    /// Wait for the worker to exit (after [`Shard::close`]).
    pub fn join(&self) {
        if let Some(h) = self.worker.lock().unwrap().take() {
            let _ = h.join();
        }
    }

    /// Persist the cache now (explicit `snapshot` op and graceful
    /// shutdown; never fault-injected).
    pub fn snapshot_now(&self) -> std::io::Result<usize> {
        let Some(path) = self.snapshot_path() else {
            return Ok(0);
        };
        let cache = self.fme.lock().unwrap().clone();
        let n = write_snapshot(&cache, &path)?;
        self.c.snapshots_written.fetch_add(1, Ordering::Relaxed);
        Ok(n)
    }

    /// Point-in-time stats document for this shard.
    pub fn stats(&self) -> obs::ShardStats {
        let cache = self.fme.lock().unwrap().clone();
        let fme = cache.stats();
        obs::ShardStats {
            shard: self.id,
            served: self.c.served.load(Ordering::Relaxed),
            failed: self.c.failed.load(Ordering::Relaxed),
            shed: self.c.shed.load(Ordering::Relaxed),
            deadline_miss: self.c.deadline_miss.load(Ordering::Relaxed),
            panics: self.c.panics.load(Ordering::Relaxed),
            restarts: self.c.restarts.load(Ordering::Relaxed),
            warm_hits: self.c.warm_hits.load(Ordering::Relaxed),
            backlog: self.queue.len() as u64,
            queue_cap: self.queue.capacity() as u64,
            snapshots_written: self.c.snapshots_written.load(Ordering::Relaxed),
            entries_loaded: self.c.entries_loaded.load(Ordering::Relaxed),
            cold_starts: self.c.cold_starts.load(Ordering::Relaxed),
            snapshot_rejects: self.c.snapshot_rejects.load(Ordering::Relaxed),
            last_reject: self.last_reject.lock().unwrap().clone(),
            memo_entries: fme.entries as u64,
            memo_evictions: fme.feas_evictions,
        }
    }

    /// Compile one request into its deterministic explain document.
    fn compile(&self, req: &OptimizeRequest) -> Result<(Json, bool), String> {
        let prog = frontend::parse(&req.program).map_err(|e| format!("parse error: {e}"))?;
        let mut bind = Bindings::new(req.nprocs);
        for (name, v) in &req.binds {
            let pos = prog
                .syms
                .iter()
                .position(|s| &s.name == name)
                .ok_or_else(|| format!("unknown symbol '{name}'"))?;
            bind.bind(ir::SymId(pos as u32), *v);
        }
        let baseline = fork_join(&prog, &bind);
        match req.plan {
            PlanKind::ForkJoin => Ok((
                explain_json(&prog, req.nprocs, &baseline, &baseline, &[]),
                false,
            )),
            PlanKind::Optimized => {
                let fme = self.fme.lock().unwrap().clone();
                let before = fme.stats();
                let (plan, decisions, _stats) =
                    optimize_explained_shared(&prog, &bind, OptimizeOptions::default(), &fme);
                let after = fme.stats();
                // Warm = every feasibility query hit an entry that
                // predates this request (no new misses). Within-request
                // hits on entries the same compile just created do not
                // count — a cold compile must read as cold.
                let warm =
                    after.feas_hits > before.feas_hits && after.feas_misses == before.feas_misses;
                Ok((
                    explain_json(&prog, req.nprocs, &plan, &baseline, &decisions),
                    warm,
                ))
            }
        }
    }

    /// Handle one admitted job end-to-end. Panics propagate to the
    /// worker loop's `catch_unwind` (fail-stop for the shard).
    fn handle_job(&self, job: Job, fault: Option<ServiceFault>) {
        match fault {
            Some(ServiceFault::Delay(d)) => std::thread::sleep(d),
            Some(ServiceFault::KillShard) => {
                panic!("chaos: shard {} killed mid-request", self.id)
            }
            // Transport faults do not apply at this hook.
            Some(ServiceFault::DropConnection | ServiceFault::CorruptSnapshot) | None => {}
        }
        let started = Instant::now();
        if started >= job.deadline {
            self.c.deadline_miss.fetch_add(1, Ordering::Relaxed);
            let _ = job.reply.send(Reply::Error(ErrorReply {
                id: job.req.id,
                code: ErrorCode::DeadlineExceeded,
                message: "deadline expired while queued".to_string(),
                retry_after_ms: Some(5),
            }));
            return;
        }
        match self.compile(&job.req) {
            Ok((explain, warm)) => {
                self.c.served.fetch_add(1, Ordering::Relaxed);
                if warm {
                    self.c.warm_hits.fetch_add(1, Ordering::Relaxed);
                }
                let _ = job.reply.send(Reply::Optimized(OptimizeReply {
                    id: job.req.id,
                    shard: self.id,
                    explain,
                    queue_us: started.duration_since(job.accepted).as_micros() as u64,
                    compile_us: started.elapsed().as_micros() as u64,
                    warm_hint: warm,
                }));
                self.after_serve();
            }
            Err(msg) => {
                self.c.failed.fetch_add(1, Ordering::Relaxed);
                let _ = job.reply.send(Reply::Error(ErrorReply {
                    id: job.req.id,
                    code: ErrorCode::BadRequest,
                    message: msg,
                    retry_after_ms: None,
                }));
            }
        }
    }

    /// Snapshot cadence bookkeeping + injected snapshot faults.
    fn after_serve(&self) {
        if self.cfg.snapshot_every == 0 || self.cfg.snapshot_dir.is_none() {
            return;
        }
        let since = self.since_snapshot.fetch_add(1, Ordering::Relaxed) + 1;
        if since < self.cfg.snapshot_every {
            return;
        }
        self.since_snapshot.store(0, Ordering::Relaxed);
        let snap_seq = self.snap_seq.fetch_add(1, Ordering::Relaxed);
        let fault = self
            .cfg
            .chaos
            .as_ref()
            .and_then(|c| c.at_snapshot(self.id, snap_seq));
        let Some(path) = self.snapshot_path() else {
            return;
        };
        match fault {
            Some(ServiceFault::Delay(d)) => std::thread::sleep(d),
            Some(ServiceFault::KillShard) => {
                // Die "mid-write": leave a garbage temp file behind (the
                // atomic protocol's torn-write residue) and crash. The
                // restarted worker must rejoin from the last complete
                // snapshot and the next writer must sweep the residue.
                let tmp = path.with_file_name(format!(
                    "{}.tmp.chaos",
                    path.file_name().and_then(|n| n.to_str()).unwrap_or("fme")
                ));
                if let Some(dir) = path.parent() {
                    let _ = std::fs::create_dir_all(dir);
                }
                let _ = std::fs::write(&tmp, b"torn mid-write by chaos");
                panic!("chaos: shard {} killed mid-snapshot", self.id);
            }
            _ => {}
        }
        if write_snapshot(&self.fme.lock().unwrap().clone(), &path).is_ok() {
            self.c.snapshots_written.fetch_add(1, Ordering::Relaxed);
            if matches!(fault, Some(ServiceFault::CorruptSnapshot)) {
                corrupt_file(&path);
            }
        }
    }
}

/// Flip one byte in the middle of `path` (the injected "disk
/// corruption" fault; the next load must reject and cold-start).
fn corrupt_file(path: &std::path::Path) {
    let Ok(mut bytes) = std::fs::read(path) else {
        return;
    };
    if bytes.is_empty() {
        return;
    }
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x40;
    let _ = std::fs::write(path, bytes);
}

/// The worker loop for one incarnation of a shard's thread: pop,
/// fault-check, handle under `catch_unwind`. A panic is fail-stop —
/// the thread exits and the supervisor restarts the shard.
fn worker_main(shard: Arc<Shard>) {
    loop {
        match shard.queue.pop_timeout(Duration::from_millis(100)) {
            Pop::Item(job) => {
                let seq = shard.req_seq.fetch_add(1, Ordering::Relaxed);
                let fault = shard
                    .cfg
                    .chaos
                    .as_ref()
                    .and_then(|c| c.at_request(shard.id, seq));
                let outcome = catch_unwind(AssertUnwindSafe(|| shard.handle_job(job, fault)));
                if outcome.is_err() {
                    // Fail-stop: count the panic and die. In-flight reply
                    // senders dropped during unwind; queued jobs survive in
                    // the shard-owned queue for the next incarnation.
                    shard.c.panics.fetch_add(1, Ordering::Relaxed);
                    return;
                }
            }
            Pop::TimedOut => {}
            Pop::Closed => {
                // Graceful drain finished: persist and exit.
                let _ = shard.snapshot_now();
                return;
            }
        }
    }
}
