//! Skewed 2-D wavefront relaxation at processor distance 2: row `i`
//! needs row `i - n/2` — two whole ownership blocks up at four
//! processors — so the carried dependence of the row sweep is a fixed
//! multi-hop distance vector, not a neighbor pattern. Barrier-only and
//! neighbor-flag schedules cannot express it; the distance-vector
//! classification turns the loop bottom into a pairwise counter and the
//! sweep into a two-hop pipeline (processor `p` starts as soon as
//! `p - 2` has passed, while `p - 1` is still mid-block).

use crate::{Built, Scale};
use ir::build::*;

/// Build at the given scale.
pub fn build(scale: Scale) -> Built {
    let (nv, tv) = match scale {
        Scale::Test => (16, 2),
        Scale::Small => (64, 4),
        Scale::Full => (256, 8),
    };
    let mut pb = ProgramBuilder::new("wavepipe2d");
    let n = pb.sym("n");
    let tmax = pb.sym("tmax");
    let x = pb.array("X", &[sym(n), sym(n)], dist_block());
    // The reach: half the rows = two ownership blocks at 4 processors.
    let off = nv / 2;

    let i0 = pb.begin_par("i0", con(0), sym(n) - 1);
    let j0 = pb.begin_seq("j0", con(0), sym(n) - 1);
    pb.assign(
        elem(x, [idx(i0), idx(j0)]),
        ival(idx(i0) * 17 + idx(j0)).sin(),
    );
    pb.end();
    pb.end();

    let _t = pb.begin_seq("t", con(0), sym(tmax) - 1);
    // Sweep rows sequentially (the recurrence direction); each row
    // phase belongs to owner(i) and reads a row two blocks away.
    let i = pb.begin_seq("i", con(off), sym(n) - 1);
    let j = pb.begin_par("j", con(1), sym(n) - 2);
    pb.assign(
        elem(x, [idx(i), idx(j)]),
        ex(0.25) * (arr(x, [idx(i) - off, idx(j)]) + ex(3.0) * arr(x, [idx(i), idx(j)])),
    );
    pb.end();
    pb.end();
    pb.end(); // t

    Built {
        prog: pb.finish(),
        values: vec![(n, nv), (tmax, tv)],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn row_sweep_pipelines_with_pairwise_counters() {
        let built = build(Scale::Test);
        let bind = built.bindings(4);
        let st = spmd_opt::optimize(&built.prog, &bind).static_stats();
        assert_eq!(st.regions, 1, "{st:?}");
        assert!(st.pair_syncs >= 1, "{st:?}");
        // The carried distance is 2 — out of neighbor-flag reach, so
        // the pairwise counters are the only non-barrier option.
        assert_eq!(st.neighbor_syncs, 0, "{st:?}");
        assert!(st.barriers <= 2, "{st:?}");
    }
}
