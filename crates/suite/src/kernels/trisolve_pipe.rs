//! LU-style triangular solve (forward substitution) with two reach
//! terms: unknown block `i` consumes results one block *and* two
//! blocks back, so the carried dependence is the distance *set*
//! {+1, +2} — neighbor flags cover only the first hop and a single
//! counter has no unique producer, so barrier-only schedules
//! serialize every step. The pairwise classification keeps both
//! distances and pipelines the substitution down the processor line.

use crate::{Built, Scale};
use ir::build::*;

/// Build at the given scale.
pub fn build(scale: Scale) -> Built {
    let (nv, mv) = match scale {
        Scale::Test => (16, 8),
        Scale::Small => (64, 16),
        Scale::Full => (256, 64),
    };
    let mut pb = ProgramBuilder::new("trisolve_pipe");
    let n = pb.sym("n");
    let m = pb.sym("m");
    let x = pb.array("X", &[sym(n), sym(m)], dist_block());
    // Reaches: one ownership block and two ownership blocks at 4
    // processors (n/4 and n/2 rows).
    let off1 = nv / 4;
    let off2 = nv / 2;

    let i0 = pb.begin_par("i0", con(0), sym(n) - 1);
    let j0 = pb.begin_seq("j0", con(0), sym(m) - 1);
    pb.assign(
        elem(x, [idx(i0), idx(j0)]),
        ival(idx(i0) * 13 + idx(j0) * 7).sin(),
    );
    pb.end();
    pb.end();

    // Forward substitution: row block i is eliminated using the
    // already-solved rows off1 and off2 back; RHS columns in parallel.
    let i = pb.begin_seq("i", con(off2), sym(n) - 1);
    let j = pb.begin_par("j", con(0), sym(m) - 1);
    pb.assign(
        elem(x, [idx(i), idx(j)]),
        arr(x, [idx(i), idx(j)])
            - ex(0.5) * arr(x, [idx(i) - off1, idx(j)])
            - ex(0.25) * arr(x, [idx(i) - off2, idx(j)]),
    );
    pb.end();
    pb.end();

    Built {
        prog: pb.finish(),
        values: vec![(n, nv), (m, mv)],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn substitution_pipelines_with_a_two_distance_set() {
        let built = build(Scale::Test);
        let bind = built.bindings(4);
        let st = spmd_opt::optimize(&built.prog, &bind).static_stats();
        assert_eq!(st.regions, 1, "{st:?}");
        assert!(st.pair_syncs >= 1, "{st:?}");
        assert!(st.barriers <= 2, "{st:?}");
    }
}
