//! Mechanism switches: disabling each replacement degrades the schedule
//! in exactly the expected way while staying sound.

use analysis::Bindings;
use ir::build::*;
use spmd_opt::{optimize, optimize_explained, optimize_with, AnalysisConfig, OptimizeOptions};

fn stencil_and_broadcast() -> (ir::Program, Bindings) {
    // A stencil pair (neighbor) plus a master-produced scalar (counter).
    let mut pb = ProgramBuilder::new("mix");
    let n = pb.sym("n");
    let a = pb.array("A", &[sym(n)], dist_block());
    let b = pb.array("B", &[sym(n)], dist_block());
    let s = pb.scalar("s", 0.0);
    pb.assign(svar(s), ex(2.0));
    let i = pb.begin_par("i", con(0), sym(n) - 1);
    pb.assign(elem(a, [idx(i)]), sca(s) + ival(idx(i)).sin());
    pb.end();
    let j = pb.begin_par("j", con(1), sym(n) - 2);
    pb.assign(
        elem(b, [idx(j)]),
        arr(a, [idx(j) - 1]) + arr(a, [idx(j) + 1]),
    );
    pb.end();
    let k = pb.begin_par("k", con(1), sym(n) - 2);
    pb.assign(elem(a, [idx(k)]), arr(b, [idx(k)]));
    pb.end();
    let prog = pb.finish();
    let bind = Bindings::new(4).set(n, 32);
    (prog, bind)
}

#[test]
fn full_options_match_default_optimize() {
    let (prog, bind) = stencil_and_broadcast();
    let a = optimize(&prog, &bind).static_stats();
    let b = optimize_with(&prog, &bind, OptimizeOptions::default()).static_stats();
    assert_eq!(a, b);
}

/// The analysis configuration (caching / worker threads) tunes speed
/// only: plan and decision log must match the sequential uncached pass
/// exactly, entry for entry.
#[test]
fn analysis_config_never_changes_plan_or_log() {
    let (prog, bind) = stencil_and_broadcast();
    let reference = OptimizeOptions {
        analysis: AnalysisConfig::sequential_uncached(),
        ..Default::default()
    };
    let (ref_plan, ref_log, ref_stats) = optimize_explained(&prog, &bind, reference);
    assert_eq!(ref_stats.pair_hits + ref_stats.pair_misses, 0);
    for threads in [0, 1, 4] {
        let opts = OptimizeOptions {
            analysis: AnalysisConfig {
                cache: true,
                threads,
            },
            ..Default::default()
        };
        let (plan, log, stats) = optimize_explained(&prog, &bind, opts);
        assert_eq!(
            spmd_opt::render_plan(&prog, &plan),
            spmd_opt::render_plan(&prog, &ref_plan),
            "threads={threads}"
        );
        assert_eq!(log.len(), ref_log.len());
        for (a, b) in log.iter().zip(&ref_log) {
            assert_eq!(format!("{a:?}"), format!("{b:?}"), "threads={threads}");
        }
        assert!(
            stats.pair_misses > 0,
            "cached run records memo traffic: {stats:?}"
        );
    }
}

#[test]
fn disabling_neighbor_reverts_those_slots_to_barriers() {
    let (prog, bind) = stencil_and_broadcast();
    let full = optimize(&prog, &bind).static_stats();
    let no_nb = optimize_with(
        &prog,
        &bind,
        OptimizeOptions {
            use_neighbor: false,
            ..Default::default()
        },
    )
    .static_stats();
    assert_eq!(no_nb.neighbor_syncs, 0);
    assert_eq!(
        no_nb.barriers,
        full.barriers + full.neighbor_syncs,
        "full={full:?} no_nb={no_nb:?}"
    );
    // Counters unaffected.
    assert_eq!(no_nb.counter_syncs, full.counter_syncs);
}

#[test]
fn disabling_counters_reverts_those_slots_to_barriers() {
    let (prog, bind) = stencil_and_broadcast();
    let full = optimize(&prog, &bind).static_stats();
    let no_c = optimize_with(
        &prog,
        &bind,
        OptimizeOptions {
            use_counters: false,
            ..Default::default()
        },
    )
    .static_stats();
    assert_eq!(no_c.counter_syncs, 0);
    assert_eq!(no_c.barriers, full.barriers + full.counter_syncs);
}

#[test]
fn disabling_elimination_keeps_every_slot_synchronized() {
    let (prog, bind) = stencil_and_broadcast();
    let none = optimize_with(
        &prog,
        &bind,
        OptimizeOptions {
            eliminate: false,
            use_neighbor: false,
            use_counters: false,
            ..Default::default()
        },
    )
    .static_stats();
    assert_eq!(none.eliminated, 0, "{none:?}");
    assert_eq!(none.neighbor_syncs, 0);
    assert_eq!(none.counter_syncs, 0);
}

#[test]
fn degraded_plans_stay_sound() {
    use interp::{run_sequential, run_virtual, Mem, ScheduleOrder};
    let (prog, bind) = stencil_and_broadcast();
    let oracle = Mem::new(&prog, &bind);
    run_sequential(&prog, &bind, &oracle);
    for opts in [
        OptimizeOptions {
            eliminate: false,
            ..Default::default()
        },
        OptimizeOptions {
            use_neighbor: false,
            ..Default::default()
        },
        OptimizeOptions {
            use_counters: false,
            ..Default::default()
        },
        OptimizeOptions {
            eliminate: false,
            use_neighbor: false,
            use_counters: false,
            ..Default::default()
        },
    ] {
        let plan = optimize_with(&prog, &bind, opts);
        let mem = Mem::new(&prog, &bind);
        run_virtual(&prog, &bind, &plan, &mem, ScheduleOrder::Reverse);
        assert_eq!(mem.max_abs_diff(&oracle), 0.0, "{opts:?}");
    }
}
