//! Recovery policy for retried SPMD regions: retry budget, exponential
//! backoff, and the per-run quarantine ledger.
//!
//! The fault layer ([`fault`](crate::fault)) *detects* a failed region;
//! this module decides what to do next. The executor's recovery loop
//! (in the `interp` crate) consults a [`RetryPolicy`] for how many
//! attempts it may spend and how long to back off between them, and a
//! [`Quarantine`] ledger for the escalation ladder at each faulting
//! canonical sync site:
//!
//! 1. **first fault** at a site — the optimized sync op there is
//!    *demoted* to a full barrier (`spmd_opt::demote_site`), the
//!    conservative fork-join placement the paper's optimizer started
//!    from;
//! 2. **second fault** at the same site — demotion did not help, so the
//!    site is *quarantined*: the site rides out the rest of the run
//!    with its barrier and any injected dropped posts at it are masked
//!    (a deterministic injector would otherwise re-kill every retry);
//! 3. **third fault** at the same site — the fault is not local to the
//!    site (a dropped barrier arrival *aliases*: the shared barrier
//!    back-fills the skipped arrival with the dropper's next one, and
//!    the wedge surfaces at its last barrier site instead), so the
//!    supervisor *isolates* the run: every injected dropped post is
//!    masked, everywhere;
//! 4. faults with no attributable site (worker panics, dispatch
//!    timeouts) are plainly retried against the rolled-back memory.
//!
//! The ladder bounds convergence: a persistent single dropped post
//! implicates at most three distinct sites (the true site, plus the
//! alias target before and after the true site's demotion changes its
//! primitive), and isolation fires as soon as any one of them records
//! a third fault — at worst after 2+2+3 = 7 failed attempts — so the
//! run completes by attempt eight, inside the default budget of nine.
//!
//! Backoff is deterministic (`base * 2^(attempt-1)`, capped), so a
//! recovery report can print the exact timeline without wall-clock
//! noise.

use std::collections::BTreeMap;
use std::time::Duration;

/// Bounds on the recovery loop.
#[derive(Clone, Debug)]
pub struct RetryPolicy {
    /// Total executions allowed, counting the first (a budget of 1
    /// means no retries).
    pub max_attempts: u32,
    /// Backoff before the first retry.
    pub backoff_base: Duration,
    /// Upper bound on any single backoff interval.
    pub backoff_cap: Duration,
    /// Sticky-fault classification threshold: when the same processor
    /// is the primary faulter across this many *consecutive* failed
    /// attempts, the supervisor classifies it as a permanent processor
    /// loss instead of a flaky sync site (`0` disables classification —
    /// the pid ledger is still kept for reports).
    pub sticky_pid_k: u32,
    /// Probation threshold: a demoted/quarantined site that stays clean
    /// across this many consecutive failed attempts (faults landing
    /// elsewhere) is forgiven — quarantine lifted, its optimized sync
    /// op restored (`0` disables probation; sites stay demoted for the
    /// life of the run).
    pub probation_k: u32,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            // Enough for the worst three-site ladder interleaving of a
            // single persistent drop (see module docs: 7 failed
            // attempts, clean on the 8th) with one attempt spare.
            max_attempts: 9,
            backoff_base: Duration::from_millis(5),
            backoff_cap: Duration::from_millis(200),
            sticky_pid_k: 0,
            probation_k: 0,
        }
    }
}

impl RetryPolicy {
    /// The planned backoff before retry number `retry` (1-based: the
    /// sleep after the first failed attempt is `backoff_before(1)`).
    /// Deterministic exponential: `base * 2^(retry-1)`, capped.
    pub fn backoff_before(&self, retry: u32) -> Duration {
        if retry == 0 {
            return Duration::ZERO;
        }
        let shift = (retry - 1).min(16);
        let d = self
            .backoff_base
            .saturating_mul(1u32.checked_shl(shift).unwrap_or(u32::MAX));
        d.min(self.backoff_cap)
    }
}

/// What the escalation ladder prescribes for a newly recorded fault.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FaultDisposition {
    /// First fault at the site: demote its sync op to a full barrier.
    Demote,
    /// Second fault at the site: quarantine it (mask injected drops
    /// there for the rest of the run).
    Quarantine,
    /// Third fault at the site: quarantine was not enough — the fault
    /// originates elsewhere (barrier aliasing) — so mask every injected
    /// drop for the rest of the run.
    Isolate,
    /// The ladder is exhausted at this site (or the fault has no
    /// site): plain retry.
    Retry,
}

/// Per-run ledger of faulting canonical sync sites *and* processors:
/// how often each site faulted, which sites are quarantined, each
/// site's clean streak (for probation), and the per-pid fault history
/// the sticky-fault classifier reads.
#[derive(Clone, Debug, Default)]
pub struct Quarantine {
    faults: BTreeMap<usize, u32>,
    quarantined: Vec<usize>,
    /// Consecutive failed attempts in which a known-faulty site was
    /// *not* implicated (reset on every new fault at the site).
    clean_streaks: BTreeMap<usize, u32>,
    /// Total faults attributed to each processor.
    pid_faults: BTreeMap<usize, u32>,
    /// The pid implicated by the most recent attempts and for how many
    /// consecutive attempts it has been the primary suspect.
    streak_pid: Option<usize>,
    streak: u32,
}

impl Quarantine {
    /// Empty ledger.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one fault attributed to `site` and return the ladder's
    /// disposition for it. Resets the site's probation streak.
    pub fn record_fault(&mut self, site: usize) -> FaultDisposition {
        let n = self.faults.entry(site).or_insert(0);
        *n += 1;
        self.clean_streaks.insert(site, 0);
        match *n {
            1 => FaultDisposition::Demote,
            2 => {
                self.quarantined.push(site);
                FaultDisposition::Quarantine
            }
            3 => FaultDisposition::Isolate,
            _ => FaultDisposition::Retry,
        }
    }

    /// Record one *clean episode* for `site` — a failed attempt in
    /// which a previously-faulty site was not implicated. Returns true
    /// when the site has now been clean `probation_k` consecutive
    /// episodes (probation served): the caller should lift quarantine
    /// and restore the site's original sync op. `probation_k == 0`
    /// disables probation. Serving probation resets the site's fault
    /// ladder so a relapse starts from a fresh demotion.
    pub fn record_clean(&mut self, site: usize, probation_k: u32) -> bool {
        if probation_k == 0 || !self.faults.contains_key(&site) {
            return false;
        }
        let n = self.clean_streaks.entry(site).or_insert(0);
        *n += 1;
        if *n >= probation_k {
            self.faults.remove(&site);
            self.clean_streaks.remove(&site);
            self.quarantined.retain(|&s| s != site);
            true
        } else {
            false
        }
    }

    /// Record the suspect processor of one failed attempt (`None` when
    /// the attempt had no attributable pid) and return the length of
    /// the suspect's current consecutive-attempt streak (0 when no
    /// suspect). This feeds the sticky-fault classifier: a streak
    /// reaching [`RetryPolicy::sticky_pid_k`] means the pid is a
    /// permanent processor loss, not a flaky site.
    pub fn record_attempt_suspect(&mut self, pid: Option<usize>) -> u32 {
        match pid {
            Some(p) => {
                *self.pid_faults.entry(p).or_insert(0) += 1;
                if self.streak_pid == Some(p) {
                    self.streak += 1;
                } else {
                    self.streak_pid = Some(p);
                    self.streak = 1;
                }
                self.streak
            }
            None => {
                self.streak_pid = None;
                self.streak = 0;
                0
            }
        }
    }

    /// Sites placed under quarantine, in the order they escalated
    /// (sites forgiven by probation no longer appear).
    pub fn quarantined(&self) -> &[usize] {
        &self.quarantined
    }

    /// True when `site` is quarantined.
    pub fn is_quarantined(&self, site: usize) -> bool {
        self.quarantined.contains(&site)
    }

    /// Recorded fault count per site (site → faults), sorted by site.
    pub fn fault_counts(&self) -> Vec<(usize, u32)> {
        self.faults.iter().map(|(&s, &n)| (s, n)).collect()
    }

    /// Recorded fault count per processor (pid → faults), sorted by
    /// pid.
    pub fn pid_fault_counts(&self) -> Vec<(usize, u32)> {
        self.pid_faults.iter().map(|(&p, &n)| (p, n)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_is_exponential_and_capped() {
        let p = RetryPolicy {
            max_attempts: 10,
            backoff_base: Duration::from_millis(5),
            backoff_cap: Duration::from_millis(40),
            ..RetryPolicy::default()
        };
        assert_eq!(p.backoff_before(0), Duration::ZERO);
        assert_eq!(p.backoff_before(1), Duration::from_millis(5));
        assert_eq!(p.backoff_before(2), Duration::from_millis(10));
        assert_eq!(p.backoff_before(3), Duration::from_millis(20));
        assert_eq!(p.backoff_before(4), Duration::from_millis(40));
        // Capped from here on.
        assert_eq!(p.backoff_before(9), Duration::from_millis(40));
        assert_eq!(p.backoff_before(30), Duration::from_millis(40));
    }

    #[test]
    fn ladder_escalates_demote_quarantine_isolate_then_retry() {
        let mut q = Quarantine::new();
        assert_eq!(q.record_fault(3), FaultDisposition::Demote);
        assert!(!q.is_quarantined(3));
        assert_eq!(q.record_fault(3), FaultDisposition::Quarantine);
        assert!(q.is_quarantined(3));
        assert_eq!(q.record_fault(3), FaultDisposition::Isolate);
        assert_eq!(q.record_fault(3), FaultDisposition::Retry);
        // Independent ladders per site.
        assert_eq!(q.record_fault(7), FaultDisposition::Demote);
        assert_eq!(q.quarantined(), &[3]);
        assert_eq!(q.fault_counts(), vec![(3, 4), (7, 1)]);
    }

    #[test]
    fn probation_lifts_quarantine_after_k_clean_episodes() {
        let mut q = Quarantine::new();
        q.record_fault(3);
        q.record_fault(3);
        assert!(q.is_quarantined(3));
        // Two clean episodes at K=3: not yet.
        assert!(!q.record_clean(3, 3));
        assert!(!q.record_clean(3, 3));
        assert!(q.is_quarantined(3));
        // Third consecutive clean episode serves the probation.
        assert!(q.record_clean(3, 3));
        assert!(!q.is_quarantined(3));
        // The ladder is forgiven too: a relapse demotes afresh.
        assert!(q.fault_counts().is_empty());
        assert_eq!(q.record_fault(3), FaultDisposition::Demote);
    }

    #[test]
    fn a_fault_resets_the_probation_streak() {
        let mut q = Quarantine::new();
        q.record_fault(5);
        assert!(!q.record_clean(5, 2));
        q.record_fault(5); // relapse: streak back to zero
        assert!(!q.record_clean(5, 2));
        assert!(q.record_clean(5, 2));
    }

    #[test]
    fn probation_is_inert_when_disabled_or_site_unknown() {
        let mut q = Quarantine::new();
        q.record_fault(1);
        assert!(!q.record_clean(1, 0), "K=0 disables probation");
        assert!(!q.record_clean(9, 4), "never-faulty site has no ledger");
    }

    #[test]
    fn suspect_streak_counts_consecutive_attempts_only() {
        let mut q = Quarantine::new();
        assert_eq!(q.record_attempt_suspect(Some(2)), 1);
        assert_eq!(q.record_attempt_suspect(Some(2)), 2);
        // A different suspect restarts the streak.
        assert_eq!(q.record_attempt_suspect(Some(0)), 1);
        // An unattributable attempt breaks any streak.
        assert_eq!(q.record_attempt_suspect(None), 0);
        assert_eq!(q.record_attempt_suspect(Some(0)), 1);
        // Totals survive streak resets.
        assert_eq!(q.pid_fault_counts(), vec![(0, 2), (2, 2)]);
    }
}
