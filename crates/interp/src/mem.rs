//! Shared program memory: arrays and scalars as relaxed atomic `f64`
//! cells.

use crate::trace::{AccessKind, Target, TraceBuffer};
use analysis::Bindings;
use ir::{ArrayId, Program, ScalarId};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// One array's storage (row-major).
pub struct ArrayStore {
    /// Extent of each dimension.
    pub extents: Vec<i64>,
    /// Row-major strides.
    pub strides: Vec<i64>,
    data: Vec<AtomicU64>,
}

impl ArrayStore {
    fn new(extents: Vec<i64>) -> Self {
        let mut strides = vec![1i64; extents.len()];
        for k in (0..extents.len().saturating_sub(1)).rev() {
            strides[k] = strides[k + 1] * extents[k + 1].max(0);
        }
        let len: i64 = extents.iter().product::<i64>().max(0);
        let data = (0..len).map(|_| AtomicU64::new(0)).collect();
        ArrayStore {
            extents,
            strides,
            data,
        }
    }

    /// Row-major flat offset of element `subs` (panics when out of
    /// bounds, like `get`/`set`).
    #[inline]
    pub fn flat_offset(&self, subs: &[i64]) -> usize {
        self.offset(subs)
    }

    #[inline]
    fn offset(&self, subs: &[i64]) -> usize {
        debug_assert_eq!(subs.len(), self.extents.len());
        let mut off = 0i64;
        for (k, &s) in subs.iter().enumerate() {
            assert!(
                s >= 0 && s < self.extents[k],
                "subscript {s} out of bounds 0..{} in dim {k}",
                self.extents[k]
            );
            off += s * self.strides[k];
        }
        off as usize
    }

    /// Read element `subs`.
    #[inline]
    pub fn get(&self, subs: &[i64]) -> f64 {
        f64::from_bits(self.data[self.offset(subs)].load(Ordering::Relaxed))
    }

    /// Write element `subs`.
    #[inline]
    pub fn set(&self, subs: &[i64], v: f64) {
        self.data[self.offset(subs)].store(v.to_bits(), Ordering::Relaxed);
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the array has no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Linear read (for checksums).
    pub fn get_linear(&self, k: usize) -> f64 {
        f64::from_bits(self.data[k].load(Ordering::Relaxed))
    }

    /// Linear write (checkpoint rollback restores pre-images by flat
    /// offset, bit-exact).
    pub fn set_linear(&self, k: usize, v: f64) {
        self.data[k].store(v.to_bits(), Ordering::Relaxed);
    }
}

enum Slot {
    /// One shared store (distributed / replicated arrays).
    Shared(ArrayStore),
    /// One store per processor (privatizable work arrays).
    Private(Vec<ArrayStore>),
}

/// Program memory: one [`ArrayStore`] per array (or one per processor
/// for privatizable arrays) plus atomic scalars.
pub struct Mem {
    slots: Vec<Slot>,
    scalars: Vec<AtomicU64>,
    tracer: Option<Arc<TraceBuffer>>,
}

impl Mem {
    /// Allocate memory for a program under concrete bindings (array
    /// extents must evaluate). Scalars take their declared initial
    /// values; array elements start at zero.
    pub fn new(prog: &Program, bind: &Bindings) -> Self {
        let slots = prog
            .arrays
            .iter()
            .map(|a| {
                let extents: Vec<i64> = a
                    .extents
                    .iter()
                    .map(|e| {
                        bind.eval_const(e)
                            .unwrap_or_else(|| panic!("unbound extent for array {}", a.name))
                    })
                    .collect();
                if a.privatizable {
                    Slot::Private(
                        (0..bind.nprocs)
                            .map(|_| ArrayStore::new(extents.clone()))
                            .collect(),
                    )
                } else {
                    Slot::Shared(ArrayStore::new(extents))
                }
            })
            .collect();
        let scalars = prog
            .scalars
            .iter()
            .map(|s| AtomicU64::new(s.init.to_bits()))
            .collect();
        Mem {
            slots,
            scalars,
            tracer: None,
        }
    }

    /// Attach an access tracer: the evaluator records every shared
    /// array-element and non-privatizable scalar access into it.
    pub fn with_tracer(mut self, t: Arc<TraceBuffer>) -> Self {
        self.tracer = Some(t);
        self
    }

    /// Record one access if a tracer is attached (called by the
    /// evaluator at every shared memory touch).
    #[inline]
    pub(crate) fn trace(&self, pid: usize, target: Target, kind: AccessKind) {
        if let Some(t) = &self.tracer {
            t.record(pid, target, kind);
        }
    }

    /// The storage of one array as seen by processor 0 (tests / oracle).
    #[inline]
    pub fn array(&self, a: ArrayId) -> &ArrayStore {
        self.array_view(a, 0)
    }

    /// The storage of one array as seen by processor `pid` (private
    /// arrays route to the processor's own copy).
    #[inline]
    pub fn array_view(&self, a: ArrayId, pid: usize) -> &ArrayStore {
        match &self.slots[a.0 as usize] {
            Slot::Shared(st) => st,
            Slot::Private(copies) => &copies[pid],
        }
    }

    /// True for privatizable (per-processor) arrays.
    #[inline]
    pub fn is_private(&self, a: ArrayId) -> bool {
        matches!(self.slots[a.0 as usize], Slot::Private(_))
    }

    /// Number of arrays.
    pub fn num_arrays(&self) -> usize {
        self.slots.len()
    }

    /// Read a scalar.
    #[inline]
    pub fn get_scalar(&self, s: ScalarId) -> f64 {
        f64::from_bits(self.scalars[s.0 as usize].load(Ordering::Relaxed))
    }

    /// Write a scalar.
    #[inline]
    pub fn set_scalar(&self, s: ScalarId, v: f64) {
        self.scalars[s.0 as usize].store(v.to_bits(), Ordering::Relaxed);
    }

    /// Atomically apply a reduction to a scalar (used when flushing
    /// per-processor partials).
    pub fn reduce_scalar(&self, s: ScalarId, op: ir::RedOp, v: f64) {
        let cell = &self.scalars[s.0 as usize];
        let mut cur = cell.load(Ordering::Relaxed);
        loop {
            let new = op.apply(f64::from_bits(cur), v).to_bits();
            match cell.compare_exchange_weak(cur, new, Ordering::AcqRel, Ordering::Relaxed) {
                Ok(_) => return,
                Err(c) => cur = c,
            }
        }
    }

    /// Fill an array with a function of its indices (test setup; private
    /// arrays have every copy filled identically).
    pub fn fill(&self, a: ArrayId, f: impl Fn(&[i64]) -> f64) {
        let stores: Vec<&ArrayStore> = match &self.slots[a.0 as usize] {
            Slot::Shared(st) => vec![st],
            Slot::Private(copies) => copies.iter().collect(),
        };
        for st in stores {
            let rank = st.extents.len();
            let mut subs = vec![0i64; rank];
            if st.extents.iter().any(|&e| e <= 0) {
                continue;
            }
            'odo: loop {
                st.set(&subs, f(&subs));
                let mut k = rank;
                loop {
                    if k == 0 {
                        break 'odo;
                    }
                    k -= 1;
                    subs[k] += 1;
                    if subs[k] < st.extents[k] {
                        break;
                    }
                    subs[k] = 0;
                }
            }
        }
    }

    /// A position-weighted checksum over all *shared* arrays and all
    /// scalars (private arrays are scratch storage whose final contents
    /// are unspecified — the paper's finalization concern applies only
    /// when they are live-out, which the suite avoids).
    pub fn checksum(&self) -> f64 {
        let mut acc = 0.0f64;
        for slot in &self.slots {
            let Slot::Shared(st) = slot else { continue };
            for k in 0..st.len() {
                acc += st.get_linear(k) * (1.0 + (k % 97) as f64 * 1e-3);
            }
        }
        for k in 0..self.scalars.len() {
            acc +=
                f64::from_bits(self.scalars[k].load(Ordering::Relaxed)) * (1.0 + k as f64 * 1e-2);
        }
        acc
    }

    /// Maximum absolute difference of all *shared* cells between two
    /// memories of identical shape (private scratch is excluded).
    pub fn max_abs_diff(&self, other: &Mem) -> f64 {
        let mut m: f64 = 0.0;
        for (sa, sb) in self.slots.iter().zip(&other.slots) {
            let (Slot::Shared(a), Slot::Shared(b)) = (sa, sb) else {
                continue;
            };
            assert_eq!(a.len(), b.len(), "memory shapes differ");
            for k in 0..a.len() {
                m = m.max((a.get_linear(k) - b.get_linear(k)).abs());
            }
        }
        for (a, b) in self.scalars.iter().zip(&other.scalars) {
            m = m.max(
                (f64::from_bits(a.load(Ordering::Relaxed))
                    - f64::from_bits(b.load(Ordering::Relaxed)))
                .abs(),
            );
        }
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ir::build::*;

    fn mem1d(n: i64) -> (ir::Program, Mem, ArrayId) {
        let mut pb = ProgramBuilder::new("m");
        let s = pb.sym("n");
        let a = pb.array("A", &[sym(s)], dist_block());
        let prog = pb.finish();
        let bind = Bindings::new(2).set(s, n);
        let mem = Mem::new(&prog, &bind);
        (prog, mem, a)
    }

    #[test]
    fn get_set_roundtrip() {
        let (_, mem, a) = mem1d(10);
        mem.array(a).set(&[3], 1.5);
        assert_eq!(mem.array(a).get(&[3]), 1.5);
        assert_eq!(mem.array(a).get(&[4]), 0.0);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn out_of_bounds_panics() {
        let (_, mem, a) = mem1d(10);
        mem.array(a).get(&[10]);
    }

    #[test]
    fn strides_are_row_major() {
        let mut pb = ProgramBuilder::new("m2");
        let a = pb.array("A", &[con(3), con(4)], dist_block());
        let prog = pb.finish();
        let mem = Mem::new(&prog, &Bindings::new(2));
        mem.array(a).set(&[1, 2], 7.0);
        assert_eq!(mem.array(a).get_linear(6), 7.0);
    }

    #[test]
    fn fill_and_checksum_depend_on_position() {
        let (_, mem, a) = mem1d(8);
        mem.fill(a, |s| s[0] as f64);
        let c1 = mem.checksum();
        // Swap two values; plain sum would be identical.
        mem.array(a).set(&[0], 7.0);
        mem.array(a).set(&[7], 0.0);
        assert_ne!(c1, mem.checksum());
    }

    #[test]
    fn reduce_scalar_applies_op() {
        let mut pb = ProgramBuilder::new("r");
        let s = pb.scalar("s", 10.0);
        let prog = pb.finish();
        let mem = Mem::new(&prog, &Bindings::new(2));
        mem.reduce_scalar(s, ir::RedOp::Add, 5.0);
        assert_eq!(mem.get_scalar(s), 15.0);
        mem.reduce_scalar(s, ir::RedOp::Max, 100.0);
        assert_eq!(mem.get_scalar(s), 100.0);
    }
}
