//! 1-D red-black Gauss-Seidel relaxation.
//!
//! The two color half-sweeps are expressed with doubled indices
//! (`x(2·ii+1)` / `x(2·ii+2)`) so both loops are genuinely parallel and
//! the subscripts stay affine. Reads reach ±1 element, so the red→black
//! barrier and the carried barrier both become neighbor flags.

use crate::{Built, Scale};
use ir::build::*;

/// Build at the given scale. The array length is `2·half + 2`.
pub fn build(scale: Scale) -> Built {
    let (half_v, tv) = match scale {
        Scale::Test => (8, 3),
        Scale::Small => (256, 12),
        Scale::Full => (1 << 16, 50),
    };
    let mut pb = ProgramBuilder::new("redblack");
    let half = pb.sym("half");
    let tmax = pb.sym("tmax");
    // extent 2*half + 2
    let x = pb.array("X", &[sym(half) * 2 + 2], dist_block());
    let f = pb.array("F", &[sym(half) * 2 + 2], dist_block());

    let i0 = pb.begin_par("i0", con(0), sym(half) * 2 + 1);
    pb.assign(elem(x, [idx(i0)]), ival(idx(i0) * 13).cos());
    pb.assign(elem(f, [idx(i0)]), ival(idx(i0)).sin() * ex(0.1));
    pb.end();

    let _t = pb.begin_seq("t", con(0), sym(tmax) - 1);
    // Red points: odd indices 1, 3, …, 2·half-1.
    let r = pb.begin_par("r", con(0), sym(half) - 1);
    pb.assign(
        elem(x, [idx(r) * 2 + 1]),
        ex(0.5) * (arr(x, [idx(r) * 2]) + arr(x, [idx(r) * 2 + 2])) + arr(f, [idx(r) * 2 + 1]),
    );
    pb.end();
    // Black points: even indices 2, 4, …, 2·half.
    let bl = pb.begin_par("b", con(0), sym(half) - 1);
    pb.assign(
        elem(x, [idx(bl) * 2 + 2]),
        ex(0.5) * (arr(x, [idx(bl) * 2 + 1]) + arr(x, [idx(bl) * 2 + 3]))
            + arr(f, [idx(bl) * 2 + 2]),
    );
    pb.end();
    pb.end(); // t

    Built {
        prog: pb.finish(),
        values: vec![(half, half_v), (tmax, tv)],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn barriers_become_neighbor_flags() {
        let built = build(Scale::Test);
        let bind = built.bindings(4);
        let st = spmd_opt::optimize(&built.prog, &bind).static_stats();
        assert_eq!(st.regions, 1);
        assert_eq!(st.barriers, 1, "{st:?}");
        assert!(st.neighbor_syncs >= 2, "{st:?}");
    }
}
