//! Shallow-water model time step (stands in for RiCEPS `shallow` /
//! SPEC `swm256` — one of the programs the paper's related work also
//! reports dramatic reductions for).
//!
//! Per step: three flux/height phases with +1 stencil reads, three
//! update phases with -1 stencil reads, and three copy-back phases — a
//! long chain of parallel loops over block-distributed rows where every
//! inter-phase barrier is aligned-or-neighbor.

use crate::{Built, Scale};
use ir::build::*;

/// Build at the given scale.
pub fn build(scale: Scale) -> Built {
    let (nv, tv) = match scale {
        Scale::Test => (10, 2),
        Scale::Small => (48, 8),
        Scale::Full => (384, 24),
    };
    let mut pb = ProgramBuilder::new("shallow");
    let n = pb.sym("n");
    let tmax = pb.sym("tmax");
    let u = pb.array("U", &[sym(n), sym(n)], dist_block());
    let v = pb.array("V", &[sym(n), sym(n)], dist_block());
    let p = pb.array("P", &[sym(n), sym(n)], dist_block());
    let cu = pb.array("CU", &[sym(n), sym(n)], dist_block());
    let cv = pb.array("CV", &[sym(n), sym(n)], dist_block());
    let h = pb.array("H", &[sym(n), sym(n)], dist_block());
    let unew = pb.array("UNEW", &[sym(n), sym(n)], dist_block());
    let vnew = pb.array("VNEW", &[sym(n), sym(n)], dist_block());
    let pnew = pb.array("PNEW", &[sym(n), sym(n)], dist_block());

    // Init.
    let i0 = pb.begin_par("i0", con(0), sym(n) - 1);
    let j0 = pb.begin_seq("j0", con(0), sym(n) - 1);
    pb.assign(
        elem(u, [idx(i0), idx(j0)]),
        ival(idx(i0) + idx(j0) * 2).sin(),
    );
    pb.assign(
        elem(v, [idx(i0), idx(j0)]),
        ival(idx(i0) * 2 - idx(j0)).cos(),
    );
    pb.assign(
        elem(p, [idx(i0), idx(j0)]),
        ex(50.0) + ival(idx(i0)).sin() * ival(idx(j0)).cos(),
    );
    pb.end();
    pb.end();

    let _t = pb.begin_seq("t", con(0), sym(tmax) - 1);

    // Phase 1: mass fluxes and height (reads at +1).
    let i1 = pb.begin_par("i1", con(0), sym(n) - 2);
    let j1 = pb.begin_seq("j1", con(0), sym(n) - 2);
    pb.assign(
        elem(cu, [idx(i1), idx(j1)]),
        ex(0.5)
            * (arr(p, [idx(i1) + 1, idx(j1)]) + arr(p, [idx(i1), idx(j1)]))
            * arr(u, [idx(i1), idx(j1)]),
    );
    pb.assign(
        elem(cv, [idx(i1), idx(j1)]),
        ex(0.5)
            * (arr(p, [idx(i1), idx(j1) + 1]) + arr(p, [idx(i1), idx(j1)]))
            * arr(v, [idx(i1), idx(j1)]),
    );
    pb.assign(
        elem(h, [idx(i1), idx(j1)]),
        arr(p, [idx(i1), idx(j1)])
            + ex(0.25)
                * (arr(u, [idx(i1), idx(j1)]) * arr(u, [idx(i1), idx(j1)])
                    + arr(v, [idx(i1), idx(j1)]) * arr(v, [idx(i1), idx(j1)])),
    );
    pb.end();
    pb.end();

    // Phase 2: updates (reads at -1).
    let i2 = pb.begin_par("i2", con(1), sym(n) - 2);
    let j2 = pb.begin_seq("j2", con(1), sym(n) - 2);
    pb.assign(
        elem(unew, [idx(i2), idx(j2)]),
        arr(u, [idx(i2), idx(j2)])
            + ex(0.1) * (arr(h, [idx(i2) - 1, idx(j2)]) - arr(h, [idx(i2), idx(j2)])),
    );
    pb.assign(
        elem(vnew, [idx(i2), idx(j2)]),
        arr(v, [idx(i2), idx(j2)])
            + ex(0.1) * (arr(h, [idx(i2), idx(j2) - 1]) - arr(h, [idx(i2), idx(j2)])),
    );
    pb.assign(
        elem(pnew, [idx(i2), idx(j2)]),
        arr(p, [idx(i2), idx(j2)])
            - ex(0.1)
                * (arr(cu, [idx(i2), idx(j2)]) - arr(cu, [idx(i2) - 1, idx(j2)])
                    + arr(cv, [idx(i2), idx(j2)])
                    - arr(cv, [idx(i2), idx(j2) - 1])),
    );
    pb.end();
    pb.end();

    // Phase 3: copy back.
    let i3 = pb.begin_par("i3", con(1), sym(n) - 2);
    let j3 = pb.begin_seq("j3", con(1), sym(n) - 2);
    pb.assign(elem(u, [idx(i3), idx(j3)]), arr(unew, [idx(i3), idx(j3)]));
    pb.assign(elem(v, [idx(i3), idx(j3)]), arr(vnew, [idx(i3), idx(j3)]));
    pb.assign(elem(p, [idx(i3), idx(j3)]), arr(pnew, [idx(i3), idx(j3)]));
    pb.end();
    pb.end();

    pb.end(); // t

    Built {
        prog: pb.finish(),
        values: vec![(n, nv), (tmax, tv)],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn whole_time_step_becomes_one_region_with_neighbor_sync() {
        let built = build(Scale::Test);
        let bind = built.bindings(4);
        let st = spmd_opt::optimize(&built.prog, &bind).static_stats();
        assert_eq!(st.regions, 1, "{st:?}");
        assert_eq!(st.barriers, 1, "{st:?}");
        assert!(st.neighbor_syncs >= 2, "{st:?}");
        // Baseline: 3 barriers per step + init.
        let fj = spmd_opt::fork_join(&built.prog, &bind).static_stats();
        assert_eq!(fj.barriers, 4);
    }
}
