//! Computation partitions derived from data decompositions.
//!
//! The paper assumes the global decomposition pass (Anderson-Lam) has
//! already distributed arrays; the computation partition follows by the
//! *owner-computes* rule: a processor executes the iterations that write
//! its local data. We attach one partition to every outermost parallel
//! loop (SUIF converts such loops into parallel procedures, so the loop
//! is the unit of distribution) and derive per-statement partitions from
//! the enclosing loop — or `Master`/`Replicated` for serial statements
//! between loops.

use crate::bindings::Bindings;
use ir::{Affine, ArrayId, DimDist, LhsRef, LoopId, LoopKind, Node, NodeId, Program, StmtPath};

/// How the iterations of one parallel loop map onto processors.
#[derive(Clone, Debug, PartialEq)]
pub enum LoopPartition {
    /// Owner-computes for a block-distributed array: processor `p`
    /// executes iteration `i` iff `p·block <= sub(i) < (p+1)·block`.
    BlockOwner {
        /// The array whose decomposition drives the partition.
        array: ArrayId,
        /// Block size `ceil(extent / P)`.
        block: i64,
        /// Subscript expression of the distributed dimension.
        sub: Affine,
    },
    /// Owner-computes for a cyclically distributed array: processor
    /// `p = sub(i) mod P` executes iteration `i`.
    CyclicOwner {
        /// The array whose decomposition drives the partition.
        array: ArrayId,
        /// Subscript expression of the distributed dimension.
        sub: Affine,
    },
    /// Owner-computes for a block-cyclically distributed array:
    /// processor `p = (sub(i) / b) mod P` executes iteration `i`.
    BlockCyclicOwner {
        /// The array whose decomposition drives the partition.
        array: ArrayId,
        /// Dealt block size `b`.
        block: i64,
        /// Subscript expression of the distributed dimension.
        sub: Affine,
    },
    /// Block partition of the iteration space itself (the SUIF default
    /// when no decomposition constrains the loop): iteration `i` runs on
    /// `p` iff `p·block <= i - lo < (p+1)·block` with
    /// `block = ceil((hi-lo+1)/P)`.
    BlockIndex {
        /// Concrete lower bound of the loop at analysis time.
        lo: i64,
        /// Concrete upper bound.
        hi: i64,
        /// Block size.
        block: i64,
    },
    /// Owner-computes for a block-distributed array whose extent is
    /// still symbolic: the block size is unknown at analysis time, but
    /// the owner *function* is still `floor(sub / ceil(extent/P))`, so
    /// structural reasoning (equal extents + bounded subscript
    /// differences) can classify communication symbolically. Execution
    /// falls back to the master processor.
    SymbolicBlockOwner {
        /// The array whose decomposition drives the partition.
        array: ArrayId,
        /// Symbolic extent of the distributed dimension.
        extent: Affine,
        /// Subscript expression of the distributed dimension.
        sub: Affine,
    },
    /// The partition could not be determined (unbound symbolics); all
    /// communication tests involving it degrade to the conservative
    /// answer.
    Unknown,
}

/// The partition of one *statement* (the loop partition where there is an
/// enclosing parallel loop, `Master`/`Replicated` otherwise).
#[derive(Clone, Debug, PartialEq)]
pub enum StmtPartition {
    /// Statement is inside the given outermost parallel loop, which is
    /// partitioned as described; the `LoopId` is that loop's index.
    Distributed(LoopId, LoopPartition),
    /// Serial statement executed only by the master processor.
    Master,
    /// Privatizable computation replicated on every processor.
    Replicated,
}

/// The block size `ceil(n / p)` used by block decompositions.
pub fn block_size(extent: i64, nprocs: i64) -> i64 {
    assert!(extent >= 0 && nprocs >= 1);
    (extent + nprocs - 1) / nprocs
}

/// True if every assignment in the loop targets privatizable storage
/// (arrays or scalars): such a loop is a *replicated computation* —
/// every processor executes all iterations into its own copies
/// (paper §2.3).
pub fn loop_is_replicated(prog: &Program, loop_node: NodeId) -> bool {
    let mut all_private = true;
    let mut any = false;
    prog.walk(loop_node, &mut |id, _| {
        if let Node::Assign(a) = prog.node(id) {
            any = true;
            match &a.lhs {
                LhsRef::Elem(arr, _) => {
                    if !prog.array(*arr).privatizable {
                        all_private = false;
                    }
                }
                LhsRef::Scalar(s) => {
                    if !prog.scalar(*s).privatizable {
                        all_private = false;
                    }
                }
            }
        }
    });
    any && all_private
}

/// Derive the partition of a parallel loop.
///
/// Strategy (owner-computes, after [18]): scan the loop body for the
/// first assignment to a distributed array; the written element's
/// distributed-dimension subscript determines the owner function — even
/// when it does not mention the parallel index (e.g. a `DOALL j` writing
/// `X(i,j)` with `X` distributed by rows runs entirely on `owner(i)`,
/// which is what enables cross-iteration pipelining). When no write to a
/// distributed array exists (reductions, replicated arrays) the
/// iteration space itself is block-partitioned.
pub fn loop_partition(prog: &Program, bind: &Bindings, loop_node: NodeId) -> LoopPartition {
    let lp = prog.expect_loop(loop_node);
    debug_assert_eq!(lp.kind, LoopKind::Par);
    let mut found: Option<LoopPartition> = None;
    prog.walk(loop_node, &mut |id, _| {
        if found.is_some() {
            return;
        }
        if let Node::Assign(a) = prog.node(id) {
            if let LhsRef::Elem(arr, subs) = &a.lhs {
                let decl = prog.array(*arr);
                if let Some((d, kind)) = decl.dist.distributed_dim() {
                    let sub = &subs[d];
                    {
                        found = Some(match kind {
                            DimDist::Block => match bind.eval_const(&decl.extents[d]) {
                                Some(extent) => LoopPartition::BlockOwner {
                                    array: *arr,
                                    block: block_size(extent, bind.nprocs),
                                    sub: sub.clone(),
                                },
                                None => LoopPartition::SymbolicBlockOwner {
                                    array: *arr,
                                    extent: decl.extents[d].clone(),
                                    sub: sub.clone(),
                                },
                            },
                            DimDist::Cyclic => LoopPartition::CyclicOwner {
                                array: *arr,
                                sub: sub.clone(),
                            },
                            DimDist::BlockCyclic(b) => LoopPartition::BlockCyclicOwner {
                                array: *arr,
                                block: b,
                                sub: sub.clone(),
                            },
                            DimDist::Replicated => unreachable!(),
                        });
                    }
                }
            }
        }
    });
    if let Some(p) = found {
        return p;
    }
    // Fall back to block partition of the iteration space; needs concrete
    // bounds (loop bounds of an outermost parallel loop only mention
    // symbolics).
    match (bind.eval_const(&lp.lo), bind.eval_const(&lp.hi)) {
        (Some(lo), Some(hi)) if hi >= lo => LoopPartition::BlockIndex {
            lo,
            hi,
            block: block_size(hi - lo + 1, bind.nprocs),
        },
        (Some(lo), Some(hi)) => LoopPartition::BlockIndex { lo, hi, block: 1 },
        _ => LoopPartition::Unknown,
    }
}

/// The outermost parallel loop on a statement's path, if any.
pub fn outermost_parallel_loop(prog: &Program, path: &StmtPath) -> Option<NodeId> {
    path.loops
        .iter()
        .copied()
        .find(|&l| prog.expect_loop(l).kind == LoopKind::Par)
}

/// Derive the partition of a statement from its path.
pub fn stmt_partition(prog: &Program, bind: &Bindings, path: &StmtPath) -> StmtPartition {
    if let Some(pl) = outermost_parallel_loop(prog, path) {
        if loop_is_replicated(prog, pl) {
            return StmtPartition::Replicated;
        }
        let lp = prog.expect_loop(pl);
        return StmtPartition::Distributed(lp.id, loop_partition(prog, bind, pl));
    }
    // Serial statement: replicated when it only writes a privatizable
    // scalar, master-guarded otherwise.
    if let Node::Assign(a) = prog.node(path.node) {
        if let LhsRef::Scalar(s) = &a.lhs {
            if prog.scalar(*s).privatizable {
                return StmtPartition::Replicated;
            }
        }
    }
    StmtPartition::Master
}

impl LoopPartition {
    /// Evaluate, at runtime, which processor executes the iteration with
    /// distributed-loop index `dist_index`; `loop_val` supplies values for
    /// every loop index occurring in the owner subscript (including the
    /// distributed loop itself). Returns `None` for [`Unknown`] (callers
    /// then run the loop on the master and keep the barrier).
    ///
    /// [`Unknown`]: LoopPartition::Unknown
    pub fn owner_of(
        &self,
        bind: &Bindings,
        dist_index: i64,
        loop_val: &dyn Fn(LoopId) -> Option<i64>,
    ) -> Option<i64> {
        match self {
            LoopPartition::BlockOwner { block, sub, .. } => {
                let x = bind.eval_affine(sub, loop_val)?;
                Some((x / block).clamp(0, bind.nprocs - 1))
            }
            LoopPartition::CyclicOwner { sub, .. } => {
                let x = bind.eval_affine(sub, loop_val)?;
                Some(x.rem_euclid(bind.nprocs))
            }
            LoopPartition::BlockCyclicOwner { block, sub, .. } => {
                let x = bind.eval_affine(sub, loop_val)?;
                Some((x.div_euclid(*block)).rem_euclid(bind.nprocs))
            }
            LoopPartition::BlockIndex { lo, block, .. } => {
                Some(((dist_index - lo) / block).clamp(0, bind.nprocs - 1))
            }
            LoopPartition::SymbolicBlockOwner { .. } | LoopPartition::Unknown => None,
        }
    }

    /// Owner of iteration `i` for index-partitioned loops.
    pub fn owner_of_index(&self, bind: &Bindings, i: i64) -> Option<i64> {
        match self {
            LoopPartition::BlockIndex { lo, block, .. } => {
                Some(((i - lo) / block).clamp(0, bind.nprocs - 1))
            }
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ir::build::*;

    fn jacobi() -> (Program, ir::SymId) {
        let mut p = ProgramBuilder::new("jacobi");
        let n = p.sym("n");
        let a = p.array("A", &[sym(n) + 2], dist_block());
        let b = p.array("B", &[sym(n) + 2], dist_block());
        let i = p.begin_par("i", con(1), sym(n));
        p.assign(
            elem(b, [idx(i)]),
            ex(0.5) * (arr(a, [idx(i) - 1]) + arr(a, [idx(i) + 1])),
        );
        p.end();
        (p.finish(), n)
    }

    #[test]
    fn block_owner_partition_from_lhs() {
        let (prog, n) = jacobi();
        let bind = Bindings::new(4).set(n, 100);
        let pl = prog.parallel_loops()[0];
        match loop_partition(&prog, &bind, pl) {
            LoopPartition::BlockOwner { block, .. } => {
                // extent = n + 2 = 102, ceil(102/4) = 26
                assert_eq!(block, 26);
            }
            other => panic!("expected BlockOwner, got {other:?}"),
        }
    }

    #[test]
    fn symbolic_owner_when_extent_unbound() {
        let (prog, _) = jacobi();
        let bind = Bindings::new(4); // n unbound
        let pl = prog.parallel_loops()[0];
        match loop_partition(&prog, &bind, pl) {
            LoopPartition::SymbolicBlockOwner { extent, .. } => {
                assert!(!extent.is_constant());
            }
            other => panic!("expected SymbolicBlockOwner, got {other:?}"),
        }
    }

    #[test]
    fn block_index_fallback() {
        let mut p = ProgramBuilder::new("red");
        let n = p.sym("n");
        let a = p.array("A", &[sym(n)], dist_repl());
        let s = p.scalar("s", 0.0);
        let i = p.begin_par("i", con(0), sym(n) - 1);
        p.reduce(svar(s), ir::RedOp::Add, arr(a, [idx(i)]));
        p.end();
        let prog = p.finish();
        let bind = Bindings::new(4).set(n, 100);
        let pl = prog.parallel_loops()[0];
        match loop_partition(&prog, &bind, pl) {
            LoopPartition::BlockIndex { lo, hi, block } => {
                assert_eq!((lo, hi, block), (0, 99, 25));
            }
            other => panic!("expected BlockIndex, got {other:?}"),
        }
    }

    #[test]
    fn owner_evaluation() {
        let bind = Bindings::new(4);
        let p = LoopPartition::BlockIndex {
            lo: 0,
            hi: 99,
            block: 25,
        };
        assert_eq!(p.owner_of_index(&bind, 0), Some(0));
        assert_eq!(p.owner_of_index(&bind, 24), Some(0));
        assert_eq!(p.owner_of_index(&bind, 25), Some(1));
        assert_eq!(p.owner_of_index(&bind, 99), Some(3));
    }

    #[test]
    fn master_and_replicated_serial_statements() {
        let mut p = ProgramBuilder::new("serial");
        let n = p.sym("n");
        let a = p.array("A", &[sym(n)], dist_block());
        let s = p.private_scalar("t", 0.0);
        let g = p.scalar("g", 0.0);
        p.assign(svar(s), ex(1.0));
        p.assign(svar(g), ex(2.0));
        let i = p.begin_par("i", con(0), sym(n) - 1);
        p.assign(elem(a, [idx(i)]), sca(s));
        p.end();
        let prog = p.finish();
        let bind = Bindings::new(4).set(n, 64);
        let stmts = prog.all_statements();
        assert_eq!(
            stmt_partition(&prog, &bind, &stmts[0]),
            StmtPartition::Replicated
        );
        assert_eq!(
            stmt_partition(&prog, &bind, &stmts[1]),
            StmtPartition::Master
        );
        assert!(matches!(
            stmt_partition(&prog, &bind, &stmts[2]),
            StmtPartition::Distributed(..)
        ));
    }
}
