//! `beopt` — the barrier-elimination driver.
//!
//! Reads a kernel in the text dialect (see `kernels/*.be` and the
//! `frontend` crate docs), runs the synchronization optimizer, and
//! reports the schedule. With `--run` it also executes both schedules
//! with virtual processors, verifies the optimized results against the
//! sequential semantics, and prints dynamic synchronization counts.
//!
//! ```sh
//! beopt kernels/jacobi.be --nprocs 8 --set n=64 --set tmax=10 --run
//! ```

use barrier_elim::analysis::Bindings;
use barrier_elim::frontend;
use barrier_elim::interp::{run_sequential, run_virtual, Mem, ScheduleOrder};
use barrier_elim::ir::Program;
use barrier_elim::spmd_opt::{fork_join, optimize_logged, render_plan};
use std::process::ExitCode;

struct Args {
    path: String,
    nprocs: i64,
    sets: Vec<(String, i64)>,
    run: bool,
    quiet: bool,
}

fn usage() -> ! {
    eprintln!(
        "usage: beopt <file.be> [--nprocs P] [--set sym=value]... [--run] [--quiet]\n\
         \n\
         --nprocs P      number of processors for analysis/execution (default 4)\n\
         --set sym=v     bind a symbolic constant (required for --run)\n\
         --run           execute baseline + optimized schedules and verify\n\
         --quiet         suppress the schedule listing (stats only)"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut args = Args {
        path: String::new(),
        nprocs: 4,
        sets: Vec::new(),
        run: false,
        quiet: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--nprocs" => {
                args.nprocs = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--set" => {
                let kv = it.next().unwrap_or_else(|| usage());
                let (k, v) = kv.split_once('=').unwrap_or_else(|| usage());
                let v: i64 = v.parse().unwrap_or_else(|_| usage());
                args.sets.push((k.to_string(), v));
            }
            "--run" => args.run = true,
            "--quiet" => args.quiet = true,
            "--help" | "-h" => usage(),
            _ if args.path.is_empty() && !a.starts_with('-') => args.path = a,
            _ => usage(),
        }
    }
    if args.path.is_empty() {
        usage();
    }
    args
}

fn bindings_for(prog: &Program, args: &Args) -> Result<Bindings, String> {
    let mut bind = Bindings::new(args.nprocs);
    for (name, value) in &args.sets {
        let Some(pos) = prog.syms.iter().position(|s| &s.name == name) else {
            return Err(format!("--set {name}: no such sym in the program"));
        };
        bind.bind(barrier_elim::ir::SymId(pos as u32), *value);
    }
    Ok(bind)
}

fn main() -> ExitCode {
    let args = parse_args();
    let src = match std::fs::read_to_string(&args.path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("beopt: cannot read {}: {e}", args.path);
            return ExitCode::FAILURE;
        }
    };
    let prog = match frontend::parse(&src) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("beopt: {}: {e}", args.path);
            return ExitCode::FAILURE;
        }
    };
    let bind = match bindings_for(&prog, &args) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("beopt: {e}");
            return ExitCode::FAILURE;
        }
    };

    // Verify the DOALL markings before trusting them.
    let bad = barrier_elim::analysis::check_parallel_loops(&prog, &bind);
    if !bad.is_empty() {
        for node in &bad {
            let l = prog.expect_loop(*node);
            eprintln!(
                "beopt: warning: `doall {}` carries a dependence (treating results cautiously)",
                l.name
            );
        }
    }
    for w in barrier_elim::analysis::check_privatizable(&prog, &bind) {
        eprintln!("beopt: warning: {w}");
    }

    let (plan, log) = optimize_logged(&prog, &bind);
    let base = fork_join(&prog, &bind);

    if !args.quiet {
        println!("--- optimized SPMD schedule ---");
        print!("{}", render_plan(&prog, &plan));
        println!("--- greedy decisions ---");
        for d in &log {
            println!(
                "  {:<26} analysis: {:<30} placed: {}",
                d.site,
                format!("{:?}", d.outcome),
                d.placed
            );
        }
        println!();
    }

    let st_b = base.static_stats();
    let st_o = plan.static_stats();
    println!(
        "static: fork-join {} barriers | optimized {} barriers, {} neighbor, {} counter, {} eliminated",
        st_b.barriers, st_o.barriers, st_o.neighbor_syncs, st_o.counter_syncs, st_o.eliminated
    );

    if args.run {
        // Need every sym bound.
        for (k, s) in prog.syms.iter().enumerate() {
            if bind.get(barrier_elim::ir::SymId(k as u32)).is_none() {
                eprintln!("beopt: --run needs --set {}=<value>", s.name);
                return ExitCode::FAILURE;
            }
        }
        let oracle = Mem::new(&prog, &bind);
        run_sequential(&prog, &bind, &oracle);
        let mem_b = Mem::new(&prog, &bind);
        let out_b = run_virtual(&prog, &bind, &base, &mem_b, ScheduleOrder::RoundRobin);
        let mem_o = Mem::new(&prog, &bind);
        let out_o = run_virtual(&prog, &bind, &plan, &mem_o, ScheduleOrder::Reverse);
        let diff = mem_o.max_abs_diff(&oracle);
        println!(
            "dynamic: fork-join {} barriers, {} dispatches | optimized {} barriers, {} counters, {} neighbor posts",
            out_b.counts.barriers,
            out_b.counts.dispatches,
            out_o.counts.barriers,
            out_o.counts.counter_increments,
            out_o.counts.neighbor_posts,
        );
        if diff > 1e-9 {
            eprintln!("beopt: VERIFICATION FAILED: optimized results diverge by {diff:e}");
            return ExitCode::FAILURE;
        }
        println!("verify: optimized results match sequential execution (max diff {diff:e})");
    }
    ExitCode::SUCCESS
}
