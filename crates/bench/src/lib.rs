//! Shared infrastructure for the table/figure regeneration binaries.
//!
//! Every table and figure of the paper's evaluation has a binary in
//! `src/bin/` (see `DESIGN.md` for the experiment index); this module
//! holds the pieces they share: plan transforms for the ablations,
//! dynamic-count collection, and plain-text table rendering.

use analysis::Bindings;
use interp::{run_virtual, Mem, ScheduleOrder};
use ir::Program;
use spmd_opt::{RItem, SpmdProgram, SyncOp, TopItem};
use suite::{Built, Scale};

/// Replace every non-barrier synchronization in the plan with a full
/// barrier (keeping the region structure). Always sound — used by the
/// ablation that isolates the value of counters/neighbor flags from the
/// value of region merging.
pub fn barrierize(plan: &SpmdProgram) -> SpmdProgram {
    fn conv(s: &SyncOp) -> SyncOp {
        match s {
            SyncOp::None => SyncOp::None,
            _ => SyncOp::Barrier,
        }
    }
    fn walk_items(items: &mut Vec<RItem>) {
        for it in items.iter_mut() {
            match it {
                RItem::Phase(p) => p.after = conv(&p.after),
                RItem::Seq {
                    body,
                    bottom,
                    after,
                    ..
                } => {
                    walk_items(body);
                    *bottom = conv(bottom);
                    *after = conv(after);
                }
            }
        }
    }
    let mut out = plan.clone();
    for item in out.items.iter_mut() {
        if let TopItem::Region(r) = item {
            walk_items(&mut r.items);
            r.end = conv(&r.end);
        }
    }
    out
}

/// Turn every synchronization slot of the plan into a barrier, including
/// the eliminated ones — "region merging without any elimination", the
/// most conservative SPMD schedule. Used by the greedy ablation.
pub fn all_barriers(plan: &SpmdProgram) -> SpmdProgram {
    fn walk_items(items: &mut Vec<RItem>) {
        let n = items.len();
        for (k, it) in items.iter_mut().enumerate() {
            let last = k + 1 == n;
            match it {
                RItem::Phase(p) => {
                    if !last {
                        p.after = SyncOp::Barrier;
                    }
                }
                RItem::Seq {
                    body,
                    bottom,
                    after,
                    ..
                } => {
                    walk_items(body);
                    *bottom = SyncOp::Barrier;
                    if !last {
                        *after = SyncOp::Barrier;
                    }
                }
            }
        }
    }
    let mut out = plan.clone();
    for item in out.items.iter_mut() {
        if let TopItem::Region(r) = item {
            walk_items(&mut r.items);
            r.end = SyncOp::Barrier;
        }
    }
    out
}

/// Dynamic counts of a plan under virtual execution (deterministic for
/// any processor count).
pub fn dyn_counts(
    prog: &Program,
    bind: &Bindings,
    plan: &SpmdProgram,
) -> interp::events::DynCounts {
    let mem = Mem::new(prog, bind);
    run_virtual(prog, bind, plan, &mem, ScheduleOrder::RoundRobin).counts
}

/// Build a benchmark instance with bindings.
pub fn instance(def: &suite::BenchDef, scale: Scale, nprocs: i64) -> (Built, Bindings) {
    let built = (def.build)(scale);
    let bind = built.bindings(nprocs);
    (built, bind)
}

/// Minimal fixed-width table printer.
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// New table with the given column headers.
    pub fn new(headers: &[&str]) -> Self {
        Table {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the header count).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len());
        self.rows.push(cells);
    }

    /// Render with padded columns.
    pub fn render(&self) -> String {
        let ncol = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for r in &self.rows {
            for (k, c) in r.iter().enumerate() {
                widths[k] = widths[k].max(c.len());
            }
        }
        let mut out = String::new();
        let line = |out: &mut String, cells: &[String]| {
            for (k, c) in cells.iter().enumerate() {
                if k > 0 {
                    out.push_str("  ");
                }
                out.push_str(c);
                for _ in c.len()..widths[k] {
                    out.push(' ');
                }
            }
            out.push('\n');
        };
        line(&mut out, &self.headers);
        let total: usize = widths.iter().sum::<usize>() + 2 * (ncol - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for r in &self.rows {
            line(&mut out, r);
        }
        out
    }
}

/// Schema version stamped into every `BENCH_*.json` artifact as the
/// document's first member. Bump it whenever a benchmark binary changes
/// the shape or meaning of its JSON output; the `--baseline` compare in
/// the bench binaries refuses to diff artifacts from other versions.
pub const BENCH_SCHEMA_VERSION: u64 = 1;

/// Return `doc` with `schema_version` as its first member (replacing
/// any existing stamp). Non-objects pass through unchanged.
pub fn stamp_schema(doc: obs::Json) -> obs::Json {
    match doc {
        obs::Json::Obj(pairs) => {
            let mut out = vec![(
                "schema_version".to_string(),
                obs::Json::Num(BENCH_SCHEMA_VERSION as f64),
            )];
            out.extend(pairs.into_iter().filter(|(k, _)| k != "schema_version"));
            obs::Json::Obj(out)
        }
        other => other,
    }
}

/// Check that a parsed artifact carries the schema version this build
/// understands. `Err` explains the mismatch (missing stamp counts as a
/// mismatch: pre-versioned artifacts must be regenerated, not guessed
/// at).
pub fn check_schema(doc: &obs::Json) -> Result<(), String> {
    match doc.get("schema_version").and_then(|v| v.as_u64()) {
        Some(v) if v == BENCH_SCHEMA_VERSION => Ok(()),
        Some(v) => Err(format!(
            "schema_version {v} does not match this binary's {BENCH_SCHEMA_VERSION}"
        )),
        None => Err(
            "no schema_version member (pre-versioned artifact; regenerate the baseline)"
                .to_string(),
        ),
    }
}

/// Load a `--baseline` artifact for comparison: parse it, verify the
/// schema version, and verify it comes from the same benchmark
/// (`bench` member). Any failure is a refusal with the reason.
pub fn load_baseline(path: &str, expect_bench: &str) -> Result<obs::Json, String> {
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("cannot read baseline {path}: {e}"))?;
    let doc = obs::parse(&text).map_err(|e| format!("baseline {path} is not JSON: {e}"))?;
    check_schema(&doc).map_err(|e| format!("refusing to compare against {path}: {e}"))?;
    match doc.get("bench").and_then(|b| b.as_str()) {
        Some(b) if b == expect_bench => Ok(doc),
        Some(b) => Err(format!(
            "refusing to compare against {path}: it is a '{b}' artifact, not '{expect_bench}'"
        )),
        None => Err(format!(
            "refusing to compare against {path}: no 'bench' member"
        )),
    }
}

/// Percentage reduction from `base` to `opt` (0 when base is 0).
pub fn pct_reduction(base: u64, opt: u64) -> f64 {
    if base == 0 {
        0.0
    } else {
        100.0 * (base.saturating_sub(opt)) as f64 / base as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use suite::Scale;

    #[test]
    fn barrierize_and_all_barriers_remain_correct() {
        let def = suite::by_name("jacobi2d").unwrap();
        let (built, bind) = instance(&def, Scale::Test, 4);
        let opt = spmd_opt::optimize(&built.prog, &bind);
        let oracle = Mem::new(&built.prog, &bind);
        interp::run_sequential(&built.prog, &bind, &oracle);
        for plan in [barrierize(&opt), all_barriers(&opt)] {
            let mem = Mem::new(&built.prog, &bind);
            run_virtual(&built.prog, &bind, &plan, &mem, ScheduleOrder::Reverse);
            assert!(mem.max_abs_diff(&oracle) < 1e-12);
        }
    }

    #[test]
    fn ablation_plans_order_by_barrier_count() {
        let def = suite::by_name("jacobi2d").unwrap();
        let (built, bind) = instance(&def, Scale::Test, 4);
        let opt = spmd_opt::optimize(&built.prog, &bind);
        let c_opt = dyn_counts(&built.prog, &bind, &opt);
        let c_bar = dyn_counts(&built.prog, &bind, &barrierize(&opt));
        let c_all = dyn_counts(&built.prog, &bind, &all_barriers(&opt));
        assert!(c_opt.barriers <= c_bar.barriers);
        assert!(c_bar.barriers <= c_all.barriers);
    }

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(&["a", "bb"]);
        t.row(vec!["xxx".into(), "1".into()]);
        let s = t.render();
        assert!(s.contains("a    bb"));
        assert!(s.contains("xxx  1"));
    }

    #[test]
    fn pct_reduction_handles_zero() {
        assert_eq!(pct_reduction(0, 0), 0.0);
        assert_eq!(pct_reduction(100, 71), 29.0);
    }

    #[test]
    fn stamp_schema_puts_version_first_and_replaces_stale_stamps() {
        let doc = obs::Json::obj()
            .set("schema_version", 99u64)
            .set("bench", "x");
        let stamped = stamp_schema(doc);
        match &stamped {
            obs::Json::Obj(pairs) => {
                assert_eq!(pairs[0].0, "schema_version");
                assert_eq!(pairs.len(), 2, "stale stamp must be replaced, not kept");
            }
            _ => panic!("object in, object out"),
        }
        assert_eq!(
            stamped.get("schema_version").and_then(|v| v.as_u64()),
            Some(BENCH_SCHEMA_VERSION)
        );
        assert!(check_schema(&stamped).is_ok());
    }

    #[test]
    fn check_schema_refuses_missing_and_mismatched_versions() {
        assert!(check_schema(&obs::Json::obj()).is_err());
        let old = obs::Json::obj().set("schema_version", BENCH_SCHEMA_VERSION + 1);
        let err = check_schema(&old).unwrap_err();
        assert!(err.contains("does not match"), "{err}");
    }

    #[test]
    fn load_baseline_refuses_wrong_bench_and_wrong_schema() {
        let dir = std::env::temp_dir().join("spmd-bench-schema-test");
        std::fs::create_dir_all(&dir).unwrap();
        let good = dir.join("good.json");
        std::fs::write(
            &good,
            stamp_schema(obs::Json::obj().set("bench", "sync-profiler-overhead"))
                .to_string_pretty(),
        )
        .unwrap();
        assert!(load_baseline(good.to_str().unwrap(), "sync-profiler-overhead").is_ok());
        assert!(load_baseline(good.to_str().unwrap(), "analysis-cache-regression").is_err());
        let stale = dir.join("stale.json");
        std::fs::write(
            &stale,
            obs::Json::obj()
                .set("bench", "sync-profiler-overhead")
                .to_string_pretty(),
        )
        .unwrap();
        assert!(load_baseline(stale.to_str().unwrap(), "sync-profiler-overhead").is_err());
        assert!(load_baseline(dir.join("absent.json").to_str().unwrap(), "x").is_err());
    }
}
