//! Seeded service-plane chaos: the `beoracle service-chaos` campaign.
//!
//! The execution-plane injector ([`crate::chaos`]) attacks sync
//! primitives inside a running plan; this module attacks the *compile
//! service* around them, through the hook points `served` exposes:
//! shard kills mid-request, corrupted snapshot files, delayed and
//! dropped connections. Every fault is a pure function of
//! `(seed, hook, shard, seq)` via the same splitmix64 mixing, so a
//! seed reproduces the exact fault schedule.
//!
//! The campaign's correctness bar is absolute: a client with the
//! standard retry ladder must get an answer for every request, and
//! every answer's explain document (plan sites + decision log) must be
//! **byte-identical** to a clean single-process
//! `optimize_explained_shared` run of the same request. Faults may
//! cost latency and cache warmth — never a different plan, and never
//! an error surfacing past the retry budget.

use served::{
    OptimizeRequest, PlanKind, Service, ServiceChaos, ServiceClient, ServiceConfig, ServiceFault,
};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// One draw per (seed, hook, shard, seq) coordinate.
fn mix(seed: u64, hook: u64, shard: u64, seq: u64) -> u64 {
    splitmix64(seed ^ splitmix64(hook.wrapping_mul(0x9E37) ^ splitmix64((shard << 40) ^ seq)))
}

/// Injection rates for the seeded service-plane schedule. Rates are
/// per-mille per hook firing; request-hook rates (`kill`, `delay`)
/// partition one draw and must sum to at most 1000, as must the
/// transport-hook rates (`drop`, `delay`).
#[derive(Clone, Debug)]
pub struct ServiceChaosConfig {
    /// Fault-schedule seed.
    pub seed: u64,
    /// Rate of shard kills mid-request.
    pub kill_permille: u64,
    /// Rate of pre-compile delays.
    pub delay_permille: u64,
    /// Rate of dropped connections at the transport hook.
    pub drop_permille: u64,
    /// Rate of snapshot corruption (per snapshot write).
    pub corrupt_permille: u64,
    /// Rate of shard kills mid-snapshot (leaves torn temp files).
    pub kill_snap_permille: u64,
    /// Upper bound on injected delays, in milliseconds.
    pub max_delay_ms: u64,
}

impl Default for ServiceChaosConfig {
    fn default() -> Self {
        ServiceChaosConfig {
            seed: 0,
            kill_permille: 60,
            delay_permille: 120,
            drop_permille: 80,
            corrupt_permille: 250,
            kill_snap_permille: 120,
            max_delay_ms: 15,
        }
    }
}

/// The seeded deterministic schedule implementing the service hooks.
pub struct SeededServiceChaos {
    cfg: ServiceChaosConfig,
}

impl SeededServiceChaos {
    /// A schedule drawing from `cfg`'s rates under `cfg.seed`.
    pub fn new(cfg: ServiceChaosConfig) -> Self {
        SeededServiceChaos { cfg }
    }

    fn delay(&self, draw: u64) -> ServiceFault {
        ServiceFault::Delay(Duration::from_millis(
            splitmix64(draw) % self.cfg.max_delay_ms.max(1) + 1,
        ))
    }
}

impl ServiceChaos for SeededServiceChaos {
    fn at_request(&self, shard: usize, seq: u64) -> Option<ServiceFault> {
        let draw = mix(self.cfg.seed, 1, shard as u64, seq) % 1000;
        if draw < self.cfg.kill_permille {
            Some(ServiceFault::KillShard)
        } else if draw < self.cfg.kill_permille + self.cfg.delay_permille {
            Some(self.delay(draw))
        } else {
            None
        }
    }

    fn at_snapshot(&self, shard: usize, snap_seq: u64) -> Option<ServiceFault> {
        let draw = mix(self.cfg.seed, 2, shard as u64, snap_seq) % 1000;
        if draw < self.cfg.kill_snap_permille {
            Some(ServiceFault::KillShard)
        } else if draw < self.cfg.kill_snap_permille + self.cfg.corrupt_permille {
            Some(ServiceFault::CorruptSnapshot)
        } else {
            None
        }
    }

    fn at_transport(&self, seq: u64) -> Option<ServiceFault> {
        let draw = mix(self.cfg.seed, 3, 0, seq) % 1000;
        if draw < self.cfg.drop_permille {
            Some(ServiceFault::DropConnection)
        } else if draw < self.cfg.drop_permille + self.cfg.delay_permille {
            Some(self.delay(draw))
        } else {
            None
        }
    }
}

/// One campaign input: a program and its symbol bindings.
#[derive(Clone, Debug)]
pub struct ServiceChaosCase {
    /// Display name (the kernel file name).
    pub name: String,
    /// `.be` source text.
    pub src: String,
    /// Symbol bindings by name.
    pub binds: Vec<(String, i64)>,
}

/// Campaign outcome: per-request verdicts plus the service's own
/// fault accounting.
#[derive(Debug)]
pub struct ServiceChaosReport {
    /// Chaos seed the schedule was drawn from.
    pub seed: u64,
    /// Campaign rounds over the case list.
    pub rounds: u32,
    /// Requests answered by the service.
    pub requests: u64,
    /// Answers byte-identical to the clean single-process reference.
    pub matched: u64,
    /// Every divergence or unabsorbed fault, described.
    pub failures: Vec<String>,
    /// Final service counters (panics, restarts, sheds, rejects...).
    pub stats: obs::ServiceStats,
}

impl ServiceChaosReport {
    /// True when every request was answered bitwise-identically.
    pub fn ok(&self) -> bool {
        self.failures.is_empty()
    }

    /// Total faults the service absorbed (from its own counters).
    pub fn faults_absorbed(&self) -> u64 {
        let t = |f: fn(&obs::ShardStats) -> u64| -> u64 { self.stats.shards.iter().map(f).sum() };
        self.stats.dropped_connections + t(|s| s.panics) + t(|s| s.shed) + t(|s| s.snapshot_rejects)
    }
}

/// The structured campaign document (what `service.json` holds).
pub fn service_chaos_json(r: &ServiceChaosReport) -> obs::Json {
    obs::Json::obj()
        .set("campaign", "service-chaos")
        .set("seed", r.seed)
        .set("rounds", r.rounds)
        .set("requests", r.requests)
        .set("matched", r.matched)
        .set("ok", r.ok())
        .set("faults_absorbed", r.faults_absorbed())
        .set(
            "failures",
            obs::Json::Arr(
                r.failures
                    .iter()
                    .map(|f| obs::Json::from(f.as_str()))
                    .collect(),
            ),
        )
        .set("service", obs::service_stats_json(&r.stats))
}

/// Clean single-process reference: the compact explain document a
/// fault-free `optimize_explained_shared` (or fork-join) run emits.
fn reference_explain(
    case: &ServiceChaosCase,
    nprocs: i64,
    plan: PlanKind,
) -> Result<String, String> {
    let prog = frontend::parse(&case.src).map_err(|e| format!("{}: parse: {e}", case.name))?;
    let mut bind = analysis::Bindings::new(nprocs);
    for (name, v) in &case.binds {
        let pos = prog
            .syms
            .iter()
            .position(|s| &s.name == name)
            .ok_or_else(|| format!("{}: unknown sym {name}", case.name))?;
        bind.bind(ir::SymId(pos as u32), *v);
    }
    let baseline = spmd_opt::fork_join(&prog, &bind);
    let doc = match plan {
        PlanKind::ForkJoin => obs::explain_json(&prog, nprocs, &baseline, &baseline, &[]),
        PlanKind::Optimized => {
            let fme = Arc::new(ineq::FmeCache::new());
            let (planned, decisions, _) = spmd_opt::optimize_explained_shared(
                &prog,
                &bind,
                spmd_opt::OptimizeOptions::default(),
                &fme,
            );
            obs::explain_json(&prog, nprocs, &planned, &baseline, &decisions)
        }
    };
    Ok(doc.to_string_compact())
}

/// Run the service-plane chaos campaign: start an in-process `beoptd`
/// service under the seeded fault schedule, drive every case × plan
/// for `rounds` rounds through a retrying client, and require every
/// answer byte-identical to the clean single-process reference.
pub fn service_chaos_check(
    cases: &[ServiceChaosCase],
    nprocs: i64,
    cfg: ServiceChaosConfig,
    rounds: u32,
    snapshot_dir: Option<PathBuf>,
) -> ServiceChaosReport {
    let seed = cfg.seed;
    let mut failures: Vec<String> = Vec::new();

    // Clean references first (also validates the cases themselves).
    let plans = [PlanKind::ForkJoin, PlanKind::Optimized];
    let mut refs: Vec<Vec<String>> = Vec::new();
    for case in cases {
        let mut per_plan = Vec::new();
        for plan in plans {
            match reference_explain(case, nprocs, plan) {
                Ok(s) => per_plan.push(s),
                Err(e) => {
                    failures.push(e);
                    per_plan.push(String::new());
                }
            }
        }
        refs.push(per_plan);
    }

    let service = match Service::start(ServiceConfig {
        addr: "127.0.0.1:0".to_string(),
        nshards: 2,
        queue_cap: 32,
        snapshot_dir,
        snapshot_every: 3,
        default_deadline: Duration::from_secs(30),
        supervisor_poll: Duration::from_millis(5),
        chaos: Some(Arc::new(SeededServiceChaos::new(cfg))),
        ..Default::default()
    }) {
        Ok(s) => s,
        Err(e) => {
            failures.push(format!("service failed to start: {e}"));
            return ServiceChaosReport {
                seed,
                rounds,
                requests: 0,
                matched: 0,
                failures,
                stats: obs::ServiceStats::default(),
            };
        }
    };

    let client = ServiceClient::new(service.addr.to_string());
    let mut requests = 0u64;
    let mut matched = 0u64;
    let mut id = 0u64;
    for round in 0..rounds {
        for (ci, case) in cases.iter().enumerate() {
            for (pi, plan) in plans.into_iter().enumerate() {
                if refs[ci][pi].is_empty() {
                    continue; // reference itself failed; already reported
                }
                id += 1;
                let req = OptimizeRequest {
                    id,
                    program: case.src.clone(),
                    nprocs,
                    binds: case.binds.clone(),
                    plan,
                    deadline_ms: None,
                };
                match client.optimize(&req) {
                    Ok(reply) => {
                        requests += 1;
                        let got = reply.explain.to_string_compact();
                        if got == refs[ci][pi] {
                            matched += 1;
                        } else {
                            failures.push(format!(
                                "round {round} {} [{}]: explain document diverged from the \
                                 clean single-process reference ({} vs {} bytes)",
                                case.name,
                                plan.as_str(),
                                got.len(),
                                refs[ci][pi].len()
                            ));
                        }
                    }
                    Err(e) => failures.push(format!(
                        "round {round} {} [{}]: fault not absorbed: {e}",
                        case.name,
                        plan.as_str()
                    )),
                }
            }
        }
        // Force snapshots between rounds so kills land on warm state
        // and corruption faults have files to chew on.
        let _ = client.snapshot_now();
    }
    service.stop();
    service.wait();
    ServiceChaosReport {
        seed,
        rounds,
        requests,
        matched,
        failures,
        stats: service.stats(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_case() -> ServiceChaosCase {
        // Two dependent parallel loops: one eliminable boundary, one
        // real decision — enough to make the explain doc non-trivial.
        ServiceChaosCase {
            name: "tiny".to_string(),
            src: "program tiny\n\
                  sym n\n\
                  array A(n) block\n\
                  array B(n) block\n\
                  doall i = 0, n-1\n\
                  \x20 B(i) = A(i) * 2.0\n\
                  end\n\
                  doall j = 0, n-1\n\
                  \x20 A(j) = B(j) + 1.0\n\
                  end\n"
                .to_string(),
            binds: vec![("n".to_string(), 24)],
        }
    }

    #[test]
    fn schedule_is_deterministic_in_the_seed() {
        let cfg = ServiceChaosConfig {
            seed: 7,
            ..Default::default()
        };
        let a = SeededServiceChaos::new(cfg.clone());
        let b = SeededServiceChaos::new(cfg);
        for seq in 0..200 {
            assert_eq!(a.at_request(0, seq), b.at_request(0, seq));
            assert_eq!(a.at_snapshot(1, seq), b.at_snapshot(1, seq));
            assert_eq!(a.at_transport(seq), b.at_transport(seq));
        }
    }

    #[test]
    fn quiet_schedule_campaign_matches_reference_exactly() {
        // All rates zero: the service must match the reference on
        // every request with zero faults absorbed.
        let cfg = ServiceChaosConfig {
            seed: 1,
            kill_permille: 0,
            delay_permille: 0,
            drop_permille: 0,
            corrupt_permille: 0,
            kill_snap_permille: 0,
            ..Default::default()
        };
        let r = service_chaos_check(&[tiny_case()], 4, cfg, 2, None);
        assert!(r.ok(), "failures: {:?}", r.failures);
        assert_eq!(r.requests, 4);
        assert_eq!(r.matched, 4);
        assert_eq!(r.faults_absorbed(), 0);
    }

    #[test]
    fn faulted_campaign_absorbs_and_still_matches() {
        let dir = std::env::temp_dir().join(format!("be-svc-chaos-{}", std::process::id()));
        // High rates so a short campaign still sees faults.
        let cfg = ServiceChaosConfig {
            seed: 3,
            kill_permille: 200,
            delay_permille: 100,
            drop_permille: 200,
            corrupt_permille: 400,
            kill_snap_permille: 200,
            max_delay_ms: 3,
        };
        let r = service_chaos_check(&[tiny_case()], 4, cfg, 4, Some(dir.clone()));
        let _ = std::fs::remove_dir_all(&dir);
        assert!(r.ok(), "failures: {:?}", r.failures);
        assert_eq!(r.requests, 8);
        assert_eq!(r.matched, 8);
        assert!(
            r.faults_absorbed() > 0,
            "expected injected faults at these rates: {:?}",
            obs::service_stats_json(&r.stats).to_string_pretty()
        );
    }
}
