//! The program arena, traversal helpers, and structural validation.

use crate::decl::{ArrayDecl, ArrayId, ScalarDecl, ScalarId, SymDecl, SymId};
use crate::expr::{AffAtom, Affine};
use crate::node::{GuardCond, LhsRef, Loop, LoopId, LoopKind, Node};
use std::collections::BTreeSet;

/// Handle for a node in the program arena.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct NodeId(pub u32);

/// A statement's position: the node itself plus the loops enclosing it,
/// outermost first.
#[derive(Clone, Debug)]
pub struct StmtPath {
    /// The assignment node.
    pub node: NodeId,
    /// Enclosing loop nodes, outermost first.
    pub loops: Vec<NodeId>,
    /// Guard conditions enclosing the statement (conjunction).
    pub guards: Vec<GuardCond>,
}

/// A whole program: declarations plus an arena of structural nodes.
#[derive(Clone, Debug, Default)]
pub struct Program {
    /// Program name (for reports).
    pub name: String,
    /// Symbolic constants.
    pub syms: Vec<SymDecl>,
    /// Scalar variables.
    pub scalars: Vec<ScalarDecl>,
    /// Arrays with their decompositions.
    pub arrays: Vec<ArrayDecl>,
    /// Node arena.
    pub nodes: Vec<Node>,
    /// Top-level statements/loops in program order.
    pub body: Vec<NodeId>,
    /// Number of loops allocated (LoopIds are `0..num_loops`).
    pub num_loops: u32,
    /// Display names of loop index variables, indexed by `LoopId`.
    pub loop_names: Vec<String>,
}

impl Program {
    /// The node behind a handle.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.0 as usize]
    }

    /// Mutable node access.
    pub fn node_mut(&mut self, id: NodeId) -> &mut Node {
        &mut self.nodes[id.0 as usize]
    }

    /// The array declaration behind a handle.
    pub fn array(&self, id: ArrayId) -> &ArrayDecl {
        &self.arrays[id.0 as usize]
    }

    /// The scalar declaration behind a handle.
    pub fn scalar(&self, id: ScalarId) -> &ScalarDecl {
        &self.scalars[id.0 as usize]
    }

    /// The symbolic-constant declaration behind a handle.
    pub fn sym(&self, id: SymId) -> &SymDecl {
        &self.syms[id.0 as usize]
    }

    /// Name of a loop index variable.
    pub fn loop_name(&self, l: LoopId) -> &str {
        &self.loop_names[l.0 as usize]
    }

    /// Pre-order traversal of the subtree rooted at `id`, invoking `f`
    /// with each node id and its depth.
    pub fn walk(&self, id: NodeId, f: &mut impl FnMut(NodeId, usize)) {
        fn rec(p: &Program, id: NodeId, depth: usize, f: &mut impl FnMut(NodeId, usize)) {
            f(id, depth);
            for &c in p.node(id).children() {
                rec(p, c, depth + 1, f);
            }
        }
        rec(self, id, 0, f);
    }

    /// Pre-order traversal of the whole program.
    pub fn walk_all(&self, f: &mut impl FnMut(NodeId, usize)) {
        for &id in &self.body {
            self.walk(id, f);
        }
    }

    /// All parallel loops in the program, in program order.
    pub fn parallel_loops(&self) -> Vec<NodeId> {
        let mut out = Vec::new();
        self.walk_all(&mut |id, _| {
            if let Node::Loop(l) = self.node(id) {
                if l.kind == LoopKind::Par {
                    out.push(id);
                }
            }
        });
        out
    }

    /// All assignment statements in the subtree rooted at `root`,
    /// together with their enclosing loop nodes (outermost first,
    /// *including* loops above `root` passed in `prefix`).
    pub fn statements_under(&self, root: NodeId, prefix: &[NodeId]) -> Vec<StmtPath> {
        let mut out = Vec::new();
        fn rec(
            p: &Program,
            id: NodeId,
            loops: &mut Vec<NodeId>,
            guards: &mut Vec<GuardCond>,
            out: &mut Vec<StmtPath>,
        ) {
            match p.node(id) {
                Node::Assign(_) => out.push(StmtPath {
                    node: id,
                    loops: loops.clone(),
                    guards: guards.clone(),
                }),
                Node::Loop(l) => {
                    loops.push(id);
                    for &c in &l.body {
                        rec(p, c, loops, guards, out);
                    }
                    loops.pop();
                }
                Node::Guard(g) => {
                    let before = guards.len();
                    guards.extend(g.conds.iter().cloned());
                    for &c in &g.body {
                        rec(p, c, loops, guards, out);
                    }
                    guards.truncate(before);
                }
            }
        }
        let mut loops = prefix.to_vec();
        let mut guards = Vec::new();
        rec(self, root, &mut loops, &mut guards, &mut out);
        out
    }

    /// The loop node ids (outermost first) that would enclose a statement
    /// at top level — convenience for `statements_under(root, &[])` on
    /// each top-level node.
    pub fn all_statements(&self) -> Vec<StmtPath> {
        let mut out = Vec::new();
        for &id in &self.body {
            out.extend(self.statements_under(id, &[]));
        }
        out
    }

    /// Count assignment statements (a proxy for "lines" in Table 1).
    pub fn num_statements(&self) -> usize {
        let mut n = 0;
        self.walk_all(&mut |id, _| {
            if matches!(self.node(id), Node::Assign(_)) {
                n += 1;
            }
        });
        n
    }

    /// Arrays written anywhere in the subtree rooted at `id`.
    pub fn arrays_written_under(&self, id: NodeId) -> BTreeSet<ArrayId> {
        let mut s = BTreeSet::new();
        self.walk(id, &mut |nid, _| {
            if let Node::Assign(a) = self.node(nid) {
                if let LhsRef::Elem(arr, _) = &a.lhs {
                    s.insert(*arr);
                }
            }
        });
        s
    }

    /// Arrays read anywhere in the subtree rooted at `id`.
    pub fn arrays_read_under(&self, id: NodeId) -> BTreeSet<ArrayId> {
        let mut s = BTreeSet::new();
        self.walk(id, &mut |nid, _| {
            if let Node::Assign(a) = self.node(nid) {
                for (arr, _) in a.rhs.array_reads() {
                    s.insert(arr);
                }
            }
        });
        s
    }

    /// Structural validation: subscript ranks match array ranks, loop
    /// bounds and subscripts only mention enclosing loops or symbolics,
    /// loop ids are unique. Returns a list of human-readable problems
    /// (empty = valid).
    pub fn validate(&self) -> Vec<String> {
        let mut problems = Vec::new();
        let mut seen_loops: BTreeSet<LoopId> = BTreeSet::new();
        let mut in_scope: Vec<LoopId> = Vec::new();

        fn check_affine(
            p: &Program,
            e: &Affine,
            in_scope: &[LoopId],
            what: &str,
            problems: &mut Vec<String>,
        ) {
            for (a, _) in e.terms() {
                match a {
                    AffAtom::Loop(l) => {
                        if !in_scope.contains(&l) {
                            problems.push(format!(
                                "{what}: loop index {} used outside its loop",
                                p.loop_name(l)
                            ));
                        }
                    }
                    AffAtom::Sym(s) => {
                        if s.0 as usize >= p.syms.len() {
                            problems.push(format!("{what}: undeclared symbolic {s:?}"));
                        }
                    }
                }
            }
        }

        fn rec(
            p: &Program,
            id: NodeId,
            in_scope: &mut Vec<LoopId>,
            seen: &mut BTreeSet<LoopId>,
            problems: &mut Vec<String>,
        ) {
            match p.node(id) {
                Node::Loop(l) => {
                    if !seen.insert(l.id) {
                        problems.push(format!("loop id {:?} used twice", l.id));
                    }
                    check_affine(p, &l.lo, in_scope, "loop lower bound", problems);
                    check_affine(p, &l.hi, in_scope, "loop upper bound", problems);
                    in_scope.push(l.id);
                    for &c in &l.body {
                        rec(p, c, in_scope, seen, problems);
                    }
                    in_scope.pop();
                }
                Node::Guard(g) => {
                    for cond in &g.conds {
                        check_affine(p, &cond.expr, in_scope, "guard", problems);
                    }
                    for &c in &g.body {
                        rec(p, c, in_scope, seen, problems);
                    }
                }
                Node::Assign(a) => {
                    let mut check_ref = |arr: ArrayId, subs: &[Affine]| {
                        let decl = p.array(arr);
                        if subs.len() != decl.rank() {
                            problems.push(format!(
                                "array {} has rank {} but subscripted with {} indices",
                                decl.name,
                                decl.rank(),
                                subs.len()
                            ));
                        }
                        for s in subs {
                            check_affine(p, s, in_scope, "subscript", problems);
                        }
                    };
                    if let LhsRef::Elem(arr, subs) = &a.lhs {
                        check_ref(*arr, subs);
                    }
                    for (arr, subs) in a.rhs.array_reads() {
                        check_ref(arr, &subs);
                    }
                }
            }
        }

        for &id in &self.body {
            rec(self, id, &mut in_scope, &mut seen_loops, &mut problems);
        }
        problems
    }

    /// The loop nodes enclosing `target` (outermost first), or `None`
    /// when `target` is not in the program tree.
    pub fn enclosing_loops(&self, target: NodeId) -> Option<Vec<NodeId>> {
        fn rec(p: &Program, id: NodeId, target: NodeId, stack: &mut Vec<NodeId>) -> bool {
            if id == target {
                return true;
            }
            match p.node(id) {
                Node::Loop(l) => {
                    stack.push(id);
                    for &c in &l.body {
                        if rec(p, c, target, stack) {
                            return true;
                        }
                    }
                    stack.pop();
                    false
                }
                Node::Guard(g) => g.body.iter().any(|&c| rec(p, c, target, stack)),
                Node::Assign(_) => false,
            }
        }
        let mut stack = Vec::new();
        for &id in &self.body {
            if rec(self, id, target, &mut stack) {
                return Some(stack);
            }
        }
        None
    }

    /// Find the loop node with the given loop id.
    pub fn find_loop(&self, l: LoopId) -> Option<NodeId> {
        let mut found = None;
        self.walk_all(&mut |id, _| {
            if let Node::Loop(lp) = self.node(id) {
                if lp.id == l {
                    found = Some(id);
                }
            }
        });
        found
    }

    /// The [`Loop`] payload of a node known to be a loop.
    pub fn expect_loop(&self, id: NodeId) -> &Loop {
        self.node(id).as_loop().expect("node is not a loop")
    }
}

#[cfg(test)]
mod tests {
    use crate::build::*;

    #[test]
    fn traversal_and_counts() {
        let mut p = ProgramBuilder::new("t");
        let n = p.sym("n");
        let a = p.array("A", &[sym(n)], dist_block());
        let i = p.begin_par("i", con(0), sym(n) - 1);
        p.assign(elem(a, [idx(i)]), ex(1.0));
        p.end();
        let prog = p.finish();
        assert_eq!(prog.num_statements(), 1);
        assert_eq!(prog.parallel_loops().len(), 1);
        let stmts = prog.all_statements();
        assert_eq!(stmts.len(), 1);
        assert_eq!(stmts[0].loops.len(), 1);
        assert!(prog.validate().is_empty());
    }

    #[test]
    fn validation_catches_rank_mismatch() {
        let mut p = ProgramBuilder::new("bad");
        let n = p.sym("n");
        let a = p.array("A", &[sym(n), sym(n)], dist_block());
        let i = p.begin_par("i", con(0), sym(n) - 1);
        p.assign(elem(a, [idx(i)]), ex(0.0)); // rank 2 array, 1 subscript
        p.end();
        let prog = p.finish_unchecked();
        assert!(!prog.validate().is_empty());
    }

    #[test]
    fn validation_catches_out_of_scope_index() {
        let mut p = ProgramBuilder::new("bad2");
        let n = p.sym("n");
        let a = p.array("A", &[sym(n)], dist_block());
        let i = p.begin_par("i", con(0), sym(n) - 1);
        p.end();
        // Use i outside its loop.
        p.assign(elem(a, [idx(i)]), ex(0.0));
        let prog = p.finish_unchecked();
        assert!(!prog.validate().is_empty());
    }

    #[test]
    fn written_and_read_sets() {
        let mut p = ProgramBuilder::new("rw");
        let n = p.sym("n");
        let a = p.array("A", &[sym(n)], dist_block());
        let b = p.array("B", &[sym(n)], dist_block());
        let i = p.begin_par("i", con(1), sym(n) - 2);
        p.assign(
            elem(b, [idx(i)]),
            arr(a, [idx(i) - 1]) + arr(a, [idx(i) + 1]),
        );
        p.end();
        let prog = p.finish();
        let root = prog.body[0];
        assert!(prog.arrays_written_under(root).contains(&b));
        assert!(prog.arrays_read_under(root).contains(&a));
        assert!(!prog.arrays_read_under(root).contains(&b));
    }
}
