//! Always-on sync profiler: per-thread lock-free event rings.
//!
//! Every profiled execution carries one [`Profiler`] whose tracks are
//! single-writer ring buffers of compact fixed-size [`ProfileEvent`]s:
//! sync arrivals/releases per canonical site, region begin/end,
//! checkpoint/rollback/retry marks from the recovery supervisor,
//! spin → yield → park escalation transitions, and FME-cache hit/miss
//! spans from the optimizer. The rings never block and never allocate
//! on the hot path: a writer stamps a monotonic `Instant`-derived
//! nanosecond timestamp, stores the event at `head & mask`, and bumps
//! `head` — when the ring is full the oldest event is overwritten and
//! counted as a drop, so the profiler's cost is bounded no matter how
//! long a run is.
//!
//! The single-writer contract: track `t` is written only by the thread
//! that owns it (worker `pid` writes track `pid`; the recovery
//! supervisor writes the extra track [`Profiler::supervisor_track`]).
//! Slots are stored as relaxed atomic words, so the API is sound from
//! safe code unconditionally: a [`Profiler::snapshot`] that races an
//! active writer is memory-safe, it can merely observe a torn event
//! (fields mixed from two pushes into the same slot). Callers who need
//! an *exact* stream — the executor, the recovery supervisor — read
//! only while writers are quiescent (after the team run returned).
//!
//! Events are *epoch-stamped*: the recovery supervisor bumps
//! [`Profiler::bump_epoch`] when it re-arms the fabric between retry
//! attempts, so the merged stream can separate the final attempt's
//! episodes from the abandoned ones without clearing anything.

use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Site value for events that have no canonical sync site (region
/// markers, escalation transitions, supervisor marks, FME spans).
pub const NO_SITE: u32 = u32::MAX;

/// What one [`ProfileEvent`] records.
#[repr(u8)]
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum EventKind {
    /// A processor reached a sync site (`arg` = 0-based dynamic visit).
    SyncArrive,
    /// The same processor was released from the site (`arg` = wait ns).
    SyncRelease,
    /// A processor entered its region traversal.
    RegionBegin,
    /// A processor left its region traversal (completed or faulted).
    RegionEnd,
    /// The supervisor captured the write-set checkpoint (`arg` = cells).
    Checkpoint,
    /// The supervisor rolled memory back to the checkpoint (`arg` =
    /// cells restored).
    Rollback,
    /// The supervisor launched a retry (`arg` = 1-based attempt number
    /// of the attempt that failed).
    Retry,
    /// A blocked wait escalated from spinning to its first `yield_now`
    /// (`arg` = spin rounds burned before the transition).
    EscalateYield,
    /// A blocked wait escalated to its first bounded park (`arg` =
    /// yield rounds burned before the transition).
    EscalatePark,
    /// One optimizer pair query served from warm memo/FME state
    /// (`arg` = query duration ns; recorded at query end, so the span
    /// is `[t_ns - arg, t_ns]`).
    FmeHit,
    /// One optimizer pair query that ran fresh FME eliminations
    /// (`arg` = query duration ns, recorded at query end).
    FmeMiss,
}

impl EventKind {
    /// Every kind, indexed by its `#[repr(u8)]` discriminant (the slot
    /// encoding round-trips through this table).
    const ALL: [EventKind; 11] = [
        EventKind::SyncArrive,
        EventKind::SyncRelease,
        EventKind::RegionBegin,
        EventKind::RegionEnd,
        EventKind::Checkpoint,
        EventKind::Rollback,
        EventKind::Retry,
        EventKind::EscalateYield,
        EventKind::EscalatePark,
        EventKind::FmeHit,
        EventKind::FmeMiss,
    ];

    fn from_u8(v: u8) -> EventKind {
        *Self::ALL.get(v as usize).unwrap_or(&EventKind::RegionBegin)
    }

    /// Stable lowercase name (used by JSON and trace output).
    pub fn as_str(self) -> &'static str {
        match self {
            EventKind::SyncArrive => "sync-arrive",
            EventKind::SyncRelease => "sync-release",
            EventKind::RegionBegin => "region-begin",
            EventKind::RegionEnd => "region-end",
            EventKind::Checkpoint => "checkpoint",
            EventKind::Rollback => "rollback",
            EventKind::Retry => "retry",
            EventKind::EscalateYield => "escalate-yield",
            EventKind::EscalatePark => "escalate-park",
            EventKind::FmeHit => "fme-hit",
            EventKind::FmeMiss => "fme-miss",
        }
    }
}

/// One compact fixed-size profile record (24 bytes).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ProfileEvent {
    /// Nanoseconds since the profiler's base instant.
    pub t_ns: u64,
    /// Kind-specific payload (see [`EventKind`]).
    pub arg: u64,
    /// Canonical sync-site id, or [`NO_SITE`].
    pub site: u32,
    /// Writer track (worker pid, or the supervisor track). The slot
    /// encoding keeps 12 bits of it (tracks are worker pids plus one
    /// supervisor — far below 4096).
    pub track: u16,
    /// Recovery attempt epoch (0 on the first attempt). Saturates at
    /// `u16::MAX` — see [`Profiler::epoch`].
    pub epoch: u16,
    /// What happened.
    pub kind: EventKind,
}

/// Profiling knobs threaded through the executor.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ProfileOptions {
    /// Ring capacity per track, rounded up to a power of two. When a
    /// track records more events than this, the oldest are overwritten
    /// and counted as drops — recording never blocks.
    pub capacity: usize,
}

impl Default for ProfileOptions {
    fn default() -> Self {
        // 16Ki events × 24B = 384KiB per track: enough for every
        // shipped kernel at its default scale with zero drops.
        ProfileOptions { capacity: 1 << 14 }
    }
}

/// One slot: a [`ProfileEvent`] as three relaxed atomic words, so a
/// reader racing the writer can never invoke undefined behavior from
/// safe code — the worst a race yields is a torn (mixed-field) event.
/// The meta word packs `site | track << 32 | epoch << 44 | kind << 60`
/// (track 12 bits, epoch 16 bits, kind 4 bits — [`EventKind`] must
/// stay within 16 variants, checked below).
struct Slot {
    t_ns: AtomicU64,
    arg: AtomicU64,
    meta: AtomicU64,
}

// The 4-bit kind field of the slot encoding.
const _: () = assert!(EventKind::ALL.len() <= 16);

impl Slot {
    fn store(&self, ev: &ProfileEvent) {
        self.t_ns.store(ev.t_ns, Ordering::Relaxed);
        self.arg.store(ev.arg, Ordering::Relaxed);
        let meta = ev.site as u64
            | ((ev.track & 0xFFF) as u64) << 32
            | (ev.epoch as u64) << 44
            | (ev.kind as u64) << 60;
        self.meta.store(meta, Ordering::Relaxed);
    }

    fn load(&self) -> ProfileEvent {
        let meta = self.meta.load(Ordering::Relaxed);
        ProfileEvent {
            t_ns: self.t_ns.load(Ordering::Relaxed),
            arg: self.arg.load(Ordering::Relaxed),
            site: meta as u32,
            track: ((meta >> 32) & 0xFFF) as u16,
            epoch: ((meta >> 44) & 0xFFFF) as u16,
            kind: EventKind::from_u8((meta >> 60) as u8),
        }
    }
}

/// One single-writer ring. `head` counts every push ever made; the live
/// window is the last `min(head, capacity)` events.
struct EventRing {
    mask: usize,
    slots: Box<[Slot]>,
    head: AtomicU64,
}

impl EventRing {
    fn new(capacity: usize) -> Self {
        let cap = capacity.max(2).next_power_of_two();
        EventRing {
            mask: cap - 1,
            slots: (0..cap)
                .map(|_| Slot {
                    t_ns: AtomicU64::new(0),
                    arg: AtomicU64::new(0),
                    meta: AtomicU64::new(0),
                })
                .collect(),
            head: AtomicU64::new(0),
        }
    }

    #[inline]
    fn push(&self, ev: ProfileEvent) {
        // Single writer: no other thread stores to these slots or head.
        let h = self.head.load(Ordering::Relaxed);
        self.slots[(h as usize) & self.mask].store(&ev);
        self.head.store(h + 1, Ordering::Release);
    }

    /// Copy out the live window (oldest-first) and the drop count.
    /// Exact only while the writer is quiescent; a racing drain is
    /// memory-safe but may return torn events (see module docs).
    fn drain(&self) -> (Vec<ProfileEvent>, u64) {
        let h = self.head.load(Ordering::Acquire) as usize;
        let cap = self.mask + 1;
        let kept = h.min(cap);
        let mut out = Vec::with_capacity(kept);
        for i in (h - kept)..h {
            out.push(self.slots[i & self.mask].load());
        }
        (out, (h - kept) as u64)
    }
}

/// The merged, analysis-ready result of one profiled execution.
#[derive(Clone, Debug, Default)]
pub struct ProfileData {
    /// Writer tracks (workers + supervisor).
    pub tracks: usize,
    /// Ring capacity per track (after power-of-two rounding).
    pub capacity: usize,
    /// Events overwritten across all tracks (0 on a well-sized ring).
    pub dropped: u64,
    /// Every live event, sorted by `(t_ns, track)`.
    pub events: Vec<ProfileEvent>,
}

impl ProfileData {
    /// Total events ever recorded (live + dropped) — the accounting
    /// identity `attempted == events.len() + dropped` always holds.
    pub fn attempted(&self) -> u64 {
        self.events.len() as u64 + self.dropped
    }
}

/// A profiled execution's clock, epoch, and per-track rings.
pub struct Profiler {
    base: Instant,
    /// Nanoseconds subtracted from every timestamp (see
    /// [`Profiler::rebase_if_unused`]).
    offset_ns: AtomicU64,
    epoch: AtomicU64,
    rings: Vec<EventRing>,
    capacity: usize,
}

impl Profiler {
    /// A profiler with `tracks` single-writer rings (workers 0..P-1
    /// plus, by convention, one supervisor track at index P).
    pub fn new(tracks: usize, opts: ProfileOptions) -> Self {
        let capacity = opts.capacity.max(2).next_power_of_two();
        Profiler {
            base: Instant::now(),
            offset_ns: AtomicU64::new(0),
            epoch: AtomicU64::new(0),
            rings: (0..tracks.max(1))
                .map(|_| EventRing::new(capacity))
                .collect(),
            capacity,
        }
    }

    /// Number of tracks.
    pub fn tracks(&self) -> usize {
        self.rings.len()
    }

    /// The conventional supervisor track (last ring).
    pub fn supervisor_track(&self) -> usize {
        self.rings.len() - 1
    }

    /// Nanoseconds on the profiler clock right now.
    #[inline]
    pub fn now_ns(&self) -> u64 {
        (self.base.elapsed().as_nanos() as u64)
            .saturating_sub(self.offset_ns.load(Ordering::Relaxed))
    }

    /// Zero the clock at the current instant — but only when nothing
    /// was recorded yet. The executor calls this at its run `t0` so
    /// profile timestamps share the trace timeline's origin on the
    /// first attempt, while a reused fabric (recovery retries) keeps
    /// its monotonic clock.
    pub fn rebase_if_unused(&self) {
        if self
            .rings
            .iter()
            .all(|r| r.head.load(Ordering::Relaxed) == 0)
        {
            self.offset_ns
                .store(self.base.elapsed().as_nanos() as u64, Ordering::Relaxed);
        }
    }

    /// Current recovery epoch. Saturates at `u16::MAX` (65535): a run
    /// that retries more than 65535 times stamps every later event with
    /// the saturated epoch, so episode keys from those attempts can
    /// collide — the analyzer counts the events carrying the saturated
    /// stamp exactly (`epoch_clamp`) instead of reporting bogus
    /// episodes.
    pub fn epoch(&self) -> u16 {
        self.epoch.load(Ordering::Relaxed).min(u16::MAX as u64) as u16
    }

    /// Stamp all later events with the next epoch (called by the
    /// recovery supervisor between attempts; rings are kept).
    pub fn bump_epoch(&self) {
        self.epoch.fetch_add(1, Ordering::Relaxed);
    }

    /// Record an event stamped with the current time.
    #[inline]
    pub fn record(&self, track: usize, kind: EventKind, site: u32, arg: u64) {
        let t = self.now_ns();
        self.record_at(track, kind, site, arg, t);
    }

    /// Record an event with an explicit timestamp (taken from
    /// [`Profiler::now_ns`] by the caller, e.g. to reuse one clock read
    /// for both the event and a wait-duration computation).
    #[inline]
    pub fn record_at(&self, track: usize, kind: EventKind, site: u32, arg: u64, t_ns: u64) {
        self.rings[track].push(ProfileEvent {
            t_ns,
            arg,
            site,
            track: track as u16,
            epoch: self.epoch(),
            kind,
        });
    }

    /// Merge every track's live window into one time-sorted stream.
    /// Always memory-safe; *exact* only while all writers are quiescent
    /// (the team run has returned), else racing pushes can surface as
    /// torn events. Non-destructive — rings keep accumulating
    /// afterwards, so the recovery supervisor can snapshot once at the
    /// very end and see all attempts.
    pub fn snapshot(&self) -> ProfileData {
        let mut events = Vec::new();
        let mut dropped = 0u64;
        for ring in &self.rings {
            let (evs, d) = ring.drain();
            events.extend(evs);
            dropped += d;
        }
        events.sort_by_key(|e| (e.t_ns, e.track, e.site));
        ProfileData {
            tracks: self.rings.len(),
            capacity: self.capacity,
            dropped,
            events,
        }
    }
}

thread_local! {
    /// The recorder the current thread emits ambient events into
    /// (escalation transitions from deep inside the primitives, FME
    /// spans from the analysis hook). Installed by the executor per
    /// worker, and by the driver around a profiled compile.
    static CURRENT: RefCell<Option<(Arc<Profiler>, usize)>> = const { RefCell::new(None) };
}

/// RAII handle for a thread-local recorder installation; restores the
/// previous recorder (usually none) on drop.
pub struct RecorderGuard {
    prev: Option<(Arc<Profiler>, usize)>,
}

impl Drop for RecorderGuard {
    fn drop(&mut self) {
        CURRENT.with(|c| *c.borrow_mut() = self.prev.take());
    }
}

/// Install `profiler`/`track` as the current thread's ambient recorder.
pub fn install(profiler: Arc<Profiler>, track: usize) -> RecorderGuard {
    CURRENT.with(|c| RecorderGuard {
        prev: c.borrow_mut().replace((profiler, track)),
    })
}

/// Emit an ambient event through the thread-local recorder; a no-op
/// (one thread-local read) when no recorder is installed.
#[inline]
pub fn emit(kind: EventKind, site: u32, arg: u64) {
    CURRENT.with(|c| {
        if let Some((p, track)) = &*c.borrow() {
            p.record(*track, kind, site, arg);
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capacity_rounds_up_to_a_power_of_two() {
        let p = Profiler::new(1, ProfileOptions { capacity: 100 });
        assert_eq!(p.capacity, 128);
        let p = Profiler::new(1, ProfileOptions { capacity: 0 });
        assert_eq!(p.capacity, 2);
    }

    #[test]
    fn overflow_drops_oldest_and_accounts_exactly() {
        let p = Profiler::new(1, ProfileOptions { capacity: 8 });
        for k in 0..20u64 {
            p.record(0, EventKind::SyncArrive, 3, k);
        }
        let d = p.snapshot();
        assert_eq!(d.events.len(), 8);
        assert_eq!(d.dropped, 12);
        assert_eq!(d.attempted(), 20);
        // The live window is the newest events, oldest-first.
        let args: Vec<u64> = d.events.iter().map(|e| e.arg).collect();
        assert_eq!(args, (12..20).collect::<Vec<u64>>());
    }

    #[test]
    fn snapshot_merges_tracks_in_time_order() {
        let p = Profiler::new(3, ProfileOptions::default());
        p.record_at(2, EventKind::SyncArrive, 0, 0, 30);
        p.record_at(0, EventKind::SyncArrive, 0, 0, 10);
        p.record_at(1, EventKind::SyncRelease, 0, 5, 20);
        let d = p.snapshot();
        let ts: Vec<u64> = d.events.iter().map(|e| e.t_ns).collect();
        assert_eq!(ts, vec![10, 20, 30]);
        assert_eq!(d.dropped, 0);
        assert_eq!(d.tracks, 3);
    }

    #[test]
    fn epoch_stamps_later_events() {
        let p = Profiler::new(2, ProfileOptions::default());
        p.record(0, EventKind::SyncArrive, 0, 0);
        p.bump_epoch();
        p.record(0, EventKind::SyncArrive, 0, 1);
        let d = p.snapshot();
        assert_eq!(d.events[0].epoch, 0);
        assert_eq!(d.events[1].epoch, 1);
        assert_eq!(p.supervisor_track(), 1);
    }

    #[test]
    fn concurrent_single_writer_tracks_lose_nothing() {
        let p = Arc::new(Profiler::new(4, ProfileOptions { capacity: 1 << 12 }));
        let n = 1000u64;
        let handles: Vec<_> = (0..4usize)
            .map(|t| {
                let p = Arc::clone(&p);
                std::thread::spawn(move || {
                    for k in 0..n {
                        p.record(t, EventKind::SyncArrive, t as u32, k);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let d = p.snapshot();
        assert_eq!(d.events.len(), 4 * n as usize);
        assert_eq!(d.dropped, 0);
        for t in 0..4u16 {
            let mine: Vec<u64> = d
                .events
                .iter()
                .filter(|e| e.track == t)
                .map(|e| e.arg)
                .collect();
            assert_eq!(mine.len(), n as usize);
            // Per-track order survives the time-sorted merge (timestamps
            // are monotone per writer).
            assert!(mine.windows(2).all(|w| w[0] < w[1]));
        }
    }

    #[test]
    fn ambient_recorder_installs_and_restores() {
        let p = Arc::new(Profiler::new(2, ProfileOptions::default()));
        emit(EventKind::EscalateYield, NO_SITE, 1); // no recorder: no-op
        {
            let _g = install(Arc::clone(&p), 1);
            emit(EventKind::EscalateYield, NO_SITE, 7);
        }
        emit(EventKind::EscalatePark, NO_SITE, 2); // uninstalled again
        let d = p.snapshot();
        assert_eq!(d.events.len(), 1);
        assert_eq!(d.events[0].kind, EventKind::EscalateYield);
        assert_eq!(d.events[0].track, 1);
        assert_eq!(d.events[0].arg, 7);
    }

    #[test]
    fn rebase_only_applies_to_unused_profilers() {
        let p = Profiler::new(1, ProfileOptions::default());
        std::thread::sleep(std::time::Duration::from_millis(2));
        p.rebase_if_unused();
        let t = p.now_ns();
        assert!(t < 2_000_000, "clock rebased to ~0, got {t}");
        p.record(0, EventKind::RegionBegin, NO_SITE, 0);
        let before = p.snapshot().events[0].t_ns;
        std::thread::sleep(std::time::Duration::from_millis(2));
        p.rebase_if_unused(); // no-op: events exist
        assert_eq!(p.snapshot().events[0].t_ns, before);
        assert!(p.now_ns() > before);
    }

    #[test]
    fn epoch_saturates_at_u16_max() {
        let p = Profiler::new(1, ProfileOptions::default());
        for _ in 0..(u16::MAX as u32 + 10) {
            p.bump_epoch();
        }
        assert_eq!(p.epoch(), u16::MAX);
        p.record(0, EventKind::SyncArrive, 0, 0);
        assert_eq!(p.snapshot().events[0].epoch, u16::MAX);
    }

    #[test]
    fn event_is_compact() {
        // The decoded struct; ring storage is the 3-word Slot (24B).
        assert!(std::mem::size_of::<ProfileEvent>() <= 32);
    }

    #[test]
    fn slot_encoding_round_trips_every_field() {
        for &kind in EventKind::ALL.iter() {
            let want = ProfileEvent {
                t_ns: u64::MAX - 1,
                arg: 7,
                site: 1_234_567,
                track: 513,
                epoch: 40_000,
                kind,
            };
            let ring = EventRing::new(2);
            ring.push(want);
            let (evs, dropped) = ring.drain();
            assert_eq!(dropped, 0);
            assert_eq!(evs, vec![want]);
            assert_eq!(EventKind::from_u8(kind as u8), kind);
        }
    }
}
