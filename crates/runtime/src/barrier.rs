//! Barrier implementations: sense-reversing central barrier and a
//! k-ary dissemination barrier.
//!
//! The central barrier is the classic shared-memory barrier whose cost
//! grows with the processor count (the motivation figure of the paper,
//! after Chen/Su/Yew); the dissemination barrier trades single-atomic
//! contention for logarithmic depth, with the fan-in (radix)
//! configurable between 2 and 8 — wider trees are shallower but put
//! more arrivals on each flag, the trade-off the 1024-core RISC-V
//! barrier study measures.
//!
//! Both barriers are pure-atomic on their fast path: a wait is a CAS
//! or fetch-add plus a [`SpinWait`] poll loop, with no clock reads, no
//! locks, and no watchdog traffic. The `*_until` variants layer the
//! sampled watchdog of [`crate::fault`] on top for fault detection.

use crate::fault::{SyncError, WaitPoll, Watchdog};
use crate::spin::{SpinPolicy, SpinWait};
use crate::stats::{SyncKind, SyncStats};
use crossbeam::utils::CachePadded;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Bits of the central barrier's packed state word holding the arrival
/// count; the remaining (upper) bits hold the episode epoch.
const COUNT_BITS: u32 = 16;
const COUNT_MASK: u64 = (1 << COUNT_BITS) - 1;

/// Epoch distance [`CentralBarrier::reset`] jumps. Any straggler from
/// the abandoned episode carries an epoch within one of the old value,
/// so after the jump its compare-exchange can never match the live
/// word — the arrival is rejected as stale instead of landing in the
/// fresh episode as a phantom.
const RESET_STRIDE: u64 = 1 << 20;

/// Thread-local episode stamp for [`CentralBarrier::wait`]. Start from
/// [`Default`] (a fresh stamp adopts the barrier's current epoch on
/// first use) and pass the same variable to every wait; after a
/// [`CentralBarrier::reset`], start again from a fresh stamp.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BarrierEpoch(Option<u64>);

/// How one arrival at the central barrier resolved.
enum Arrival {
    /// This was the last arrival: the episode is complete.
    Released,
    /// Arrived early; wait until the epoch moves past the payload.
    Wait(u64),
    /// The caller's episode no longer exists (a reset or teardown
    /// discarded it); the arrival was *not* counted.
    Stale,
}

/// Sense-reversing centralized barrier.
///
/// The entire barrier is one atomic word packing `(epoch, arrivals)`.
/// The epoch is the generalized sense: each processor keeps a
/// thread-local [`BarrierEpoch`] and an episode completes when the last
/// arrival advances the epoch (implicitly zeroing the count in the same
/// compare-exchange). Packing count and epoch together is what closes
/// the classic reset race: an arrival is a compare-exchange that only
/// succeeds against the exact episode the caller belongs to, so a
/// straggler racing [`CentralBarrier::reset`] is rejected as stale
/// instead of contaminating the fresh episode's count and releasing a
/// later barrier early.
pub struct CentralBarrier {
    n: usize,
    /// Packed `(epoch << COUNT_BITS) | arrivals`.
    state: CachePadded<AtomicU64>,
    policy: SpinPolicy,
    stats: Option<Arc<SyncStats>>,
}

impl CentralBarrier {
    /// A barrier for `n` processors.
    pub fn new(n: usize) -> Self {
        assert!(n >= 1);
        assert!(
            (n as u64) < COUNT_MASK,
            "central barrier supports at most {} processors",
            COUNT_MASK - 1
        );
        CentralBarrier {
            n,
            state: CachePadded::new(AtomicU64::new(0)),
            policy: SpinPolicy::auto(),
            stats: None,
        }
    }

    /// Attach instrumentation.
    pub fn with_stats(mut self, stats: Arc<SyncStats>) -> Self {
        self.stats = Some(stats);
        self
    }

    /// Override the spin → yield → park escalation policy.
    pub fn with_policy(mut self, policy: SpinPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Number of participating processors.
    pub fn nprocs(&self) -> usize {
        self.n
    }

    /// The barrier's current episode epoch (diagnostics and tests).
    pub fn epoch(&self) -> u64 {
        self.state.load(Ordering::Acquire) >> COUNT_BITS
    }

    /// Register one arrival for the episode `local` belongs to.
    fn arrive(&self, local: &mut BarrierEpoch) -> Arrival {
        let mut s = self.state.load(Ordering::Acquire);
        loop {
            let epoch = s >> COUNT_BITS;
            let count = s & COUNT_MASK;
            let e = local.0.unwrap_or(epoch);
            if e != epoch {
                // The episode this stamp belongs to is gone (reset or
                // completed without us — only possible mid-teardown).
                // Re-sync so the caller's next wait joins the live
                // episode, and reject the arrival.
                local.0 = Some(epoch);
                return Arrival::Stale;
            }
            let last = count + 1 == self.n as u64;
            let next = if last {
                epoch.wrapping_add(1) << COUNT_BITS
            } else {
                s + 1
            };
            match self
                .state
                .compare_exchange_weak(s, next, Ordering::AcqRel, Ordering::Acquire)
            {
                Ok(_) => {
                    local.0 = Some(epoch.wrapping_add(1));
                    return if last {
                        Arrival::Released
                    } else {
                        Arrival::Wait(epoch)
                    };
                }
                Err(cur) => s = cur,
            }
        }
    }

    /// Block until all `n` processors have arrived. `local` is the
    /// caller's thread-local episode stamp (start from `Default`, pass
    /// the same variable every time).
    ///
    /// If the caller's episode was discarded by a concurrent
    /// [`CentralBarrier::reset`] (region teardown), the wait returns
    /// immediately without contributing an arrival — the guarded
    /// variant reports this as [`SyncError::StaleGeneration`].
    pub fn wait(&self, local: &mut BarrierEpoch) {
        let t0 = self.stats.as_ref().map(|_| Instant::now());
        match self.arrive(local) {
            Arrival::Released => {
                if let Some(s) = &self.stats {
                    s.barrier_episode();
                }
            }
            Arrival::Stale => return,
            Arrival::Wait(e) => {
                let mut sw = SpinWait::new(self.policy);
                while self.state.load(Ordering::Acquire) >> COUNT_BITS == e {
                    sw.snooze();
                }
                if let Some(s) = &self.stats {
                    s.escalation(sw.effort());
                }
            }
        }
        if let (Some(s), Some(t0)) = (&self.stats, t0) {
            s.barrier_arrival(t0.elapsed());
        }
    }

    /// Re-arm the barrier for a fresh region attempt by jumping the
    /// epoch [`RESET_STRIDE`] episodes forward with a zero count. A
    /// failed episode leaves stragglers holding stale local stamps; the
    /// jump guarantees their late arrivals can never match the live
    /// word, so they resolve as stale no-ops instead of phantom
    /// arrivals that would release a post-reset episode early. The
    /// recovery supervisor calls this between attempts — only after
    /// every worker has been joined, with callers starting from fresh
    /// `Default` stamps.
    pub fn reset(&self) {
        let epoch = self.state.load(Ordering::Acquire) >> COUNT_BITS;
        self.state.store(
            epoch.wrapping_add(RESET_STRIDE) << COUNT_BITS,
            Ordering::Release,
        );
    }

    /// As [`CentralBarrier::wait`], but guarded: returns
    /// [`SyncError::DeadlineExceeded`] (attributed to `site`/`pid`)
    /// instead of hanging when a peer never arrives, bails out on
    /// region poison, and reports a reset-discarded episode as
    /// [`SyncError::StaleGeneration`]. A failed episode leaves the
    /// barrier state unusable for further waits — the region must be
    /// torn down and the barrier [`reset`](CentralBarrier::reset)
    /// before any retry.
    pub fn wait_until(
        &self,
        local: &mut BarrierEpoch,
        wd: &Watchdog,
        site: usize,
        pid: usize,
    ) -> Result<(), SyncError> {
        let t0 = self.stats.as_ref().map(|_| Instant::now());
        match self.arrive(local) {
            Arrival::Released => {
                if let Some(s) = &self.stats {
                    s.barrier_episode();
                }
            }
            Arrival::Stale => return Err(SyncError::StaleGeneration { site, pid }),
            Arrival::Wait(e) => {
                // Progress is the arrival count: `expected` is full
                // attendance, `observed` how many had arrived (the
                // epoch advancing is the real exit condition).
                let effort = wd.guarded_wait(
                    site,
                    pid,
                    SyncKind::Barrier,
                    self.n as u64,
                    self.policy,
                    || {
                        let s = self.state.load(Ordering::Acquire);
                        if s >> COUNT_BITS != e {
                            WaitPoll::Ready
                        } else {
                            WaitPoll::Pending(s & COUNT_MASK)
                        }
                    },
                )?;
                if let Some(s) = &self.stats {
                    s.escalation(effort);
                }
            }
        }
        if let (Some(s), Some(t0)) = (&self.stats, t0) {
            s.barrier_arrival(t0.elapsed());
        }
        Ok(())
    }
}

/// A k-ary dissemination barrier.
///
/// In round `r` processor `p` signals its `radix - 1` partners at
/// distances `j * radix^r` (mod `n`, for `j` in `1..radix`) and waits
/// until it has received all of round `r`'s signals; after
/// `ceil(log_radix n)` rounds every processor has transitively heard
/// from every other. Radix 2 is the classic dissemination barrier
/// (most rounds, one flag update each); radix 8 flattens the tree to a
/// third of the depth at 8× the per-round fan-out. [`TreeBarrier::new`]
/// picks a topology-aware default.
pub struct TreeBarrier {
    n: usize,
    radix: usize,
    rounds: usize,
    // One flag per (round, processor), counting signals received. Each
    // episode adds exactly `radix - 1` signals per flag, so the wait
    // target for episode `e` is `e * (radix - 1)`.
    flags: Vec<Vec<CachePadded<AtomicU64>>>,
    policy: SpinPolicy,
    stats: Option<Arc<SyncStats>>,
}

impl TreeBarrier {
    /// A dissemination barrier for `n` processors with the
    /// topology-aware default fan-in (see [`TreeBarrier::default_radix`]).
    pub fn new(n: usize) -> Self {
        Self::with_radix(n, Self::default_radix(n))
    }

    /// The default fan-in for a team of `n`: a wide (4-ary) tree when
    /// the team fits the machine — fewer rounds, and the extra flag
    /// traffic lands on cores that would otherwise idle — and the
    /// classic binary dissemination when the team oversubscribes the
    /// host (each round's waits already cost a reschedule; keep them
    /// cheap).
    pub fn default_radix(n: usize) -> usize {
        let cores = std::thread::available_parallelism()
            .map(|c| c.get())
            .unwrap_or(1);
        if n > 2 && n <= cores {
            4
        } else {
            2
        }
    }

    /// A dissemination barrier with an explicit fan-in (`2..=8`).
    pub fn with_radix(n: usize, radix: usize) -> Self {
        assert!(n >= 1);
        assert!(
            (2..=8).contains(&radix),
            "tree barrier radix must be in 2..=8, got {radix}"
        );
        let mut rounds = 0usize;
        let mut span = 1usize;
        while span < n {
            span = span.saturating_mul(radix);
            rounds += 1;
        }
        let flags = (0..rounds)
            .map(|_| {
                (0..n)
                    .map(|_| CachePadded::new(AtomicU64::new(0)))
                    .collect()
            })
            .collect();
        TreeBarrier {
            n,
            radix,
            rounds,
            flags,
            policy: SpinPolicy::auto(),
            stats: None,
        }
    }

    /// Attach instrumentation.
    pub fn with_stats(mut self, stats: Arc<SyncStats>) -> Self {
        self.stats = Some(stats);
        self
    }

    /// Override the spin → yield → park escalation policy.
    pub fn with_policy(mut self, policy: SpinPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Number of participating processors.
    pub fn nprocs(&self) -> usize {
        self.n
    }

    /// The configured fan-in.
    pub fn radix(&self) -> usize {
        self.radix
    }

    /// Number of dissemination rounds (`ceil(log_radix n)`).
    pub fn rounds(&self) -> usize {
        self.rounds
    }

    /// Send round `r`'s signals from `pid` (each partner's flag gains
    /// one; by symmetry every processor also receives `radix - 1`).
    fn signal_round(&self, r: usize, pid: usize) {
        let mut dist = 1usize;
        for _ in 0..r {
            dist *= self.radix;
        }
        for j in 1..self.radix {
            let to = (pid + j * dist) % self.n;
            self.flags[r][to].fetch_add(1, Ordering::AcqRel);
        }
    }

    /// Block processor `pid` until all processors arrive. `epoch` is the
    /// caller's thread-local episode counter (start at 0, pass the same
    /// variable every time).
    pub fn wait(&self, pid: usize, epoch: &mut usize) {
        let t0 = self.stats.as_ref().map(|_| Instant::now());
        *epoch += 1;
        let target = (*epoch as u64) * (self.radix as u64 - 1);
        for r in 0..self.rounds {
            self.signal_round(r, pid);
            let mut sw = SpinWait::new(self.policy);
            while self.flags[r][pid].load(Ordering::Acquire) < target {
                sw.snooze();
            }
            if let Some(s) = &self.stats {
                s.escalation(sw.effort());
            }
        }
        if let Some(s) = &self.stats {
            if pid == 0 {
                s.barrier_episode();
            }
            if let Some(t0) = t0 {
                s.barrier_arrival(t0.elapsed());
            }
        }
    }

    /// Re-arm the barrier for a fresh region attempt: zero every
    /// dissemination flag. Only legal after all workers have been
    /// joined; callers must restart from a fresh zero epoch.
    pub fn reset(&self) {
        for round in &self.flags {
            for f in round {
                f.store(0, Ordering::Release);
            }
        }
    }

    /// As [`TreeBarrier::wait`], but guarded: each dissemination round
    /// is deadline-bounded, returning [`SyncError::DeadlineExceeded`]
    /// (attributed to `site`/`pid`) instead of hanging, and bailing out
    /// on region poison. A failed episode leaves the barrier state
    /// unusable for further waits — the region must be torn down and
    /// the barrier [`reset`](TreeBarrier::reset) before any retry.
    pub fn wait_until(
        &self,
        pid: usize,
        epoch: &mut usize,
        wd: &Watchdog,
        site: usize,
    ) -> Result<(), SyncError> {
        let t0 = self.stats.as_ref().map(|_| Instant::now());
        *epoch += 1;
        let target = (*epoch as u64) * (self.radix as u64 - 1);
        for r in 0..self.rounds {
            self.signal_round(r, pid);
            let flag = &self.flags[r][pid];
            let effort =
                wd.guarded_wait(site, pid, SyncKind::Barrier, target, self.policy, || {
                    let cur = flag.load(Ordering::Acquire);
                    if cur >= target {
                        WaitPoll::Ready
                    } else {
                        WaitPoll::Pending(cur)
                    }
                })?;
            if let Some(s) = &self.stats {
                s.escalation(effort);
            }
        }
        if let Some(s) = &self.stats {
            if pid == 0 {
                s.barrier_episode();
            }
            if let Some(t0) = t0 {
                s.barrier_arrival(t0.elapsed());
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    fn hammer_central(n: usize, iters: usize) {
        let b = Arc::new(CentralBarrier::new(n));
        let phase = Arc::new(AtomicU64::new(0));
        let handles: Vec<_> = (0..n)
            .map(|_| {
                let b = Arc::clone(&b);
                let phase = Arc::clone(&phase);
                std::thread::spawn(move || {
                    let mut local = BarrierEpoch::default();
                    for k in 0..iters {
                        // Everyone must observe the same phase before and
                        // after each barrier.
                        let before = phase.load(Ordering::SeqCst);
                        assert!(before >= k as u64);
                        b.wait(&mut local);
                        phase.fetch_max(k as u64 + 1, Ordering::SeqCst);
                        b.wait(&mut local);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(phase.load(Ordering::SeqCst), iters as u64);
    }

    #[test]
    fn central_barrier_synchronizes() {
        hammer_central(4, 200);
    }

    #[test]
    fn central_barrier_single_processor() {
        let b = CentralBarrier::new(1);
        let mut local = BarrierEpoch::default();
        for _ in 0..10 {
            b.wait(&mut local);
        }
        assert_eq!(b.epoch(), 10);
    }

    #[test]
    fn central_barrier_counts_episodes() {
        let stats = Arc::new(SyncStats::new());
        let b = Arc::new(CentralBarrier::new(3).with_stats(Arc::clone(&stats)));
        let handles: Vec<_> = (0..3)
            .map(|_| {
                let b = Arc::clone(&b);
                std::thread::spawn(move || {
                    let mut local = BarrierEpoch::default();
                    for _ in 0..50 {
                        b.wait(&mut local);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(stats.barrier_episodes_count(), 50);
        assert_eq!(stats.barrier_arrivals_count(), 150);
    }

    #[test]
    fn guarded_barriers_bound_a_missing_arrival() {
        use crate::fault::{SyncError, Watchdog};
        use std::time::Duration;
        // Only 1 of 2 processors ever arrives: both barrier kinds must
        // report a deadline at the right site instead of hanging.
        let wd = Watchdog::new(Duration::from_millis(40));
        let b = CentralBarrier::new(2);
        let mut local = BarrierEpoch::default();
        match b.wait_until(&mut local, &wd, 9, 0).unwrap_err() {
            SyncError::DeadlineExceeded {
                site: 9,
                pid: 0,
                kind: SyncKind::Barrier,
                ..
            } => {}
            other => panic!("central: {other:?}"),
        }
        let t = TreeBarrier::new(2);
        let mut epoch = 0;
        match t.wait_until(0, &mut epoch, &wd, 11).unwrap_err() {
            SyncError::DeadlineExceeded {
                site: 11,
                pid: 0,
                kind: SyncKind::Barrier,
                ..
            } => {}
            other => panic!("tree: {other:?}"),
        }
    }

    #[test]
    fn guarded_barriers_complete_when_all_arrive() {
        use crate::fault::Watchdog;
        use std::time::Duration;
        let wd = Arc::new(Watchdog::new(Duration::from_secs(30)));
        for n in [1usize, 3, 4] {
            let b = Arc::new(CentralBarrier::new(n));
            let t = Arc::new(TreeBarrier::new(n));
            let handles: Vec<_> = (0..n)
                .map(|pid| {
                    let (b, t, wd) = (Arc::clone(&b), Arc::clone(&t), Arc::clone(&wd));
                    std::thread::spawn(move || {
                        let mut local = BarrierEpoch::default();
                        let mut epoch = 0;
                        for _ in 0..50 {
                            b.wait_until(&mut local, &wd, 0, pid).unwrap();
                            t.wait_until(pid, &mut epoch, &wd, 1).unwrap();
                        }
                    })
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
        }
    }

    #[test]
    fn reset_rearms_a_failed_central_episode() {
        use crate::fault::Watchdog;
        use std::time::Duration;
        // One of two processors times out, leaving a stranded arrival
        // in the count; after reset (and fresh local stamps) the
        // barrier completes episodes again.
        let wd = Watchdog::new(Duration::from_millis(30));
        let b = Arc::new(CentralBarrier::new(2));
        let mut local = BarrierEpoch::default();
        assert!(b.wait_until(&mut local, &wd, 0, 0).is_err());
        b.reset();
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let b = Arc::clone(&b);
                std::thread::spawn(move || {
                    let mut local = BarrierEpoch::default();
                    for _ in 0..20 {
                        b.wait(&mut local);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn reset_rearms_a_failed_tree_episode() {
        use crate::fault::Watchdog;
        use std::time::Duration;
        let wd = Watchdog::new(Duration::from_millis(30));
        let t = Arc::new(TreeBarrier::new(3));
        let mut epoch = 0;
        assert!(t.wait_until(0, &mut epoch, &wd, 0).is_err());
        t.reset();
        let handles: Vec<_> = (0..3)
            .map(|pid| {
                let t = Arc::clone(&t);
                std::thread::spawn(move || {
                    let mut epoch = 0;
                    for _ in 0..20 {
                        t.wait(pid, &mut epoch);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
    }

    /// The mid-flight reset hazard (satellite of ISSUE 6): a straggler
    /// from a wedged episode whose final arrival races the supervisor's
    /// reset must never land in the fresh episode — the classic
    /// count-based barrier counted it as a phantom arrival, releasing
    /// the next episode one processor early with a stale sense.
    #[test]
    fn reset_racing_a_stragglers_final_arrival_is_rejected() {
        use crate::fault::{SyncError, Watchdog};
        use std::time::Duration;
        let wd = Watchdog::new(Duration::from_millis(30));
        let b = Arc::new(CentralBarrier::new(2));

        // A completed warm-up episode gives both processors stamps for
        // epoch 1.
        {
            let b2 = Arc::clone(&b);
            let peer = std::thread::spawn(move || {
                let mut l = BarrierEpoch::default();
                b2.wait(&mut l);
                l
            });
            let mut l0 = BarrierEpoch::default();
            b.wait(&mut l0);
            let l1 = peer.join().unwrap();

            // Episode 1 wedges: P0 arrives and times out; P1 is the
            // straggler that has not arrived yet.
            let mut l0 = l0;
            assert!(b.wait_until(&mut l0, &wd, 7, 0).is_err());
            let epoch_before = b.epoch();

            // The supervisor resets while the straggler's arrival is
            // still in flight; the arrival lands only now.
            b.reset();
            let mut l1 = l1;
            b.wait(&mut l1); // must return immediately, contributing nothing

            // No phantom arrival: the fresh epoch's count is still
            // zero, so a lone arrival in the fresh episode must time
            // out rather than be released by the straggler's ghost.
            assert_eq!(b.epoch(), epoch_before + RESET_STRIDE);
            let mut f0 = BarrierEpoch::default();
            assert!(
                b.wait_until(&mut f0, &wd, 8, 0).is_err(),
                "stale straggler arrival pre-armed the fresh episode"
            );

            // And a stale *guarded* arrival is a diagnosed error, not a
            // silent no-op.
            b.reset();
            let mut stale = f0; // stamped for the pre-reset epoch
            match b.wait_until(&mut stale, &wd, 9, 1).unwrap_err() {
                SyncError::StaleGeneration { site: 9, pid: 1 } => {}
                other => panic!("expected StaleGeneration, got {other:?}"),
            }
        }

        // After the dust settles the barrier still completes clean
        // episodes with full attendance.
        b.reset();
        let phase = Arc::new(AtomicU64::new(0));
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let b = Arc::clone(&b);
                let phase = Arc::clone(&phase);
                std::thread::spawn(move || {
                    let mut l = BarrierEpoch::default();
                    for k in 0..50u64 {
                        assert!(phase.load(Ordering::SeqCst) >= k);
                        b.wait(&mut l);
                        phase.fetch_max(k + 1, Ordering::SeqCst);
                        b.wait(&mut l);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(phase.load(Ordering::SeqCst), 50);
    }

    /// Probabilistic companion to the deterministic reset-race test:
    /// hammer arrivals against concurrent resets and assert the barrier
    /// is always cleanly re-armable afterwards.
    #[test]
    fn concurrent_resets_never_corrupt_the_count() {
        use crate::fault::Watchdog;
        use std::time::Duration;
        let b = Arc::new(CentralBarrier::new(2));
        let wd = Watchdog::new(Duration::from_millis(25));
        for round in 0..200 {
            let straggler = {
                let b = Arc::clone(&b);
                std::thread::spawn(move || {
                    let mut l = BarrierEpoch::default();
                    // Arrival races the reset below; stale or counted,
                    // never blocking (episode n=2 cannot complete, but a
                    // wait on a discarded episode returns).
                    b.arrive(&mut l);
                })
            };
            if round % 2 == 0 {
                std::thread::yield_now();
            }
            b.reset();
            straggler.join().unwrap();
            b.reset();
            // Invariant: after reset the fresh episode needs BOTH
            // arrivals — one alone must time out.
            let mut l = BarrierEpoch::default();
            assert!(
                b.wait_until(&mut l, &wd, 0, 0).is_err(),
                "round {round}: a racing arrival leaked into the fresh episode"
            );
            b.reset();
        }
    }

    #[test]
    fn tree_barrier_synchronizes_across_radices() {
        for radix in [2usize, 3, 4, 8] {
            for n in [1usize, 2, 3, 5, 8] {
                let b = Arc::new(TreeBarrier::with_radix(n, radix));
                let counter = Arc::new(AtomicU64::new(0));
                let handles: Vec<_> = (0..n)
                    .map(|pid| {
                        let b = Arc::clone(&b);
                        let counter = Arc::clone(&counter);
                        std::thread::spawn(move || {
                            let mut epoch = 0;
                            for k in 0..100u64 {
                                counter.fetch_add(1, Ordering::SeqCst);
                                b.wait(pid, &mut epoch);
                                // After the barrier all n increments of
                                // this round are visible.
                                assert!(counter.load(Ordering::SeqCst) >= (k + 1) * n as u64);
                                b.wait(pid, &mut epoch);
                            }
                        })
                    })
                    .collect();
                for h in handles {
                    h.join().unwrap();
                }
                assert_eq!(
                    counter.load(Ordering::SeqCst),
                    100 * n as u64,
                    "radix {radix}, n {n}"
                );
            }
        }
    }

    #[test]
    fn tree_rounds_shrink_with_radix() {
        assert_eq!(TreeBarrier::with_radix(8, 2).rounds(), 3);
        assert_eq!(TreeBarrier::with_radix(8, 4).rounds(), 2);
        assert_eq!(TreeBarrier::with_radix(8, 8).rounds(), 1);
        assert_eq!(TreeBarrier::with_radix(1, 2).rounds(), 0);
        assert_eq!(TreeBarrier::with_radix(9, 8).rounds(), 2);
        let b = TreeBarrier::new(4);
        assert!((2..=8).contains(&b.radix()));
    }
}
