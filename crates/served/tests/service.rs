//! In-process service integration tests: admission control, deadlines,
//! crash isolation with snapshot rejoin, and graceful drain.

use served::{
    ClientError, ErrorCode, OptimizeRequest, PlanKind, Service, ServiceChaos, ServiceClient,
    ServiceConfig, ServiceFault,
};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

const TINY: &str = "program tiny\n\
sym n\n\
array A(n) block\n\
array B(n) block\n\
doall i = 0, n-1\n\
  B(i) = A(i) * 2.0\n\
end\n\
doall j = 0, n-1\n\
  A(j) = B(j) + 1.0\n\
end\n";

fn tiny_request(id: u64, plan: PlanKind) -> OptimizeRequest {
    OptimizeRequest {
        id,
        program: TINY.to_string(),
        nprocs: 4,
        binds: vec![("n".to_string(), 24)],
        plan,
        deadline_ms: None,
    }
}

fn tmp_dir(tag: &str) -> std::path::PathBuf {
    let d = std::env::temp_dir().join(format!("beoptd-test-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

fn quiet_config() -> ServiceConfig {
    ServiceConfig {
        addr: "127.0.0.1:0".to_string(),
        nshards: 1,
        ..Default::default()
    }
}

#[test]
fn serves_plans_and_answers_bad_requests_structurally() {
    let service = Service::start(quiet_config()).unwrap();
    let client = ServiceClient::new(service.addr.to_string());
    client.ping().unwrap();

    let a = client
        .optimize(&tiny_request(1, PlanKind::Optimized))
        .unwrap();
    let b = client
        .optimize(&tiny_request(2, PlanKind::Optimized))
        .unwrap();
    assert_eq!(
        a.explain.to_string_compact(),
        b.explain.to_string_compact(),
        "same request must yield byte-identical explain documents"
    );
    assert!(!a.warm_hint, "first compile is cold");
    assert!(b.warm_hint, "repeat compile must hit the warm memo");

    // Unknown symbol: structured bad_request, never retried.
    let mut bad = tiny_request(3, PlanKind::Optimized);
    bad.binds = vec![("nope".to_string(), 1)];
    match client.optimize(&bad) {
        Err(ClientError::Bad(e)) => {
            assert_eq!(e.code, ErrorCode::BadRequest);
            assert!(e.message.contains("nope"), "{}", e.message);
        }
        other => panic!("expected bad_request, got {other:?}"),
    }
    // Parse error too.
    let mut garbled = tiny_request(4, PlanKind::Optimized);
    garbled.program = "this is not a program".to_string();
    assert!(matches!(
        client.optimize(&garbled),
        Err(ClientError::Bad(_))
    ));

    service.stop();
    service.wait();
    let st = service.stats();
    assert_eq!(st.shards[0].served, 2);
    assert_eq!(st.shards[0].failed, 2);
}

/// Delays every request long enough that a 1-deep queue saturates
/// under a concurrent burst: the extra clients must be shed with
/// `overloaded` (and single-attempt clients surface that), while
/// retrying clients eventually all succeed.
struct SlowWorker;

impl ServiceChaos for SlowWorker {
    fn at_request(&self, _shard: usize, _seq: u64) -> Option<ServiceFault> {
        Some(ServiceFault::Delay(Duration::from_millis(120)))
    }
}

#[test]
fn overload_sheds_with_retry_after_and_retries_recover() {
    let service = Service::start(ServiceConfig {
        nshards: 1,
        queue_cap: 1,
        chaos: Some(Arc::new(SlowWorker)),
        ..quiet_config()
    })
    .unwrap();
    let addr = service.addr.to_string();

    // Burst of 5 single-attempt clients against a queue of depth 1
    // with a 120 ms service time: some must be shed.
    let sheds = Arc::new(AtomicU64::new(0));
    let okd = Arc::new(AtomicU64::new(0));
    let handles: Vec<_> = (0..5)
        .map(|i| {
            let addr = addr.clone();
            let sheds = sheds.clone();
            let okd = okd.clone();
            std::thread::spawn(move || {
                let mut client = ServiceClient::new(addr);
                client.policy.max_attempts = 1;
                match client.optimize(&tiny_request(i, PlanKind::ForkJoin)) {
                    Ok(_) => {
                        okd.fetch_add(1, Ordering::Relaxed);
                    }
                    Err(ClientError::Exhausted { last: Some(e), .. }) => {
                        assert_eq!(e.code, ErrorCode::Overloaded);
                        assert!(e.retry_after_ms.is_some(), "shed must carry a hint");
                        sheds.fetch_add(1, Ordering::Relaxed);
                    }
                    Err(other) => panic!("unexpected failure: {other}"),
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    assert!(
        sheds.load(Ordering::Relaxed) > 0,
        "a 5-deep burst into a 1-deep queue must shed"
    );
    assert!(okd.load(Ordering::Relaxed) >= 1);
    assert!(service.stats().shards[0].shed > 0);

    // A client with the full backoff ladder absorbs the same overload.
    let client = ServiceClient::new(addr);
    client
        .optimize(&tiny_request(99, PlanKind::ForkJoin))
        .unwrap();

    service.stop();
    service.wait();
}

#[test]
fn expired_deadlines_are_answered_not_compiled() {
    let service = Service::start(ServiceConfig {
        nshards: 1,
        chaos: Some(Arc::new(SlowWorker)), // 120 ms injected stall
        ..quiet_config()
    })
    .unwrap();
    let client = ServiceClient::new(service.addr.to_string());
    let mut req = tiny_request(1, PlanKind::ForkJoin);
    req.deadline_ms = Some(10);
    match client.optimize(&req) {
        Err(ClientError::Deadline(e)) => assert_eq!(e.code, ErrorCode::DeadlineExceeded),
        other => panic!("expected deadline_exceeded, got {other:?}"),
    }
    service.stop();
    service.wait();
    assert_eq!(service.stats().shards[0].deadline_miss, 1);
    assert_eq!(service.stats().shards[0].served, 0);
}

/// Kills the worker on exactly one request sequence number.
struct KillOnce {
    at: u64,
}

impl ServiceChaos for KillOnce {
    fn at_request(&self, _shard: usize, seq: u64) -> Option<ServiceFault> {
        (seq == self.at).then_some(ServiceFault::KillShard)
    }
}

#[test]
fn shard_crash_is_answered_retried_and_rejoined_from_snapshot() {
    let dir = tmp_dir("crash-rejoin");
    let service = Service::start(ServiceConfig {
        nshards: 1,
        snapshot_dir: Some(dir.clone()),
        snapshot_every: 1, // snapshot after every served request
        supervisor_poll: Duration::from_millis(5),
        chaos: Some(Arc::new(KillOnce { at: 2 })),
        ..quiet_config()
    })
    .unwrap();
    let client = ServiceClient::new(service.addr.to_string());

    // Requests 0 and 1 warm the memo and persist it.
    client
        .optimize(&tiny_request(0, PlanKind::Optimized))
        .unwrap();
    client
        .optimize(&tiny_request(1, PlanKind::Optimized))
        .unwrap();
    // Request seq 2 kills the worker mid-request; the client's retry
    // ladder must absorb the crash (the retry is seq 3).
    let r = client
        .optimize(&tiny_request(2, PlanKind::Optimized))
        .unwrap();
    assert!(
        r.warm_hint,
        "post-crash compile must be warm: the restarted worker rejoined from the snapshot"
    );

    service.stop();
    service.wait();
    let st = &service.stats().shards[0];
    assert_eq!(st.panics, 1);
    assert_eq!(st.restarts, 1);
    assert!(
        st.entries_loaded > 0,
        "restart must rejoin entries from the snapshot"
    );
    assert_eq!(st.snapshot_rejects, 0);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn graceful_drain_answers_queued_work_and_snapshots() {
    let dir = tmp_dir("drain");
    let service = Service::start(ServiceConfig {
        nshards: 1,
        snapshot_dir: Some(dir.clone()),
        snapshot_every: 0, // only the shutdown snapshot
        ..quiet_config()
    })
    .unwrap();
    let client = ServiceClient::new(service.addr.to_string());
    client
        .optimize(&tiny_request(1, PlanKind::Optimized))
        .unwrap();
    client.shutdown().unwrap();
    service.wait();
    // New work is refused once draining.
    assert!(client.ping().is_err() || service.is_shutting_down());
    let snap = dir.join("shard-0.fme");
    assert!(snap.is_file(), "drain must leave a final snapshot");
    let cache = ineq::FmeCache::new();
    assert!(matches!(
        ineq::load_snapshot(&cache, &snap),
        ineq::SnapshotLoad::Loaded { entries, .. } if entries > 0
    ));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn client_deadline_bounds_a_permanently_crashing_shard() {
    use served::{encode_reply, ErrorReply, Reply, Request};
    use std::io::{BufRead, BufReader, Write};

    // A bare listener standing in for a service whose shard crashes on
    // every request: each exchange is answered with a retryable
    // `shard_crashed` plus a retry_after hint. Without a client-side
    // budget, the default ladder would retry 9 times and sleep through
    // every max(backoff, hint) pause.
    let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let seen: Arc<std::sync::Mutex<Vec<Option<u64>>>> = Arc::default();
    let seen_srv = Arc::clone(&seen);
    std::thread::spawn(move || {
        for stream in listener.incoming() {
            let Ok(stream) = stream else { break };
            let mut reader = BufReader::new(stream.try_clone().unwrap());
            let mut line = String::new();
            if reader.read_line(&mut line).unwrap_or(0) == 0 {
                continue;
            }
            if let Ok(Request::Optimize(r)) = served::decode_request(line.trim_end()) {
                seen_srv.lock().unwrap().push(r.deadline_ms);
            }
            let reply = encode_reply(&Reply::Error(ErrorReply {
                id: 1,
                code: ErrorCode::ShardCrashed,
                message: "injected: shard crashes on every request".to_string(),
                retry_after_ms: Some(40),
            }));
            let mut w = stream;
            let _ = w.write_all(reply.as_bytes());
            let _ = w.write_all(b"\n");
        }
    });

    let mut client = ServiceClient::new(addr.to_string());
    client.total_deadline = Some(Duration::from_millis(150));
    let t0 = std::time::Instant::now();
    let err = client
        .optimize(&tiny_request(1, PlanKind::Optimized))
        .unwrap_err();
    let elapsed = t0.elapsed();

    // Terminal in bounded time: the budget, not the 9-attempt ladder
    // (whose pauses alone exceed 700 ms), decides when to stop.
    assert!(
        matches!(err, ClientError::BudgetSpent { attempts, .. } if attempts >= 1),
        "expected BudgetSpent, got: {err}"
    );
    assert!(
        elapsed < Duration::from_millis(700),
        "crashing shard must fail within the budget, took {elapsed:?}"
    );
    // Every attempt carried the remaining budget to the server, and
    // the propagated deadline only ever shrinks.
    let seen = seen.lock().unwrap();
    assert!(!seen.is_empty());
    let deadlines: Vec<u64> = seen
        .iter()
        .map(|d| d.expect("deadline propagated"))
        .collect();
    assert!(deadlines.iter().all(|&ms| ms <= 150));
    assert!(deadlines.windows(2).all(|w| w[1] <= w[0]), "{deadlines:?}");
}
