//! End-to-end soundness: for every benchmark kernel and several
//! processor counts, the optimized SPMD schedule must reproduce the
//! sequential semantics under adversarial virtual interleavings.

use barrier_elim::interp::{run_sequential, run_virtual, Mem, ScheduleOrder};
use barrier_elim::spmd_opt::{fork_join, optimize};
use barrier_elim::suite::{self, Scale};

/// Maximum tolerated divergence: reductions may reassociate, everything
/// else must match exactly.
const TOL: f64 = 1e-9;

fn check_kernel(name: &str, nprocs: i64) {
    let def = suite::by_name(name).unwrap();
    let built = (def.build)(Scale::Test);
    let bind = built.bindings(nprocs);
    let oracle = Mem::new(&built.prog, &bind);
    run_sequential(&built.prog, &bind, &oracle);

    for (label, plan) in [
        ("fork-join", fork_join(&built.prog, &bind)),
        ("optimized", optimize(&built.prog, &bind)),
    ] {
        for order in [
            ScheduleOrder::RoundRobin,
            ScheduleOrder::Reverse,
            ScheduleOrder::Random(7),
            ScheduleOrder::Random(1234),
        ] {
            let mem = Mem::new(&built.prog, &bind);
            run_virtual(&built.prog, &bind, &plan, &mem, order);
            let diff = mem.max_abs_diff(&oracle);
            assert!(
                diff <= TOL,
                "{name} ({label}, P={nprocs}, {order:?}): diverged by {diff:e}"
            );
        }
    }
}

macro_rules! kernel_tests {
    ($($name:ident),* $(,)?) => {
        $(
            mod $name {
                #[test]
                fn p1() { super::check_kernel(stringify!($name), 1); }
                #[test]
                fn p3() { super::check_kernel(stringify!($name), 3); }
                #[test]
                fn p4() { super::check_kernel(stringify!($name), 4); }
                #[test]
                fn p8() { super::check_kernel(stringify!($name), 8); }
            }
        )*
    };
}

kernel_tests!(
    jacobi2d,
    copy_chain,
    stencil3d,
    redblack,
    shallow,
    fdtd,
    cg_dense,
    tomcatv_mesh,
    livermore7,
    livermore18,
    adi,
    erlebacher,
    lu,
    tred2,
    matmul,
    mgrid,
    seidel_pipe,
    workvec,
    transpose,
);
