//! System simplification: implication testing, redundancy removal, and
//! rational sample points.
//!
//! Fourier-Motzkin elimination squares the constraint count in the worst
//! case per variable; dropping constraints implied by the rest keeps the
//! communication queries small. Sample points turn "feasible" verdicts
//! into concrete witnesses for diagnostics.

use crate::constraint::{Constraint, ConstraintKind};
use crate::linexpr::LinExpr;
use crate::rational::Rational;
use crate::system::System;
use crate::var::{VarId, VarTable};

impl System {
    /// Does the system imply `c`? (Checked by refutation: the system
    /// plus the negation of `c` must be infeasible. For equalities both
    /// strict sides are refuted.)
    ///
    /// Sound for integer reasoning: a `true` answer means every integer
    /// solution of the system satisfies `c`.
    pub fn implies(&self, vt: &VarTable, c: &Constraint) -> bool {
        match c.kind {
            ConstraintKind::GeZero => {
                // ¬(e >= 0)  ⇔  -e - 1 >= 0 over the integers.
                let mut neg = self.clone();
                neg.add_ge(-c.expr.clone() - LinExpr::constant(1));
                !neg.is_consistent(vt)
            }
            ConstraintKind::EqZero => {
                let mut lt = self.clone();
                lt.add_ge(-c.expr.clone() - LinExpr::constant(1));
                let mut gt = self.clone();
                gt.add_ge(c.expr.clone() - LinExpr::constant(1));
                !lt.is_consistent(vt) && !gt.is_consistent(vt)
            }
        }
    }

    /// Remove constraints implied by the remaining ones (quadratic in the
    /// constraint count; intended for presentation and for keeping
    /// long-lived systems small, not for the inner FME loop).
    pub fn remove_redundant(&self, vt: &VarTable) -> System {
        if self.is_contradictory() {
            return System::contradiction();
        }
        let mut kept: Vec<Constraint> = self.constraints().to_vec();
        let mut k = 0;
        while k < kept.len() {
            let candidate = kept[k].clone();
            let mut rest = System::new();
            for (j, c) in kept.iter().enumerate() {
                if j != k {
                    rest.push(c.clone());
                }
            }
            if rest.implies(vt, &candidate) {
                kept.remove(k);
            } else {
                k += 1;
            }
        }
        let mut out = System::new();
        for c in kept {
            out.push(c);
        }
        out
    }

    /// Find a *rational* point satisfying the system, by eliminating
    /// variables innermost-first and back-substituting midpoints of the
    /// resulting intervals. Returns `None` when the system is
    /// (rationally) infeasible.
    ///
    /// The point is a witness for the rational relaxation — FME's
    /// "feasible" verdicts — and is what diagnostic output shows when a
    /// communication test fires.
    ///
    /// Also returns `None` if exact arithmetic overflows while
    /// back-substituting — no witness rather than a panic.
    pub fn sample_point(&self, vt: &VarTable) -> Option<Vec<(VarId, Rational)>> {
        if self.is_contradictory() {
            return None;
        }
        let order = {
            // Eliminate in elimination order; assign in reverse.
            let vars = self.vars();
            vt.elimination_order()
                .into_iter()
                .filter(|v| vars.contains(v))
                .collect::<Vec<_>>()
        };
        // Chain of projected systems: proj[k] has order[..k] still free.
        let mut chain = Vec::with_capacity(order.len() + 1);
        chain.push(self.clone());
        for &v in &order {
            let next = chain.last().unwrap().eliminate(v);
            if next.is_contradictory() {
                return None;
            }
            chain.push(next);
        }
        if !chain.last().unwrap().is_empty() && !chain.last().unwrap().is_consistent(vt) {
            return None;
        }
        // Back-substitute: assign variables outermost-first.
        let mut assign: Vec<(VarId, Rational)> = Vec::new();
        for (k, &v) in order.iter().enumerate().rev() {
            // chain[k] mentions v plus already-assigned outer variables.
            let sys = &chain[k];
            let lookup = |x: VarId| -> Option<Rational> {
                assign.iter().find(|(a, _)| *a == x).map(|(_, r)| *r)
            };
            let mut lo: Option<Rational> = None;
            let mut hi: Option<Rational> = None;
            for c in sys.constraints() {
                let a = c.expr.coeff(v);
                if a == 0 {
                    continue;
                }
                // a*v + rest ⋈ 0 with rest evaluated at the assignment.
                let mut rest = c.expr.clone();
                rest.set_coeff(v, 0);
                let val = rest
                    .try_eval_rat(&|x| {
                        lookup(x).expect("inner variable leaked into projected system")
                    })
                    .ok()?;
                let bound = val.checked_neg().ok()?.checked_div(Rational::int(a)).ok()?;
                match (c.kind, a > 0) {
                    (ConstraintKind::GeZero, true) => {
                        lo = Some(lo.map_or(bound, |l| if bound > l { bound } else { l }));
                    }
                    (ConstraintKind::GeZero, false) => {
                        hi = Some(hi.map_or(bound, |h| if bound < h { bound } else { h }));
                    }
                    (ConstraintKind::EqZero, _) => {
                        lo = Some(lo.map_or(bound, |l| if bound > l { bound } else { l }));
                        hi = Some(hi.map_or(bound, |h| if bound < h { bound } else { h }));
                    }
                }
            }
            let value = match (lo, hi) {
                (Some(l), Some(h)) => {
                    if l > h {
                        return None; // numeric contradiction
                    }
                    // Prefer an integer point in the interval when one
                    // exists; otherwise the midpoint.
                    let li = l.ceil();
                    if Rational::int(li) <= h {
                        Rational::int(li)
                    } else {
                        l.checked_add(h).ok()?.checked_div(Rational::int(2)).ok()?
                    }
                }
                (Some(l), None) => Rational::int(l.ceil()),
                (None, Some(h)) => Rational::int(h.floor()),
                (None, None) => Rational::zero(),
            };
            assign.push((v, value));
        }
        assign.reverse();
        Some(assign)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::var::VarKind;

    fn table2() -> (VarTable, VarId, VarId) {
        let mut vt = VarTable::new();
        let i = vt.fresh("i", VarKind::LoopIndex);
        let j = vt.fresh("j", VarKind::LoopIndex);
        (vt, i, j)
    }

    #[test]
    fn implication_basics() {
        let (vt, i, _) = table2();
        let mut s = System::new();
        s.add_ge(LinExpr::var(i) - LinExpr::constant(5)); // i >= 5
                                                          // implies i >= 3
        assert!(s.implies(
            &vt,
            &Constraint::ge_zero(LinExpr::var(i) - LinExpr::constant(3))
        ));
        // does not imply i >= 6
        assert!(!s.implies(
            &vt,
            &Constraint::ge_zero(LinExpr::var(i) - LinExpr::constant(6))
        ));
        // i == 5 not implied (i could be larger)
        assert!(!s.implies(
            &vt,
            &Constraint::eq_zero(LinExpr::var(i) - LinExpr::constant(5))
        ));
    }

    #[test]
    fn equality_implication() {
        let (vt, i, _) = table2();
        let mut s = System::new();
        s.add_ge(LinExpr::var(i) - LinExpr::constant(5));
        s.add_ge(LinExpr::constant(5) - LinExpr::var(i));
        assert!(s.implies(
            &vt,
            &Constraint::eq_zero(LinExpr::var(i) - LinExpr::constant(5))
        ));
    }

    #[test]
    fn redundancy_removal_drops_weaker_bounds() {
        let (vt, i, _) = table2();
        let mut s = System::new();
        s.add_ge(LinExpr::var(i) - LinExpr::constant(5)); // i >= 5
        s.add_ge(LinExpr::var(i) - LinExpr::constant(3)); // i >= 3 (redundant)
        s.add_ge(LinExpr::constant(10) - LinExpr::var(i)); // i <= 10
        let r = s.remove_redundant(&vt);
        assert_eq!(r.len(), 2, "{r:?}");
    }

    #[test]
    fn sample_point_satisfies_system() {
        let (vt, i, j) = table2();
        let mut s = System::new();
        s.add_range(LinExpr::var(i), LinExpr::constant(2), LinExpr::constant(9));
        s.add_ge(LinExpr::var(j) - LinExpr::var(i) - LinExpr::constant(1)); // j >= i+1
        s.add_ge(LinExpr::constant(20) - LinExpr::var(j));
        let pt = s.sample_point(&vt).expect("feasible");
        let get = |v: VarId| pt.iter().find(|(a, _)| *a == v).unwrap().1;
        for c in s.constraints() {
            let val = c.expr.eval_rat(&|v| get(v));
            match c.kind {
                ConstraintKind::GeZero => assert!(val >= Rational::zero(), "{c:?} at {pt:?}"),
                ConstraintKind::EqZero => assert!(val.is_zero(), "{c:?} at {pt:?}"),
            }
        }
    }

    #[test]
    fn sample_point_none_for_infeasible() {
        let (vt, i, _) = table2();
        let mut s = System::new();
        s.add_range(LinExpr::var(i), LinExpr::constant(5), LinExpr::constant(2));
        assert!(s.sample_point(&vt).is_none());
    }

    #[test]
    fn sample_point_prefers_integers() {
        let (vt, i, _) = table2();
        let mut s = System::new();
        s.add_range(LinExpr::var(i), LinExpr::constant(3), LinExpr::constant(7));
        let pt = s.sample_point(&vt).unwrap();
        assert!(pt[0].1.is_integer());
    }
}
