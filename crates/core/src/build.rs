//! Region formation, the greedy barrier-elimination algorithm, and
//! baseline (fork-join) lowering.

use crate::plan::{Phase, PhaseKind, RItem, Region, SpmdProgram, SyncOp, TopItem};
use crate::sites::{
    loop_after_label, loop_bottom_label, phase_after_label, region_end_label, SlotKind,
};
use analysis::{
    loop_is_replicated, loop_partition, AnalysisConfig, AnalysisStats, Bindings, CommMode,
    CommOutcome, CommPattern, CommQuery, ProducerSpec,
};
use ir::{LhsRef, LoopKind, Node, NodeId, Program, StmtPath};

/// Does the subtree contain a parallel loop?
pub fn contains_par(prog: &Program, node: NodeId) -> bool {
    let mut found = false;
    prog.walk(node, &mut |id, _| {
        if let Node::Loop(l) = prog.node(id) {
            if l.kind == LoopKind::Par {
                found = true;
            }
        }
    });
    found
}

/// Can the node live inside an SPMD region?
///
/// Parallel loops can; assignments can (replicated or master-guarded);
/// sequential loops can when all their children can; guards can only
/// when they contain no parallel loop (they are then executed, whole, as
/// a guarded serial computation on the master).
pub fn spmdable(prog: &Program, node: NodeId) -> bool {
    match prog.node(node) {
        Node::Assign(_) => true,
        Node::Loop(l) => match l.kind {
            LoopKind::Par => true,
            LoopKind::Seq => l.body.iter().all(|&c| spmdable(prog, c)),
        },
        Node::Guard(g) => g.body.iter().all(|&c| !contains_par(prog, c)),
    }
}

struct LevelResult {
    items: Vec<RItem>,
    /// Statements not yet ordered with respect to whatever follows
    /// (everything since the last full barrier).
    residual: Vec<StmtPath>,
    saw_barrier: bool,
}

/// Optimizer configuration: which mechanisms are enabled. The default
/// enables everything (the paper's full optimizer); the ablations switch
/// individual mechanisms off.
#[derive(Clone, Copy, Debug)]
pub struct OptimizeOptions {
    /// Eliminate barriers proven communication-free.
    pub eliminate: bool,
    /// Replace neighbor-reach communication with post/wait flags.
    pub use_neighbor: bool,
    /// Replace unique-producer communication with counters.
    pub use_counters: bool,
    /// Replace fixed-distance communication with point-to-point pairwise
    /// counters (wavefront pipelining).
    pub use_pairwise: bool,
    /// Communication-analysis tuning (memoization + worker threads).
    /// Changes analysis speed only, never the plan or the decision log.
    pub analysis: AnalysisConfig,
}

impl Default for OptimizeOptions {
    fn default() -> Self {
        OptimizeOptions {
            eliminate: true,
            use_neighbor: true,
            use_counters: true,
            use_pairwise: true,
            analysis: AnalysisConfig::default(),
        }
    }
}

/// One decision of the greedy algorithm, for explanation output.
///
/// Every sync slot the optimizer examined gets one record: the
/// canonical site id (matching [`crate::sites::sync_sites`]), the
/// communication classification with its inequality-system evidence,
/// and what synchronization was placed and why.
#[derive(Clone, Debug)]
pub struct Decision {
    /// Canonical slot id in the plan's site walk.
    pub site: usize,
    /// Human-readable slot location (same string as the site walk).
    pub label: String,
    /// Structural slot kind.
    pub kind: SlotKind,
    /// What communication analysis concluded; `None` when no analysis
    /// ran (empty statement group, or the unconditional region end).
    pub outcome: Option<CommPattern>,
    /// Producer identity when the outcome was `Producer1`.
    pub producer: Option<ProducerSpec>,
    /// The synchronization placed in the slot.
    pub placed: SyncOp,
    /// Statements in the producing (earlier) group fed to the analysis.
    pub src_stmts: usize,
    /// Statements in the consuming (later) group fed to the analysis.
    pub dst_stmts: usize,
    /// Why: the classification evidence plus the mechanism choice.
    pub reason: String,
}

impl Decision {
    /// Short name of the placed synchronization ("eliminated",
    /// "barrier", "neighbor flags", "counter").
    pub fn placed_str(&self) -> &'static str {
        placed_str(&self.placed)
    }
}

/// Short name for a placed sync op.
pub fn placed_str(s: &SyncOp) -> &'static str {
    match s {
        SyncOp::None => "eliminated",
        SyncOp::Barrier => "barrier",
        SyncOp::Neighbor { .. } => "neighbor flags",
        SyncOp::Counter { .. } => "counter",
        SyncOp::PairCounter { .. } => "pairwise counters",
    }
}

/// Compose the human-readable `reason` for a decision from the
/// classification, what was placed, and the enabled mechanisms.
fn reason_for(outcome: Option<CommPattern>, placed: &SyncOp, opts: &OptimizeOptions) -> String {
    let Some(pat) = outcome else {
        return "no statements on one side of the boundary — nothing to synchronize".into();
    };
    let ev = pat.evidence();
    match (pat, placed) {
        (CommPattern::NoComm, SyncOp::None) => format!("eliminated: {ev}"),
        (CommPattern::NoComm, _) if !opts.eliminate => {
            format!("barrier kept: elimination disabled by ablation options, though {ev}")
        }
        (CommPattern::Neighbor { fwd, bwd }, SyncOp::Neighbor { .. }) => {
            let dir = match (fwd, bwd) {
                (true, true) => "both directions",
                (true, false) => "forward",
                (false, true) => "backward",
                (false, false) => "no direction",
            };
            format!("replaced with neighbor post/wait flags ({dir}): {ev}")
        }
        (CommPattern::Neighbor { .. }, _) if !opts.use_neighbor => {
            format!("barrier kept: neighbor flags disabled by ablation options, though {ev}")
        }
        (CommPattern::Producer1, SyncOp::Counter { id, .. }) => {
            format!("replaced with counter #{id}: {ev}")
        }
        (CommPattern::Producer1, _) if !opts.use_counters => {
            format!("barrier kept: counters disabled by ablation options, though {ev}")
        }
        (CommPattern::PairWise { dists }, SyncOp::PairCounter { producers, .. }) => {
            let prods = if producers.is_empty() {
                String::new()
            } else {
                format!(" + {} producer target(s)", producers.len())
            };
            format!(
                "replaced with pairwise counters (distances {}{prods}): {ev}",
                dists.render()
            )
        }
        (CommPattern::PairWise { .. }, _) if !opts.use_pairwise => {
            format!("barrier kept: pairwise counters disabled by ablation options, though {ev}")
        }
        (CommPattern::General, _) => format!("barrier kept: {ev}"),
        (p, s) => format!("{} for {p:?}: {ev}", placed_str(s)),
    }
}

struct Optimizer<'p> {
    prog: &'p Program,
    query: CommQuery<'p>,
    next_counter: usize,
    /// Running canonical slot id, mirroring the site walk of
    /// [`crate::sites::sync_sites`] (construction order == walk order).
    next_slot: usize,
    /// Running region index (for region-end labels).
    next_region: usize,
    log: Vec<Decision>,
    opts: OptimizeOptions,
}

/// The previously constructed item's `after` slot: id, label, kind.
#[derive(Clone)]
struct AfterSlot {
    id: usize,
    label: String,
    kind: SlotKind,
}

impl<'p> Optimizer<'p> {
    fn sync_from(&mut self, outcome: CommOutcome) -> SyncOp {
        match outcome.pattern {
            CommPattern::NoComm => {
                if self.opts.eliminate {
                    SyncOp::None
                } else {
                    SyncOp::Barrier
                }
            }
            CommPattern::Neighbor { fwd, bwd } => {
                if self.opts.use_neighbor {
                    SyncOp::Neighbor { fwd, bwd }
                } else {
                    SyncOp::Barrier
                }
            }
            CommPattern::Producer1 => {
                if self.opts.use_counters {
                    let id = self.next_counter;
                    self.next_counter += 1;
                    SyncOp::Counter {
                        id,
                        producer: outcome.producer.expect("Producer1 carries a producer"),
                    }
                } else {
                    SyncOp::Barrier
                }
            }
            CommPattern::PairWise { dists } => {
                if self.opts.use_pairwise {
                    SyncOp::PairCounter {
                        dists,
                        producers: outcome.pair_producers,
                    }
                } else {
                    SyncOp::Barrier
                }
            }
            CommPattern::General => SyncOp::Barrier,
        }
    }

    fn phase_kind_for(&self, node: NodeId) -> PhaseKind {
        match self.prog.node(node) {
            Node::Loop(l) if l.kind == LoopKind::Par => {
                // Loops writing only privatizable storage are replicated
                // computations: every processor runs all iterations into
                // its own copies (paper §2.3).
                if loop_is_replicated(self.prog, node) {
                    return PhaseKind::Replicated;
                }
                PhaseKind::Par {
                    partition: loop_partition(self.prog, &self.query.bind, node),
                }
            }
            Node::Assign(a) => match &a.lhs {
                LhsRef::Scalar(s) if self.prog.scalar(*s).privatizable => PhaseKind::Replicated,
                _ => PhaseKind::Master,
            },
            // Guards (serial) and sequential loops reaching here execute
            // on the master.
            _ => PhaseKind::Master,
        }
    }

    /// The greedy elimination algorithm over one level of region items.
    fn schedule_level(&mut self, nodes: &[NodeId], prefix: &[NodeId]) -> LevelResult {
        let mut items: Vec<RItem> = Vec::new();
        let mut group: Vec<StmtPath> = Vec::new();
        let mut saw_barrier = false;
        let mut last_after: Option<AfterSlot> = None;

        for &node in nodes {
            let stmts = self.prog.statements_under(node, prefix);

            // Decide the synchronization between the running group and
            // this item (the paper's step 2-4: test loop-independent
            // communication; eliminate, replace, or keep the barrier).
            if !items.is_empty() {
                let slot = last_after.clone().expect("previous item records its slot");
                let (sync, outcome_pat, producer) = if group.is_empty() || stmts.is_empty() {
                    (SyncOp::None, None, None)
                } else {
                    let outcome =
                        self.query
                            .comm_groups_detailed(&group, &stmts, CommMode::LoopIndependent);
                    let pat = outcome.pattern;
                    let producer = outcome.producer.clone();
                    (self.sync_from(outcome), Some(pat), producer)
                };
                self.log.push(Decision {
                    site: slot.id,
                    label: slot.label,
                    kind: slot.kind,
                    outcome: outcome_pat,
                    producer,
                    placed: sync.clone(),
                    src_stmts: group.len(),
                    dst_stmts: stmts.len(),
                    reason: reason_for(outcome_pat, &sync, &self.opts),
                });
                if sync.is_barrier() {
                    group.clear();
                    saw_barrier = true;
                }
                items.last_mut().unwrap().set_after(sync);
            }

            match self.prog.node(node) {
                Node::Loop(l) if l.kind == LoopKind::Seq && spmdable(self.prog, node) => {
                    let mut inner_prefix = prefix.to_vec();
                    inner_prefix.push(node);
                    let body_nodes = l.body.clone();
                    let sub = self.schedule_level(&body_nodes, &inner_prefix);
                    // Reserve the loop's bottom and after slots (body
                    // slots were consumed by the recursion).
                    let bottom_id = self.next_slot;
                    self.next_slot += 2;
                    let bottom =
                        self.carried_sync(node, &inner_prefix, &body_nodes, &sub, bottom_id);
                    let bottom_is_barrier = bottom.is_barrier();
                    if bottom_is_barrier || sub.saw_barrier {
                        saw_barrier = true;
                        group.clear();
                        if !bottom_is_barrier {
                            group.extend(sub.residual.iter().cloned());
                        }
                    } else {
                        group.extend(stmts.iter().cloned());
                    }
                    items.push(RItem::Seq {
                        node,
                        body: sub.items,
                        bottom,
                        after: SyncOp::None,
                    });
                    last_after = Some(AfterSlot {
                        id: bottom_id + 1,
                        label: loop_after_label(self.prog, node),
                        kind: SlotKind::LoopAfter,
                    });
                }
                _ => {
                    let slot_id = self.next_slot;
                    self.next_slot += 1;
                    items.push(RItem::Phase(Phase {
                        node,
                        kind: self.phase_kind_for(node),
                        after: SyncOp::None,
                    }));
                    last_after = Some(AfterSlot {
                        id: slot_id,
                        label: phase_after_label(self.prog, node),
                        kind: SlotKind::PhaseAfter,
                    });
                    group.extend(stmts.iter().cloned());
                }
            }
        }

        LevelResult {
            items,
            residual: group,
            saw_barrier,
        }
    }

    /// Loop-carried communication analysis for the bottom of a
    /// sequential loop inside a region: pairs already covered by an
    /// unconditional intra-body barrier are skipped; the rest are joined
    /// and lowered to the cheapest sufficient synchronization.
    fn carried_sync(
        &mut self,
        loop_node: NodeId,
        inner_prefix: &[NodeId],
        body_nodes: &[NodeId],
        sub: &LevelResult,
        bottom_id: usize,
    ) -> SyncOp {
        let per_item: Vec<Vec<StmtPath>> = body_nodes
            .iter()
            .map(|&n| self.prog.statements_under(n, inner_prefix))
            .collect();
        let total_stmts: usize = per_item.iter().map(Vec::len).sum();
        let crossings: Vec<usize> = sub
            .items
            .iter()
            .enumerate()
            .filter(|(_, it)| it.after().is_barrier())
            .map(|(k, _)| k)
            .collect();
        // The fold below joins item pairs sequentially and can stop at
        // the first General verdict; warming every needed statement pair
        // upfront lets the workers fill the cache while keeping the fold
        // (and hence the log) identical to the single-threaded pass.
        if self.query.warm_enabled() {
            let mut jobs: Vec<(StmtPath, StmtPath, CommMode)> = Vec::new();
            for (ia, g1) in per_item.iter().enumerate() {
                for (ib, g2) in per_item.iter().enumerate() {
                    if crossings.iter().any(|&c| c >= ia || c + 1 <= ib) {
                        continue;
                    }
                    for s1 in g1 {
                        for s2 in g2 {
                            jobs.push((s1.clone(), s2.clone(), CommMode::CarriedBy(loop_node)));
                        }
                    }
                }
            }
            self.query.warm(&jobs);
        }
        let mut outcome = CommOutcome::none();
        for (ia, g1) in per_item.iter().enumerate() {
            for (ib, g2) in per_item.iter().enumerate() {
                // A dependence from item ia at iteration t to item ib at
                // iteration t+d crosses an intra-body barrier when some
                // crossing c satisfies c >= ia (after the source in t) or
                // c + 1 <= ib (before the sink in t+d).
                if crossings.iter().any(|&c| c >= ia || c + 1 <= ib) {
                    continue;
                }
                if g1.is_empty() || g2.is_empty() {
                    continue;
                }
                outcome = outcome.join(self.query.comm_groups_detailed(
                    g1,
                    g2,
                    CommMode::CarriedBy(loop_node),
                ));
                if outcome.pattern == CommPattern::General {
                    self.log.push(Decision {
                        site: bottom_id,
                        label: loop_bottom_label(self.prog, loop_node),
                        kind: SlotKind::LoopBottom,
                        outcome: Some(CommPattern::General),
                        producer: None,
                        placed: SyncOp::Barrier,
                        src_stmts: total_stmts,
                        dst_stmts: total_stmts,
                        reason: reason_for(
                            Some(CommPattern::General),
                            &SyncOp::Barrier,
                            &self.opts,
                        ),
                    });
                    return SyncOp::Barrier;
                }
            }
        }
        let pat = outcome.pattern;
        let producer = outcome.producer.clone();
        let sync = self.sync_from(outcome);
        self.log.push(Decision {
            site: bottom_id,
            label: loop_bottom_label(self.prog, loop_node),
            kind: SlotKind::LoopBottom,
            outcome: Some(pat),
            producer,
            placed: sync.clone(),
            src_stmts: total_stmts,
            dst_stmts: total_stmts,
            reason: reason_for(Some(pat), &sync, &self.opts),
        });
        sync
    }

    fn build_region(&mut self, nodes: &[NodeId]) -> Region {
        self.next_counter = 0;
        // Every loop-independent pair the greedy fold can possibly query
        // within this region is a cross-item (earlier, later) statement
        // pair; warm them all in one parallel batch so the sequential
        // scheduling below runs against a hot cache.
        if self.query.warm_enabled() {
            let per_item: Vec<Vec<StmtPath>> = nodes
                .iter()
                .map(|&n| self.prog.statements_under(n, &[]))
                .collect();
            let mut jobs: Vec<(StmtPath, StmtPath, CommMode)> = Vec::new();
            for (ia, g1) in per_item.iter().enumerate() {
                for g2 in per_item.iter().skip(ia + 1) {
                    for s1 in g1 {
                        for s2 in g2 {
                            jobs.push((s1.clone(), s2.clone(), CommMode::LoopIndependent));
                        }
                    }
                }
            }
            self.query.warm(&jobs);
        }
        let lr = self.schedule_level(nodes, &[]);
        let end_id = self.next_slot;
        self.next_slot += 1;
        let region_ix = self.next_region;
        self.next_region += 1;
        self.log.push(Decision {
            site: end_id,
            label: region_end_label(region_ix),
            kind: SlotKind::RegionEnd,
            outcome: None,
            producer: None,
            placed: SyncOp::Barrier,
            src_stmts: lr.residual.len(),
            dst_stmts: 0,
            reason: "barrier kept: region end is the fork-join join point — code after the \
                     region may run serially and must see all region effects"
                .into(),
        });
        Region {
            items: lr.items,
            end: SyncOp::Barrier,
            num_counters: self.next_counter,
        }
    }

    fn lower_top(&mut self, nodes: &[NodeId]) -> Vec<TopItem> {
        let mut out = Vec::new();
        let mut run: Vec<NodeId> = Vec::new();
        let flush = |run: &mut Vec<NodeId>, out: &mut Vec<TopItem>, this: &mut Self| {
            if run.is_empty() {
                return;
            }
            if run.iter().any(|&n| contains_par(this.prog, n)) {
                let region = this.build_region(run);
                out.push(TopItem::Region(region));
            } else {
                for &n in run.iter() {
                    out.push(TopItem::SerialStmt(n));
                }
            }
            run.clear();
        };
        for &node in nodes {
            if spmdable(self.prog, node) {
                run.push(node);
            } else {
                flush(&mut run, &mut out, self);
                match self.prog.node(node) {
                    Node::Loop(l) if contains_par(self.prog, node) => {
                        let body = l.body.clone();
                        out.push(TopItem::MasterLoop {
                            node,
                            body: self.lower_top(&body),
                        });
                    }
                    _ => out.push(TopItem::SerialStmt(node)),
                }
            }
        }
        flush(&mut run, &mut out, self);
        out
    }
}

/// Run the full optimization: region formation + greedy barrier
/// elimination + synchronization replacement.
pub fn optimize(prog: &Program, bind: &Bindings) -> SpmdProgram {
    optimize_logged(prog, bind).0
}

/// As [`optimize`] with explicit mechanism switches (for the ablations).
pub fn optimize_with(prog: &Program, bind: &Bindings, opts: OptimizeOptions) -> SpmdProgram {
    let (plan, _, _) = optimize_impl(prog, bind, opts, None);
    plan
}

/// As [`optimize`] but also returning the greedy algorithm's decision
/// log (one entry per sync slot examined — for reports and debugging).
pub fn optimize_logged(prog: &Program, bind: &Bindings) -> (SpmdProgram, Vec<Decision>) {
    let (plan, log, _) = optimize_impl(prog, bind, OptimizeOptions::default(), None);
    (plan, log)
}

/// The full instrumented entry point: plan, decision log, and the
/// communication-analysis cache statistics.
///
/// The plan and log are deterministic functions of the program and
/// bindings — identical under every [`AnalysisConfig`]. The stats are
/// diagnostics only (hit counts depend on thread interleaving) and must
/// never flow into deterministic artifacts like the explain JSON.
pub fn optimize_explained(
    prog: &Program,
    bind: &Bindings,
    opts: OptimizeOptions,
) -> (SpmdProgram, Vec<Decision>, AnalysisStats) {
    optimize_impl(prog, bind, opts, None)
}

/// As [`optimize_explained`], but reusing a caller-owned FME memo so a
/// compilation session can share one cache across every program it
/// optimizes. Canonical cache keys are variable-table independent, so
/// cross-program sharing is sound; the plan and log for each program
/// are still identical to an uncached run. The returned stats count
/// the shared cache's cumulative traffic.
pub fn optimize_explained_shared(
    prog: &Program,
    bind: &Bindings,
    opts: OptimizeOptions,
    fme: &std::sync::Arc<ineq::FmeCache>,
) -> (SpmdProgram, Vec<Decision>, AnalysisStats) {
    optimize_impl(prog, bind, opts, Some(fme.clone()))
}

fn optimize_impl(
    prog: &Program,
    bind: &Bindings,
    opts: OptimizeOptions,
    fme: Option<std::sync::Arc<ineq::FmeCache>>,
) -> (SpmdProgram, Vec<Decision>, AnalysisStats) {
    let fme = fme.or_else(|| {
        opts.analysis
            .cache
            .then(|| std::sync::Arc::new(ineq::FmeCache::new()))
    });
    let mut opt = Optimizer {
        prog,
        query: CommQuery::with_fme_cache(prog, bind.clone(), opts.analysis, fme),
        next_counter: 0,
        next_slot: 0,
        next_region: 0,
        log: Vec::new(),
        opts,
    };
    let body = prog.body.clone();
    let plan = SpmdProgram {
        name: prog.name.clone(),
        items: opt.lower_top(&body),
    };
    let stats = opt.query.stats();
    (plan, opt.log, stats)
}

/// Lower to the traditional fork-join schedule: every parallel loop is
/// its own region ending in a barrier; sequential code (including the
/// sequential loops *around* parallel loops) runs on the master, which
/// re-dispatches workers for every parallel loop execution.
pub fn fork_join(prog: &Program, bind: &Bindings) -> SpmdProgram {
    fn lower(prog: &Program, bind: &Bindings, nodes: &[NodeId]) -> Vec<TopItem> {
        let mut out = Vec::new();
        for &node in nodes {
            match prog.node(node) {
                Node::Loop(l) if l.kind == LoopKind::Par => {
                    let kind = if loop_is_replicated(prog, node) {
                        PhaseKind::Replicated
                    } else {
                        PhaseKind::Par {
                            partition: loop_partition(prog, bind, node),
                        }
                    };
                    out.push(TopItem::Region(Region {
                        items: vec![RItem::Phase(Phase {
                            node,
                            kind,
                            after: SyncOp::None,
                        })],
                        end: SyncOp::Barrier,
                        num_counters: 0,
                    }));
                }
                Node::Loop(l) if contains_par(prog, node) => {
                    let body = l.body.clone();
                    out.push(TopItem::MasterLoop {
                        node,
                        body: lower(prog, bind, &body),
                    });
                }
                _ => out.push(TopItem::SerialStmt(node)),
            }
        }
        out
    }
    SpmdProgram {
        name: prog.name.clone(),
        items: lower(prog, bind, &prog.body),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::SyncOp;
    use ir::build::*;

    /// jacobi sweep: DO t { DOALL i: B=stencil(A); DOALL j: A=B }.
    fn jacobi_sweep() -> (Program, ir::SymId) {
        let mut pb = ProgramBuilder::new("jacobi");
        let n = pb.sym("n");
        let a = pb.array("A", &[sym(n)], dist_block());
        let b = pb.array("B", &[sym(n)], dist_block());
        let _t = pb.begin_seq("t", con(0), con(9));
        let i = pb.begin_par("i", con(1), sym(n) - 2);
        pb.assign(
            elem(b, [idx(i)]),
            ex(0.5) * (arr(a, [idx(i) - 1]) + arr(a, [idx(i) + 1])),
        );
        pb.end();
        let j = pb.begin_par("j", con(1), sym(n) - 2);
        pb.assign(elem(a, [idx(j)]), arr(b, [idx(j)]));
        pb.end();
        pb.end();
        (pb.finish(), n)
    }

    #[test]
    fn fork_join_has_barrier_per_parallel_loop() {
        let (prog, n) = jacobi_sweep();
        let bind = Bindings::new(4).set(n, 64);
        let fj = fork_join(&prog, &bind);
        let st = fj.static_stats();
        assert_eq!(st.regions, 2);
        assert_eq!(st.barriers, 2);
        assert_eq!(st.neighbor_syncs, 0);
        // Top level is a master loop wrapping the two regions.
        assert!(matches!(fj.items[0], TopItem::MasterLoop { .. }));
    }

    #[test]
    fn optimize_merges_jacobi_into_one_region_with_neighbor_sync() {
        let (prog, n) = jacobi_sweep();
        let bind = Bindings::new(4).set(n, 64);
        let opt = optimize(&prog, &bind);
        let st = opt.static_stats();
        assert_eq!(st.regions, 1, "the whole sweep becomes one SPMD region");
        // The only barrier left is the region end; intra-loop syncs are
        // neighbor flags.
        assert_eq!(st.barriers, 1, "stats: {st:?}");
        assert!(st.neighbor_syncs >= 1, "stats: {st:?}");
        // Inspect the structure.
        let TopItem::Region(region) = &opt.items[0] else {
            panic!("expected region");
        };
        let RItem::Seq { body, bottom, .. } = &region.items[0] else {
            panic!("expected seq loop inside region");
        };
        assert_eq!(body.len(), 2);
        // After the stencil phase: neighbor sync (B read at ±1 by copy?
        // no — copy is aligned; the carried dep A->stencil is ±1).
        assert!(
            matches!(bottom, SyncOp::Neighbor { .. }),
            "bottom={bottom:?}"
        );
    }

    /// Aligned copy chain: all barriers eliminated except the region end.
    #[test]
    fn optimize_eliminates_all_barriers_in_aligned_chain() {
        let mut pb = ProgramBuilder::new("chain");
        let n = pb.sym("n");
        let a = pb.array("A", &[sym(n)], dist_block());
        let b = pb.array("B", &[sym(n)], dist_block());
        let c = pb.array("C", &[sym(n)], dist_block());
        let i = pb.begin_par("i", con(0), sym(n) - 1);
        pb.assign(elem(b, [idx(i)]), arr(a, [idx(i)]) * ex(2.0));
        pb.end();
        let j = pb.begin_par("j", con(0), sym(n) - 1);
        pb.assign(elem(c, [idx(j)]), arr(b, [idx(j)]) + ex(1.0));
        pb.end();
        let prog = pb.finish();
        let bind = Bindings::new(4).set(n, 64);
        let opt = optimize(&prog, &bind);
        let st = opt.static_stats();
        assert_eq!(st.regions, 1);
        assert_eq!(st.barriers, 1, "only the region end barrier remains");
        assert_eq!(st.eliminated, 1, "the inter-loop barrier is eliminated");
        let fj = fork_join(&prog, &bind).static_stats();
        assert_eq!(fj.barriers, 2);
    }

    /// A serial statement between parallel loops is absorbed as a guarded
    /// (master) phase.
    #[test]
    fn serial_statement_absorbed_into_region() {
        let mut pb = ProgramBuilder::new("absorb");
        let n = pb.sym("n");
        let a = pb.array("A", &[sym(n)], dist_block());
        let s = pb.scalar("s", 0.0);
        let i = pb.begin_par("i", con(0), sym(n) - 1);
        pb.assign(elem(a, [idx(i)]), ex(1.0));
        pb.end();
        pb.assign(svar(s), ex(2.0)); // serial, master-guarded
        let j = pb.begin_par("j", con(0), sym(n) - 1);
        pb.assign(elem(a, [idx(j)]), sca(s) * arr(a, [idx(j)]));
        pb.end();
        let prog = pb.finish();
        let bind = Bindings::new(4).set(n, 64);
        let opt = optimize(&prog, &bind);
        assert_eq!(opt.static_stats().regions, 1);
        let TopItem::Region(r) = &opt.items[0] else {
            panic!()
        };
        assert_eq!(r.items.len(), 3);
        let RItem::Phase(p) = &r.items[1] else {
            panic!()
        };
        assert_eq!(p.kind, PhaseKind::Master);
        // Master-produced scalar consumed by the distributed loop: the
        // barrier is replaced by a counter.
        assert!(matches!(p.after, SyncOp::Counter { .. }), "{:?}", p.after);
    }
}
