//! Facade crate for the barrier-elimination workspace.
//!
//! Re-exports every subsystem so examples and integration tests can use a
//! single dependency. See `README.md` for the architecture overview and
//! `DESIGN.md` for the paper-to-module map.

pub use analysis;
pub use frontend;
pub use ineq;
pub use interp;
pub use ir;
pub use obs;
pub use oracle;
pub use runtime;
pub use served;
pub use spmd_opt;
pub use suite;
