//! Aligned element-wise chain — the best case for barrier elimination.
//!
//! A sequence of parallel loops each consuming exactly the elements the
//! same processor produced in the previous loop. Every inter-loop
//! barrier is eliminated; the region keeps its single end barrier.

use crate::{Built, Scale};
use ir::build::*;

/// Build at the given scale.
pub fn build(scale: Scale) -> Built {
    let (nv, tv) = match scale {
        Scale::Test => (32, 3),
        Scale::Small => (512, 20),
        Scale::Full => (1 << 17, 60),
    };
    let mut pb = ProgramBuilder::new("copy_chain");
    let n = pb.sym("n");
    let tmax = pb.sym("tmax");
    let a = pb.array("A", &[sym(n)], dist_block());
    let b = pb.array("B", &[sym(n)], dist_block());
    let c = pb.array("C", &[sym(n)], dist_block());
    let d = pb.array("D", &[sym(n)], dist_block());

    let i0 = pb.begin_par("i0", con(0), sym(n) - 1);
    pb.assign(elem(a, [idx(i0)]), ival(idx(i0)).cos());
    pb.end();

    let _t = pb.begin_seq("t", con(0), sym(tmax) - 1);
    let i1 = pb.begin_par("i1", con(0), sym(n) - 1);
    pb.assign(elem(b, [idx(i1)]), arr(a, [idx(i1)]) * ex(1.5) + ex(0.5));
    pb.end();
    let i2 = pb.begin_par("i2", con(0), sym(n) - 1);
    pb.assign(elem(c, [idx(i2)]), arr(b, [idx(i2)]) - arr(a, [idx(i2)]));
    pb.end();
    let i3 = pb.begin_par("i3", con(0), sym(n) - 1);
    pb.assign(elem(d, [idx(i3)]), arr(c, [idx(i3)]) * arr(b, [idx(i3)]));
    pb.end();
    let i4 = pb.begin_par("i4", con(0), sym(n) - 1);
    pb.assign(
        elem(a, [idx(i4)]),
        arr(d, [idx(i4)]) * ex(0.25) + arr(a, [idx(i4)]) * ex(0.75),
    );
    pb.end();
    pb.end(); // t

    Built {
        prog: pb.finish(),
        values: vec![(n, nv), (tmax, tv)],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_interior_barriers_are_eliminated() {
        let built = build(Scale::Test);
        let bind = built.bindings(4);
        let plan = spmd_opt::optimize(&built.prog, &bind);
        let st = plan.static_stats();
        assert_eq!(st.regions, 1);
        assert_eq!(st.barriers, 1, "{st:?}");
        assert_eq!(st.neighbor_syncs, 0, "{st:?}");
        assert_eq!(st.counter_syncs, 0, "{st:?}");
        // 4 loops in the time step: 3 interior slots + bottom + the
        // init->sweep slot, all eliminated.
        assert!(st.eliminated >= 4, "{st:?}");
    }
}
