! Shallow-water time step (RiCEPS shallow / SPEC swm256 class):
! three stencil phases plus copy-back, all barriers replaced.
program shallow
sym n, tmax
array U(n, n) block
array V(n, n) block
array P(n, n) block
array CU(n, n) block
array CV(n, n) block
array H(n, n) block
array UNEW(n, n) block
array VNEW(n, n) block
array PNEW(n, n) block

doall i0 = 0, n-1
  do j0 = 0, n-1
    U(i0, j0) = sin(i0 + 2 * j0)
    V(i0, j0) = cos(2 * i0 - j0)
    P(i0, j0) = 50.0 + sin(i0) * cos(j0)
  end
end

do t = 0, tmax-1
  doall i1 = 0, n-2
    do j1 = 0, n-2
      CU(i1, j1) = 0.5 * (P(i1+1, j1) + P(i1, j1)) * U(i1, j1)
      CV(i1, j1) = 0.5 * (P(i1, j1+1) + P(i1, j1)) * V(i1, j1)
      H(i1, j1) = P(i1, j1) + 0.25 * (U(i1, j1) * U(i1, j1) + V(i1, j1) * V(i1, j1))
    end
  end
  doall i2 = 1, n-2
    do j2 = 1, n-2
      UNEW(i2, j2) = U(i2, j2) + 0.1 * (H(i2-1, j2) - H(i2, j2))
      VNEW(i2, j2) = V(i2, j2) + 0.1 * (H(i2, j2-1) - H(i2, j2))
      PNEW(i2, j2) = P(i2, j2) - 0.1 * (CU(i2, j2) - CU(i2-1, j2) + CV(i2, j2) - CV(i2, j2-1))
    end
  end
  doall i3 = 1, n-2
    do j3 = 1, n-2
      U(i3, j3) = UNEW(i3, j3)
      V(i3, j3) = VNEW(i3, j3)
      P(i3, j3) = PNEW(i3, j3)
    end
  end
end
