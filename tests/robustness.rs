//! End-to-end robustness tests: deadline-guarded execution of the
//! shipped `.be` kernels under seeded chaos.
//!
//! The unit tests in `runtime::fault`, `runtime::team`, and
//! `interp::par` cover the primitives; these tests cover the promise
//! the fault layer makes at the tool level — a sabotaged sync post on
//! a real kernel terminates within the deadline with a report naming
//! the dropped site, the same chaos seed replays the same fault
//! schedule, and a poisoned region tears down every processor.

use barrier_elim::analysis::Bindings;
use barrier_elim::frontend;
use barrier_elim::interp::{run_parallel_observed, ChaosAction, Mem, ObserveOptions, SyncChaos};
use barrier_elim::ir::SymId;
use barrier_elim::obs::FailureCause;
use barrier_elim::oracle::{chaos_check, droppable_posts, injection_schedule, ChaosInjector};
use barrier_elim::runtime::Team;
use barrier_elim::spmd_opt::optimize;
use std::sync::Arc;
use std::time::{Duration, Instant};

const KERNELS: &[(&str, &[(&str, i64)])] = &[
    ("broadcast.be", &[("n", 12)]),
    ("jacobi.be", &[("n", 48), ("tmax", 4)]),
    ("pipeline.be", &[("n", 16), ("tmax", 3)]),
    ("private_gather.be", &[("n", 10)]),
    ("shallow.be", &[("n", 12), ("tmax", 2)]),
];

fn load(
    kernel: &str,
    sets: &[(&str, i64)],
    nprocs: i64,
) -> (Arc<barrier_elim::ir::Program>, Arc<Bindings>) {
    let src = std::fs::read_to_string(format!("kernels/{kernel}")).unwrap();
    let prog = frontend::parse(&src).unwrap_or_else(|e| panic!("{kernel}: {e}"));
    let mut bind = Bindings::new(nprocs);
    for (name, v) in sets {
        let pos = prog
            .syms
            .iter()
            .position(|s| &s.name == name)
            .unwrap_or_else(|| panic!("sym {name} missing"));
        bind.bind(SymId(pos as u32), *v);
    }
    (Arc::new(prog), Arc::new(bind))
}

/// The acceptance property: on every shipped kernel, dropping a sync
/// post (the final counter increment where the plan places counters,
/// else the final neighbor post / barrier arrival) terminates within
/// the deadline with a failure report naming the dropped site — and a
/// benign chaos run with the same seed passes.
#[test]
fn dropped_posts_on_all_kernels_are_detected_and_attributed() {
    let team = Team::new(4);
    for (kernel, sets) in KERNELS {
        let (prog, bind) = load(kernel, sets, 4);
        let plan = optimize(&prog, &bind);
        let r = chaos_check(
            &prog,
            &bind,
            &plan,
            &team,
            0xC0FFEE,
            Duration::from_millis(150),
            1e-9,
        );
        assert!(
            r.benign_ok,
            "{kernel}: benign chaos run failed (diff {:e})",
            r.benign_diff
        );
        assert!(!r.teeth.is_empty(), "{kernel}: no droppable posts found");
        for t in &r.teeth {
            assert!(
                t.detected,
                "{kernel}: dropped {} post at s{} went undetected",
                t.kind, t.spec.site
            );
            assert!(
                t.named_site,
                "{kernel}: dropped {} post at s{} not named (headline site {:?})",
                t.kind, t.spec.site, t.attributed_site
            );
            assert!(
                t.elapsed < Duration::from_secs(30),
                "{kernel}: teeth run took {:?}",
                t.elapsed
            );
        }
    }
}

/// A dropped *counter increment* specifically (broadcast's optimized
/// plan places one at P=4): consumers stall at exactly that site, and
/// the report's headline attributes the deadline to it with the
/// expected-vs-observed progress gap.
#[test]
fn dropped_counter_increment_names_the_counter_site() {
    let (prog, bind) = load("broadcast.be", &[("n", 12)], 4);
    let plan = optimize(&prog, &bind);
    let counters: Vec<_> = droppable_posts(&prog, &bind, &plan)
        .into_iter()
        .filter(|c| c.kind == "counter")
        .collect();
    assert!(
        !counters.is_empty(),
        "broadcast at P=4 must place a counter sync"
    );
    let team = Team::new(4);
    let r = chaos_check(
        &prog,
        &bind,
        &plan,
        &team,
        7,
        Duration::from_millis(150),
        1e-9,
    );
    let tooth = r
        .teeth
        .iter()
        .find(|t| t.kind == "counter")
        .expect("counter tooth ran");
    assert!(tooth.detected && tooth.named_site);
    let report = tooth.failure.as_ref().unwrap();
    assert_eq!(report.chaos_seed, Some(7));
    assert_eq!(report.nprocs, 4);
    // Whoever won the race to the headline, the stalled consumers at
    // the counter site recorded it in the per-processor states.
    if let FailureCause::Deadline {
        site,
        pid,
        expected,
        observed,
        ..
    } = &report.cause
    {
        if *site == tooth.spec.site {
            assert_ne!(
                *pid, tooth.spec.pid,
                "the producer cannot time out on its own dropped increment"
            );
            assert!(observed < expected);
        }
    }
}

/// Same seed, same fault schedule — the injector is a pure function of
/// (seed, site, pid, visit) — and two guarded runs under the same seed
/// produce identical results.
#[test]
fn chaos_is_deterministic_per_seed() {
    let a = ChaosInjector::new(123);
    let b = ChaosInjector::new(123);
    assert_eq!(
        injection_schedule(&a, 8, 4, 64),
        injection_schedule(&b, 8, 4, 64)
    );
    assert_ne!(
        injection_schedule(&a, 8, 4, 64),
        injection_schedule(&ChaosInjector::new(124), 8, 4, 64)
    );

    let (prog, bind) = load("jacobi.be", &[("n", 48), ("tmax", 4)], 4);
    let plan = optimize(&prog, &bind);
    let team = Team::new(4);
    let mut sums = Vec::new();
    for _ in 0..2 {
        let mem = Arc::new(Mem::new(&prog, &bind));
        mem.fill(barrier_elim::ir::ArrayId(0), |s| (s[0] % 9) as f64);
        let out = run_parallel_observed(
            &prog,
            &bind,
            &plan,
            &mem,
            &team,
            &ObserveOptions {
                deadline: Some(Duration::from_secs(5)),
                chaos: Some(Arc::new(ChaosInjector::new(99))),
                ..ObserveOptions::default()
            },
        );
        assert!(out.ok(), "benign seeded run failed: {:?}", out.failure);
        sums.push(mem.checksum());
    }
    assert_eq!(sums[0], sums[1]);
}

/// One processor stalls past the deadline; its peers time out, poison
/// the region, and the late processor observes the poison instead of
/// waiting out its own deadline at every remaining site. The whole
/// region tears down in bounded time with every processor accounted
/// for.
#[test]
fn poison_propagates_to_a_late_processor() {
    struct StallP3;
    impl SyncChaos for StallP3 {
        fn at_sync(&self, _site: usize, pid: usize, visit: u64) -> ChaosAction {
            if pid == 3 && visit == 0 {
                ChaosAction::Stall(Duration::from_millis(600))
            } else {
                ChaosAction::None
            }
        }
    }
    let (prog, bind) = load("jacobi.be", &[("n", 48), ("tmax", 4)], 4);
    let plan = optimize(&prog, &bind);
    let team = Team::new(4);
    let mem = Arc::new(Mem::new(&prog, &bind));
    let t0 = Instant::now();
    let out = run_parallel_observed(
        &prog,
        &bind,
        &plan,
        &mem,
        &team,
        &ObserveOptions {
            deadline: Some(Duration::from_millis(100)),
            chaos: Some(Arc::new(StallP3)),
            ..ObserveOptions::default()
        },
    );
    let elapsed = t0.elapsed();
    let failure = out
        .failure
        .expect("a 600ms stall under a 100ms deadline fails");
    // Detection happens about one deadline in; teardown must not take
    // a deadline *per remaining sync site*.
    assert!(
        elapsed < Duration::from_secs(10),
        "teardown took {elapsed:?}"
    );
    match &failure.cause {
        FailureCause::Deadline { pid, .. } => {
            assert_ne!(*pid, 3, "a waiter, not the staller, times out first")
        }
        other => panic!("expected a deadline cause, got {other:?}"),
    }
    // Every processor terminated with a recorded state; nobody is
    // still "ok" except possibly the stalled one that finished late.
    assert_eq!(failure.per_proc.len(), 4);
    let errored = failure.per_proc.iter().filter(|s| *s != "ok").count();
    assert!(errored >= 3, "per_proc: {:?}", failure.per_proc);
}
