//! Ablation A2 — what each stage of the optimizer buys, in dynamic
//! barriers: fork-join baseline → region merging alone (every slot a
//! barrier) → greedy elimination + replacement (the full optimizer).

use spmd_bench::{all_barriers, dyn_counts, instance, pct_reduction, Table};
use suite::Scale;

fn main() {
    let nprocs = 8;
    println!("Ablation: contribution of each optimizer stage (P = {nprocs}, dynamic barriers)\n");
    let mut t = Table::new(&[
        "program",
        "fork-join",
        "merge only",
        "full optimizer",
        "% removed by merge",
        "% removed total",
    ]);
    for def in suite::all() {
        let (built, bind) = instance(&def, Scale::Small, nprocs);
        let fj = dyn_counts(&built.prog, &bind, &spmd_opt::fork_join(&built.prog, &bind));
        let opt_plan = spmd_opt::optimize(&built.prog, &bind);
        let merged = dyn_counts(&built.prog, &bind, &all_barriers(&opt_plan));
        let opt = dyn_counts(&built.prog, &bind, &opt_plan);
        t.row(vec![
            def.name.to_string(),
            fj.barriers.to_string(),
            merged.barriers.to_string(),
            opt.barriers.to_string(),
            format!("{:.0}%", pct_reduction(fj.barriers, merged.barriers)),
            format!("{:.0}%", pct_reduction(fj.barriers, opt.barriers)),
        ]);
    }
    print!("{}", t.render());
    println!("\nExpected shape: merging alone changes dispatches, not barriers (or adds");
    println!("bottom barriers); the elimination/replacement stage does the real work.");
}
