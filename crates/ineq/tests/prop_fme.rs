//! Property tests: Fourier-Motzkin feasibility versus exhaustive integer
//! search on random small systems.
//!
//! The contract under test is the one the communication analysis relies
//! on: `is_consistent == false` implies there is **no** integer solution
//! (soundness of "no communication"), and whenever an integer solution
//! exists inside the bounding box, `is_consistent` must report `true`.

use ineq::{LinExpr, System, VarId, VarKind, VarTable};
use proptest::prelude::*;

const NVARS: usize = 3;
const BOX_LO: i128 = -4;
const BOX_HI: i128 = 4;

#[derive(Debug, Clone)]
struct RandConstraint {
    coeffs: Vec<i8>,
    constant: i8,
    is_eq: bool,
}

fn rand_constraint() -> impl Strategy<Value = RandConstraint> {
    (
        proptest::collection::vec(-3i8..=3, NVARS),
        -6i8..=6,
        proptest::bool::weighted(0.3),
    )
        .prop_map(|(coeffs, constant, is_eq)| RandConstraint {
            coeffs,
            constant,
            is_eq,
        })
}

fn build(rcs: &[RandConstraint]) -> (VarTable, Vec<VarId>, System) {
    let mut vt = VarTable::new();
    let kinds = [VarKind::Processor, VarKind::LoopIndex, VarKind::ArrayIndex];
    let vars: Vec<VarId> = (0..NVARS)
        .map(|k| vt.fresh(format!("v{k}"), kinds[k % kinds.len()]))
        .collect();
    let mut sys = System::new();
    // Bounding box so the brute-force oracle is complete.
    for &v in &vars {
        sys.add_range(
            LinExpr::var(v),
            LinExpr::constant(BOX_LO),
            LinExpr::constant(BOX_HI),
        );
    }
    for rc in rcs {
        let mut e = LinExpr::constant(rc.constant as i128);
        for (k, &c) in rc.coeffs.iter().enumerate() {
            e.add_term(vars[k], c as i128);
        }
        if rc.is_eq {
            sys.add_eq(e);
        } else {
            sys.add_ge(e);
        }
    }
    (vt, vars, sys)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(300))]

    /// If FME says inconsistent, exhaustive search must find nothing.
    #[test]
    fn infeasible_verdicts_are_sound(rcs in proptest::collection::vec(rand_constraint(), 0..6)) {
        let (vt, vars, sys) = build(&rcs);
        let bounds: Vec<_> = vars.iter().map(|&v| (v, BOX_LO, BOX_HI)).collect();
        let fme = sys.is_consistent(&vt);
        let brute = sys.find_integer_solution(&bounds);
        if !fme {
            prop_assert!(brute.is_none(),
                "FME claimed infeasible but {:?} satisfies the system", brute);
        }
        // And the conservative direction: any integer solution forces `true`.
        if brute.is_some() {
            prop_assert!(fme, "integer solution exists but FME said infeasible");
        }
    }

    /// Eliminating a variable never turns a feasible system infeasible
    /// (projection only loses information in the conservative direction).
    #[test]
    fn elimination_preserves_feasibility(rcs in proptest::collection::vec(rand_constraint(), 0..6)) {
        let (vt, vars, sys) = build(&rcs);
        let bounds: Vec<_> = vars.iter().map(|&v| (v, BOX_LO, BOX_HI)).collect();
        if sys.find_integer_solution(&bounds).is_some() {
            for &v in &vars {
                let reduced = sys.eliminate(v);
                prop_assert!(reduced.is_consistent(&vt),
                    "eliminating {:?} made a feasible system infeasible", v);
            }
        }
    }

    /// Projection onto a subset keeps every point's shadow feasible: for
    /// any integer solution of the full system, plugging its kept
    /// coordinates into the projection must satisfy it.
    #[test]
    fn projection_contains_shadow(rcs in proptest::collection::vec(rand_constraint(), 0..5)) {
        let (vt, vars, sys) = build(&rcs);
        let bounds: Vec<_> = vars.iter().map(|&v| (v, BOX_LO, BOX_HI)).collect();
        if let Some(sol) = sys.find_integer_solution(&bounds) {
            let keep = [vars[0]];
            let proj = sys.project_onto(&vt, &keep);
            let lookup = |v: VarId| sol.iter().find(|(a, _)| *a == v).unwrap().1;
            for c in proj.constraints() {
                prop_assert!(c.holds_int(&lookup),
                    "projected constraint violated by shadow of a real solution");
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    /// `sample_point` returns a satisfying rational assignment whenever
    /// the system is feasible over the integers (a fortiori rationally).
    #[test]
    fn sample_points_satisfy_feasible_systems(rcs in proptest::collection::vec(rand_constraint(), 0..5)) {
        use ineq::Rational;
        let (vt, vars, sys) = build(&rcs);
        let bounds: Vec<_> = vars.iter().map(|&v| (v, BOX_LO, BOX_HI)).collect();
        if sys.find_integer_solution(&bounds).is_some() {
            let pt = sys.sample_point(&vt).expect("rationally feasible");
            let get = |v: VarId| pt.iter().find(|(a, _)| *a == v).map(|(_, r)| *r)
                .unwrap_or(Rational::zero());
            for c in sys.constraints() {
                let val = c.expr.eval_rat(&get);
                match c.kind {
                    ineq::ConstraintKind::GeZero =>
                        prop_assert!(val >= Rational::zero(), "{c:?} violated at {pt:?}"),
                    ineq::ConstraintKind::EqZero =>
                        prop_assert!(val.is_zero(), "{c:?} violated at {pt:?}"),
                }
            }
        }
    }

    /// Redundancy removal preserves the solution set (checked on the
    /// integer box: same exhaustive verdicts).
    #[test]
    fn remove_redundant_preserves_solutions(rcs in proptest::collection::vec(rand_constraint(), 0..5)) {
        let (vt, vars, sys) = build(&rcs);
        let bounds: Vec<_> = vars.iter().map(|&v| (v, BOX_LO, BOX_HI)).collect();
        let slim = sys.remove_redundant(&vt);
        // Every point of the box satisfies sys iff it satisfies slim + box.
        // (slim lost the box bounds only if they were implied; re-add them.)
        let mut slim_boxed = slim.clone();
        for &v in &vars {
            slim_boxed.add_range(
                ineq::LinExpr::var(v),
                ineq::LinExpr::constant(BOX_LO),
                ineq::LinExpr::constant(BOX_HI),
            );
        }
        let a = sys.find_integer_solution(&bounds).is_some();
        let b = slim_boxed.find_integer_solution(&bounds).is_some();
        prop_assert_eq!(a, b);
    }
}
