//! A small builder DSL for constructing programs.
//!
//! Loops are opened with `begin_par` / `begin_seq` and closed with `end`;
//! everything emitted in between becomes the loop body. Free helper
//! functions (`con`, `sym`, `idx`, `elem`, `arr`, `ex`, …) keep benchmark
//! kernels readable — see the `suite` crate for full-size examples.

use crate::decl::{
    ArrayDecl, ArrayId, DimDist, Distribution, ScalarDecl, ScalarId, SymDecl, SymId,
};
use crate::expr::{Affine, Expr};
use crate::node::{Assign, CmpOp, Guard, GuardCond, LhsRef, Loop, LoopId, LoopKind, Node, RedOp};
use crate::program::{NodeId, Program};

/// Constant affine expression.
pub fn con(c: i64) -> Affine {
    Affine::constant(c)
}

/// Symbolic-constant affine expression.
pub fn sym(s: SymId) -> Affine {
    Affine::sym(s)
}

/// Loop-index affine expression.
pub fn idx(l: LoopId) -> Affine {
    Affine::index(l)
}

/// Array-element assignment target.
pub fn elem<I: IntoIterator<Item = Affine>>(a: ArrayId, subs: I) -> LhsRef {
    LhsRef::Elem(a, subs.into_iter().collect())
}

/// Scalar assignment target.
pub fn svar(s: ScalarId) -> LhsRef {
    LhsRef::Scalar(s)
}

/// Array-element read expression.
pub fn arr<I: IntoIterator<Item = Affine>>(a: ArrayId, subs: I) -> Expr {
    Expr::Elem(a, subs.into_iter().collect())
}

/// Scalar read expression.
pub fn sca(s: ScalarId) -> Expr {
    Expr::Scalar(s)
}

/// Literal expression.
pub fn ex(v: f64) -> Expr {
    Expr::Lit(v)
}

/// The value of an affine integer expression, as a float.
pub fn ival(a: Affine) -> Expr {
    Expr::Idx(a)
}

/// Guard condition `e == 0`.
pub fn eq0(e: Affine) -> GuardCond {
    GuardCond {
        expr: e,
        op: CmpOp::Eq,
    }
}

/// Guard condition `e >= 0`.
pub fn ge0(e: Affine) -> GuardCond {
    GuardCond {
        expr: e,
        op: CmpOp::Ge,
    }
}

/// Guard condition `e <= 0`.
pub fn le0(e: Affine) -> GuardCond {
    GuardCond {
        expr: e,
        op: CmpOp::Le,
    }
}

/// Shorthand distribution requests, expanded to the array's rank.
#[derive(Clone, Copy, Debug)]
pub enum DistSpec {
    /// Block-distribute the given dimension.
    Block(usize),
    /// Cyclic-distribute the given dimension.
    Cyclic(usize),
    /// Block-cyclic-distribute the given dimension with block size `b`.
    BlockCyclic(usize, i64),
    /// Fully replicated.
    Repl,
}

/// Block distribution of dimension 0.
pub fn dist_block() -> DistSpec {
    DistSpec::Block(0)
}

/// Block distribution of dimension `k`.
pub fn dist_block_dim(k: usize) -> DistSpec {
    DistSpec::Block(k)
}

/// Cyclic distribution of dimension 0.
pub fn dist_cyclic() -> DistSpec {
    DistSpec::Cyclic(0)
}

/// Cyclic distribution of dimension `k`.
pub fn dist_cyclic_dim(k: usize) -> DistSpec {
    DistSpec::Cyclic(k)
}

/// Block-cyclic distribution of dimension 0 with block size `b`.
pub fn dist_block_cyclic(b: i64) -> DistSpec {
    DistSpec::BlockCyclic(0, b)
}

/// Block-cyclic distribution of dimension `k` with block size `b`.
pub fn dist_block_cyclic_dim(k: usize, b: i64) -> DistSpec {
    DistSpec::BlockCyclic(k, b)
}

/// Fully replicated.
pub fn dist_repl() -> DistSpec {
    DistSpec::Repl
}

enum Open {
    Loop(Loop),
    Guard(Guard),
}

/// Incremental program builder. See the crate-level example.
pub struct ProgramBuilder {
    prog: Program,
    /// Open bodies: index 0 is the top level; each `begin_*` pushes.
    stack: Vec<(Option<Open>, Vec<NodeId>)>,
}

impl ProgramBuilder {
    /// Start a new program.
    pub fn new(name: impl Into<String>) -> Self {
        let mut prog = Program::default();
        prog.name = name.into();
        ProgramBuilder {
            prog,
            stack: vec![(None, Vec::new())],
        }
    }

    /// Declare a symbolic constant.
    pub fn sym(&mut self, name: impl Into<String>) -> SymId {
        let id = SymId(self.prog.syms.len() as u32);
        self.prog.syms.push(SymDecl { name: name.into() });
        id
    }

    /// Declare a scalar variable.
    pub fn scalar(&mut self, name: impl Into<String>, init: f64) -> ScalarId {
        let id = ScalarId(self.prog.scalars.len() as u32);
        self.prog.scalars.push(ScalarDecl {
            name: name.into(),
            init,
            privatizable: false,
        });
        id
    }

    /// Declare a privatizable scalar (assignments to it may be replicated
    /// inside SPMD regions).
    pub fn private_scalar(&mut self, name: impl Into<String>, init: f64) -> ScalarId {
        let id = self.scalar(name, init);
        self.prog.scalars[id.0 as usize].privatizable = true;
        id
    }

    /// Declare an array with per-dimension extents and a distribution.
    pub fn array(
        &mut self,
        name: impl Into<String>,
        extents: &[Affine],
        dist: DistSpec,
    ) -> ArrayId {
        let rank = extents.len();
        let mut dims = vec![DimDist::Replicated; rank];
        match dist {
            DistSpec::Block(k) => {
                assert!(k < rank, "distributed dim out of range");
                dims[k] = DimDist::Block;
            }
            DistSpec::Cyclic(k) => {
                assert!(k < rank, "distributed dim out of range");
                dims[k] = DimDist::Cyclic;
            }
            DistSpec::BlockCyclic(k, b) => {
                assert!(k < rank, "distributed dim out of range");
                assert!(b >= 1, "block-cyclic block size must be positive");
                dims[k] = DimDist::BlockCyclic(b);
            }
            DistSpec::Repl => {}
        }
        let id = ArrayId(self.prog.arrays.len() as u32);
        self.prog.arrays.push(ArrayDecl {
            name: name.into(),
            extents: extents.to_vec(),
            dist: Distribution { dims },
            privatizable: false,
        });
        id
    }

    /// Declare a privatizable work array (replicated distribution; each
    /// processor gets its own copy at run time). The caller asserts the
    /// def-before-use property the privatization analysis would prove.
    pub fn private_array(&mut self, name: impl Into<String>, extents: &[Affine]) -> ArrayId {
        let id = self.array(name, extents, DistSpec::Repl);
        self.prog.arrays[id.0 as usize].privatizable = true;
        id
    }

    fn begin_loop(&mut self, name: &str, lo: Affine, hi: Affine, kind: LoopKind) -> LoopId {
        let id = LoopId(self.prog.num_loops);
        self.prog.num_loops += 1;
        self.prog.loop_names.push(name.to_string());
        self.stack.push((
            Some(Open::Loop(Loop {
                id,
                name: name.to_string(),
                lo,
                hi,
                kind,
                body: Vec::new(),
            })),
            Vec::new(),
        ));
        id
    }

    /// Open a parallel (`DOALL`) loop; returns its index handle.
    pub fn begin_par(&mut self, name: &str, lo: Affine, hi: Affine) -> LoopId {
        self.begin_loop(name, lo, hi, LoopKind::Par)
    }

    /// Open a sequential (`DO`) loop; returns its index handle.
    pub fn begin_seq(&mut self, name: &str, lo: Affine, hi: Affine) -> LoopId {
        self.begin_loop(name, lo, hi, LoopKind::Seq)
    }

    /// Open a guarded block (conjunction of affine conditions).
    pub fn begin_guard(&mut self, conds: Vec<GuardCond>) {
        self.stack.push((
            Some(Open::Guard(Guard {
                conds,
                body: Vec::new(),
            })),
            Vec::new(),
        ));
    }

    /// Close the innermost open loop or guard.
    pub fn end(&mut self) {
        let (open, body) = self.stack.pop().expect("end() without begin");
        let node = match open.expect("end() at top level") {
            Open::Loop(mut l) => {
                l.body = body;
                Node::Loop(l)
            }
            Open::Guard(mut g) => {
                g.body = body;
                Node::Guard(g)
            }
        };
        let id = self.push_node(node);
        self.stack.last_mut().unwrap().1.push(id);
    }

    fn push_node(&mut self, n: Node) -> NodeId {
        let id = NodeId(self.prog.nodes.len() as u32);
        self.prog.nodes.push(n);
        id
    }

    /// Emit an assignment `lhs = rhs`.
    pub fn assign(&mut self, lhs: LhsRef, rhs: Expr) -> NodeId {
        let id = self.push_node(Node::Assign(Assign {
            lhs,
            rhs,
            reduction: None,
        }));
        self.stack.last_mut().unwrap().1.push(id);
        id
    }

    /// Emit a reduction `lhs = lhs ⊕ rhs`.
    pub fn reduce(&mut self, lhs: LhsRef, op: RedOp, rhs: Expr) -> NodeId {
        let id = self.push_node(Node::Assign(Assign {
            lhs,
            rhs,
            reduction: Some(op),
        }));
        self.stack.last_mut().unwrap().1.push(id);
        id
    }

    /// Finish: validates structure (panicking on problems, which are
    /// always construction bugs) and returns the program.
    pub fn finish(self) -> Program {
        let prog = self.finish_unchecked();
        let problems = prog.validate();
        assert!(problems.is_empty(), "invalid program: {problems:?}");
        prog
    }

    /// Finish without validation (for tests that exercise `validate`).
    pub fn finish_unchecked(mut self) -> Program {
        assert_eq!(self.stack.len(), 1, "unclosed loop/guard at finish()");
        let (_, body) = self.stack.pop().unwrap();
        self.prog.body = body;
        self.prog
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::LoopKind;

    #[test]
    fn nested_loops_build_correct_tree() {
        let mut p = ProgramBuilder::new("nest");
        let n = p.sym("n");
        let a = p.array("A", &[sym(n), sym(n)], dist_block());
        let i = p.begin_seq("i", con(0), sym(n) - 1);
        let j = p.begin_par("j", con(0), sym(n) - 1);
        p.assign(elem(a, [idx(i), idx(j)]), ival(idx(i) + idx(j)));
        p.end();
        p.end();
        let prog = p.finish();
        assert_eq!(prog.body.len(), 1);
        let outer = prog.expect_loop(prog.body[0]);
        assert_eq!(outer.kind, LoopKind::Seq);
        assert_eq!(outer.body.len(), 1);
        let inner = prog.expect_loop(outer.body[0]);
        assert_eq!(inner.kind, LoopKind::Par);
    }

    #[test]
    #[should_panic(expected = "unclosed")]
    fn unclosed_loop_panics() {
        let mut p = ProgramBuilder::new("bad");
        let n = p.sym("n");
        p.begin_par("i", con(0), sym(n));
        let _ = p.finish();
    }

    #[test]
    fn guards_and_reductions() {
        let mut p = ProgramBuilder::new("g");
        let n = p.sym("n");
        let a = p.array("A", &[sym(n)], dist_block());
        let s = p.scalar("s", 0.0);
        let i = p.begin_par("i", con(0), sym(n) - 1);
        p.begin_guard(vec![ge0(idx(i) - 1)]);
        p.reduce(svar(s), RedOp::Add, arr(a, [idx(i)]));
        p.end();
        p.end();
        let prog = p.finish();
        assert_eq!(prog.num_statements(), 1);
    }
}
