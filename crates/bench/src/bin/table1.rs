//! Table 1 — benchmark characteristics: suite stand-in, statements,
//! arrays, parallel loops, and SPMD regions formed.

use spmd_bench::{instance, Table};
use suite::Scale;

fn main() {
    let mut t = Table::new(&[
        "program",
        "stands in for",
        "stmts",
        "arrays",
        "par loops",
        "regions (opt)",
        "expected",
    ]);
    for def in suite::all() {
        let (built, bind) = instance(&def, Scale::Small, 8);
        let plan = spmd_opt::optimize(&built.prog, &bind);
        let st = plan.static_stats();
        t.row(vec![
            def.name.to_string(),
            def.stands_in_for.to_string(),
            built.prog.num_statements().to_string(),
            built.prog.arrays.len().to_string(),
            built.prog.parallel_loops().len().to_string(),
            st.regions.to_string(),
            format!("{:?}", def.expect),
        ]);
    }
    println!("Table 1: benchmark characteristics (P = 8, Small scale)\n");
    print!("{}", t.render());
}
