//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this local crate
//! provides the (small) subset of the `rand 0.8` API the workspace uses:
//! [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], and
//! [`Rng::gen_range`] over primitive-integer ranges. The generator is
//! xoshiro256** seeded through SplitMix64 — deterministic across
//! platforms, which the fuzzing oracle relies on for reproducible
//! campaigns.

/// Types that can be produced by [`Rng::gen_range`].
pub trait SampleUniform: Copy {
    /// Sample uniformly from `[lo, hi)` (`hi` exclusive).
    fn sample_half_open(rng: &mut dyn RngCore, lo: Self, hi: Self) -> Self;
}

/// The object-safe core of a random generator.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

/// Range argument accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw one value from the range.
    fn sample(self, rng: &mut dyn RngCore) -> T;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open(rng: &mut dyn RngCore, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "gen_range called with an empty range");
                let span = (hi as i128 - lo as i128) as u128;
                // Multiply-shift rejection-free mapping is fine here: the
                // spans in this workspace are tiny relative to 2^64, so
                // modulo bias is far below what any test can observe.
                let r = rng.next_u64() as u128 % span;
                (lo as i128 + r as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample(self, rng: &mut dyn RngCore) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

macro_rules! impl_sample_range_inclusive {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample(self, rng: &mut dyn RngCore) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range called with an empty range");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                let r = rng.next_u64() as u128 % span;
                (lo as i128 + r as i128) as $t
            }
        }
    )*};
}

impl_sample_range_inclusive!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Seeding entry point, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Construct a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Convenience sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Uniform draw from `range`.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample(self)
    }

    /// A uniformly random `bool`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        debug_assert!((0.0..=1.0).contains(&p));
        // 53 high bits give a uniform double in [0, 1).
        let u = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        u < p
    }
}

impl<T: RngCore> Rng for T {}

/// Generator implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256** — fast, high-quality, and deterministic across
    /// platforms. API-compatible stand-in for `rand::rngs::StdRng`.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let out = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0usize..1000), b.gen_range(0usize..1000));
        }
    }

    #[test]
    fn range_bounds_respected() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = r.gen_range(-3i64..=3);
            assert!((-3..=3).contains(&v));
            let u = r.gen_range(5usize..8);
            assert!((5..8).contains(&u));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.gen_range(0u64..u64::MAX)).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.gen_range(0u64..u64::MAX)).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = StdRng::seed_from_u64(3);
        assert!(!(0..100).any(|_| r.gen_bool(0.0)));
        assert!((0..100).all(|_| r.gen_bool(1.0)));
    }
}
