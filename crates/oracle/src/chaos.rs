//! Seeded, deterministic chaos fault injection for guarded executions.
//!
//! The injector perturbs the real-thread executor at every sync event
//! through the [`interp::SyncChaos`] hook: benign faults (bounded
//! delays, thread-stall-sized sleeps, spurious wakeups) that a correct
//! schedule must absorb without changing results, and one targeted
//! *dropped post* ([`DropSpec`]) that models a crashed or miscompiled
//! producer — the oracle's teeth. Every action is a pure function of
//! `(seed, site, pid, visit)` (splitmix64 mixing), so a chaos seed
//! reproduces the exact same fault schedule on every run and can ride
//! inside a repro bundle.
//!
//! [`chaos_check`] packages the campaign for one program: a benign run
//! (must pass and match the sequential oracle) plus one teeth run per
//! droppable post (each must terminate within the deadline with a
//! [`FailureReport`] naming the dropped site).

use analysis::Bindings;
use interp::events::producer_pid;
use interp::{
    run_parallel_observed, run_sequential, unroll, ChaosAction, Event, Mem, ObserveOptions,
    SyncChaos,
};
use ir::Program;
use obs::FailureReport;
use runtime::Team;
use spmd_opt::{SpmdProgram, SyncOp};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// One 64-bit draw per (seed, site, pid, visit) coordinate.
fn mix(seed: u64, site: usize, pid: usize, visit: u64) -> u64 {
    splitmix64(
        seed ^ splitmix64(
            (site as u64).wrapping_mul(0x9E37) ^ splitmix64(((pid as u64) << 40) ^ visit),
        ),
    )
}

/// A targeted dropped post: processor `pid` skips the *post* half of
/// every visit `>= from_visit` of sync site `site` (a counter producer
/// skips its increment, a neighbor skips its flag post, a barrier
/// arrival is skipped). Consumers of the dropped post can only be
/// released by the watchdog.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DropSpec {
    /// Canonical sync-site id to sabotage.
    pub site: usize,
    /// Processor whose posts are dropped.
    pub pid: usize,
    /// First dynamic visit (0-based, per the executor's per-site visit
    /// counter) affected; every later visit is dropped too.
    pub from_visit: u64,
}

/// Injection rates and shapes. All probabilities are per-mille per
/// sync event; the partition `delay | stall | spurious | nothing` is
/// drawn from one hash, so the rates must sum to at most 1000.
#[derive(Clone, Debug)]
pub struct ChaosConfig {
    /// Rate of short scheduling-jitter delays.
    pub delay_permille: u64,
    /// Rate of long (descheduled-thread-sized) stalls.
    pub stall_permille: u64,
    /// Rate of spurious wakeups of all parked guarded waiters.
    pub spurious_permille: u64,
    /// Upper bound on jitter delays, in microseconds.
    pub max_delay_us: u64,
    /// Length of a stall, in milliseconds.
    pub stall_ms: u64,
    /// Targeted dropped post, if any (the teeth).
    pub drop: Option<DropSpec>,
}

impl Default for ChaosConfig {
    fn default() -> Self {
        ChaosConfig {
            delay_permille: 120,
            stall_permille: 10,
            spurious_permille: 40,
            max_delay_us: 200,
            stall_ms: 2,
            drop: None,
        }
    }
}

/// The deterministic injector handed to the executor via
/// [`ObserveOptions::chaos`].
pub struct ChaosInjector {
    seed: u64,
    cfg: ChaosConfig,
}

impl ChaosInjector {
    /// Benign injector (default rates, no drop) for `seed`.
    pub fn new(seed: u64) -> Self {
        ChaosInjector {
            seed,
            cfg: ChaosConfig::default(),
        }
    }

    /// Injector with explicit rates and/or a targeted drop.
    pub fn with_config(seed: u64, cfg: ChaosConfig) -> Self {
        assert!(
            cfg.delay_permille + cfg.stall_permille + cfg.spurious_permille <= 1000,
            "chaos rates exceed 1000 permille"
        );
        ChaosInjector { seed, cfg }
    }

    /// The seed the schedule is derived from.
    pub fn seed(&self) -> u64 {
        self.seed
    }
}

impl SyncChaos for ChaosInjector {
    fn at_sync(&self, site: usize, pid: usize, visit: u64) -> ChaosAction {
        if let Some(d) = self.cfg.drop {
            if site == d.site && pid == d.pid && visit >= d.from_visit {
                return ChaosAction::Drop;
            }
        }
        let h = mix(self.seed, site, pid, visit);
        let draw = h % 1000;
        let c = &self.cfg;
        if draw < c.delay_permille {
            ChaosAction::Delay(Duration::from_micros(
                1 + splitmix64(h) % c.max_delay_us.max(1),
            ))
        } else if draw < c.delay_permille + c.stall_permille {
            ChaosAction::Stall(Duration::from_millis(c.stall_ms))
        } else if draw < c.delay_permille + c.stall_permille + c.spurious_permille {
            ChaosAction::SpuriousWake
        } else {
            ChaosAction::None
        }
    }
}

/// Materialize an injector's non-trivial actions over a visit grid —
/// the "fault schedule" used to check determinism and to log what a
/// seed does.
pub fn injection_schedule(
    inj: &dyn SyncChaos,
    n_sites: usize,
    nprocs: usize,
    visits: u64,
) -> Vec<(usize, usize, u64, ChaosAction)> {
    let mut out = Vec::new();
    for site in 0..n_sites {
        for pid in 0..nprocs {
            for visit in 0..visits {
                let a = inj.at_sync(site, pid, visit);
                if a != ChaosAction::None {
                    out.push((site, pid, visit, a));
                }
            }
        }
    }
    out
}

/// A droppable post with its provenance (for logs and reports).
#[derive(Clone, Debug)]
pub struct DropCandidate {
    /// The drop to inject.
    pub spec: DropSpec,
    /// Primitive kind at the site ("counter", "neighbor", "barrier").
    pub kind: &'static str,
}

/// Enumerate the posts whose loss is *precisely attributable*: for
/// each counter site, the producer's final increment; for the last
/// neighbor site of the schedule, the final post an adjacent waiter
/// depends on; for the last barrier, one processor's final arrival.
/// Earlier posts are poor targets — the shared counters are reused
/// across visits, so a later legitimate post would release the stalled
/// waiter and shift the hang to an unrelated site.
pub fn droppable_posts(prog: &Program, bind: &Bindings, plan: &SpmdProgram) -> Vec<DropCandidate> {
    let nprocs = bind.nprocs;
    if nprocs < 2 {
        return Vec::new(); // a lone processor waits on nobody
    }
    let events = unroll(prog, bind, plan);
    let mut visit = std::collections::HashMap::<usize, u64>::new();
    // (site, from_visit, producer) of the last visit of each counter
    // site, and the overall-last neighbor / barrier events.
    let mut counters = Vec::<(usize, u64, i64)>::new();
    let mut last_neighbor: Option<(usize, u64, bool, bool)> = None;
    let mut last_pair: Option<(usize, u64, analysis::DistSet, Vec<i64>)> = None;
    let mut last_barrier: Option<(usize, u64)> = None;
    for ev in &events {
        if let Event::Sync { op, site, env } = ev {
            if matches!(op, SyncOp::None) {
                continue;
            }
            let v = visit.entry(*site).or_insert(0);
            let this = *v;
            *v += 1;
            match op {
                SyncOp::Counter { producer, .. } => {
                    let prod = producer_pid(bind, prog, producer, env);
                    match counters.iter_mut().find(|(s, ..)| s == site) {
                        Some(slot) => *slot = (*site, this, prod),
                        None => counters.push((*site, this, prod)),
                    }
                }
                SyncOp::Neighbor { fwd, bwd } => last_neighbor = Some((*site, this, *fwd, *bwd)),
                SyncOp::PairCounter { dists, producers } => {
                    let prods = producers
                        .iter()
                        .map(|spec| producer_pid(bind, prog, spec, env))
                        .collect();
                    last_pair = Some((*site, this, *dists, prods));
                }
                SyncOp::Barrier => last_barrier = Some((*site, this)),
                SyncOp::None => {}
            }
        }
    }
    let mut out = Vec::new();
    for (site, from_visit, prod) in counters {
        if (0..nprocs).contains(&prod) {
            out.push(DropCandidate {
                spec: DropSpec {
                    site,
                    pid: prod as usize,
                    from_visit,
                },
                kind: "counter",
            });
        }
    }
    if let Some((site, from_visit, fwd, bwd)) = last_neighbor {
        // `fwd` waits on pid-1, so P0's post is awaited by P1; `bwd`
        // waits on pid+1, so the last processor's post is awaited.
        let pid = if fwd {
            0
        } else if bwd {
            nprocs as usize - 1
        } else {
            usize::MAX
        };
        if pid != usize::MAX {
            out.push(DropCandidate {
                spec: DropSpec {
                    site,
                    pid,
                    from_visit,
                },
                kind: "neighbor",
            });
        }
    }
    if let Some((site, from_visit, dists, prods)) = last_pair {
        // A positive distance d means pid d waits on P0's cell, so P0's
        // final post is awaited; with only negative distances the last
        // processor's post is (pid nprocs-1+d waits on it). Producer
        // targets are awaited by every other processor.
        let mut pids: Vec<usize> = Vec::new();
        if dists.iter().any(|d| d > 0 && d < nprocs) {
            pids.push(0);
        } else if dists.iter().any(|d| d < 0 && -d < nprocs) {
            pids.push(nprocs as usize - 1);
        }
        for prod in prods {
            if (0..nprocs).contains(&prod) && !pids.contains(&(prod as usize)) {
                pids.push(prod as usize);
            }
        }
        for pid in pids {
            out.push(DropCandidate {
                spec: DropSpec {
                    site,
                    pid,
                    from_visit,
                },
                kind: "pairwise",
            });
        }
    }
    if let Some((site, from_visit)) = last_barrier {
        out.push(DropCandidate {
            spec: DropSpec {
                site,
                pid: 0,
                from_visit,
            },
            kind: "barrier",
        });
    }
    out
}

/// One teeth run's verdict.
#[derive(Debug)]
pub struct ToothOutcome {
    /// What was dropped.
    pub spec: DropSpec,
    /// Primitive kind at the dropped site.
    pub kind: &'static str,
    /// The executor produced a [`FailureReport`] (instead of hanging
    /// or silently succeeding).
    pub detected: bool,
    /// Site the report's headline cause is attributed to.
    pub attributed_site: Option<usize>,
    /// The report names the dropped site — in the headline or in any
    /// processor's terminal error (a consumer stuck at the dropped
    /// site always records it, even when a downstream casualty's
    /// timeout won the race to be the headline).
    pub named_site: bool,
    /// Wall-clock of the teeth run (bounded by a few deadlines).
    pub elapsed: Duration,
    /// The report itself (for bundles and logs).
    pub failure: Option<FailureReport>,
}

/// Chaos campaign verdict for one (program, plan).
#[derive(Debug)]
pub struct ChaosReport {
    /// Program name.
    pub program: String,
    /// Chaos seed used throughout.
    pub seed: u64,
    /// The benign run completed without a detected failure.
    pub benign_ok: bool,
    /// Divergence of the benign run from the sequential oracle.
    pub benign_diff: f64,
    /// One verdict per droppable post.
    pub teeth: Vec<ToothOutcome>,
}

impl ChaosReport {
    /// True when the benign run passed and every tooth bit.
    pub fn ok(&self) -> bool {
        self.benign_ok && self.teeth.iter().all(|t| t.detected && t.named_site)
    }

    /// Human-readable failure lines (empty when [`ChaosReport::ok`]).
    pub fn failures(&self) -> Vec<String> {
        let mut out = Vec::new();
        if !self.benign_ok {
            out.push(format!(
                "benign chaos run failed (seed {}, diff {:e})",
                self.seed, self.benign_diff
            ));
        }
        for t in &self.teeth {
            if !t.detected {
                out.push(format!(
                    "dropped {} post at s{} (P{}) was not detected",
                    t.kind, t.spec.site, t.spec.pid
                ));
            } else if !t.named_site {
                out.push(format!(
                    "dropped {} post at s{} (P{}) was misattributed to {:?}",
                    t.kind, t.spec.site, t.spec.pid, t.attributed_site
                ));
            }
        }
        out
    }
}

fn report_names_site(r: &FailureReport, site: usize) -> bool {
    if r.cause.site() == Some(site) {
        return true;
    }
    let at = format!("at s{site}");
    r.per_proc.iter().any(|s| {
        // Match "at s3 on…" / "at s3:…" but not "at s30".
        s[..].match_indices(&at).any(|(k, _)| {
            s[k + at.len()..]
                .chars()
                .next()
                .map(|c| !c.is_ascii_digit())
                .unwrap_or(true)
        })
    })
}

/// Run the chaos campaign for one program and plan: a benign seeded
/// run that must pass, then one targeted drop per droppable post, each
/// of which must terminate within the deadline with a report naming
/// the dropped site. `team.nprocs()` must match `bind.nprocs`.
pub fn chaos_check(
    prog: &Arc<Program>,
    bind: &Arc<Bindings>,
    plan: &SpmdProgram,
    team: &Team,
    seed: u64,
    deadline: Duration,
    tol: f64,
) -> ChaosReport {
    let oracle = Mem::new(prog, bind);
    run_sequential(prog, bind, &oracle);

    let mem = Arc::new(Mem::new(prog, bind));
    let benign = run_parallel_observed(
        prog,
        bind,
        plan,
        &mem,
        team,
        &ObserveOptions {
            deadline: Some(deadline),
            chaos: Some(Arc::new(ChaosInjector::new(seed))),
            ..ObserveOptions::default()
        },
    );
    let benign_diff = mem.max_abs_diff(&oracle);
    let benign_ok = benign.ok() && benign_diff <= tol;

    let mut teeth = Vec::new();
    for cand in droppable_posts(prog, bind, plan) {
        let inj = ChaosInjector::with_config(
            seed,
            ChaosConfig {
                drop: Some(cand.spec),
                ..ChaosConfig::default()
            },
        );
        let mem = Arc::new(Mem::new(prog, bind));
        let t0 = Instant::now();
        let out = run_parallel_observed(
            prog,
            bind,
            plan,
            &mem,
            team,
            &ObserveOptions {
                deadline: Some(deadline),
                chaos: Some(Arc::new(inj)),
                ..ObserveOptions::default()
            },
        );
        let elapsed = t0.elapsed();
        let failure = out.failure.map(|mut f| {
            f.chaos_seed = Some(seed);
            f
        });
        teeth.push(ToothOutcome {
            spec: cand.spec,
            kind: cand.kind,
            detected: failure.is_some(),
            attributed_site: failure.as_ref().and_then(|f| f.cause.site()),
            named_site: failure
                .as_ref()
                .map(|f| report_names_site(f, cand.spec.site))
                .unwrap_or(false),
            elapsed,
            failure,
        });
    }

    ChaosReport {
        program: prog.name.clone(),
        seed,
        benign_ok,
        benign_diff,
        teeth,
    }
}

/// One tooth's verdict under the *recovering* executor: the dropped
/// post must be absorbed (demote → quarantine → isolate) within the
/// retry budget, with results matching the sequential oracle.
#[derive(Debug)]
pub struct RecoveredTooth {
    /// What was dropped.
    pub spec: DropSpec,
    /// Primitive kind at the dropped site.
    pub kind: &'static str,
    /// The supervised run completed within the budget.
    pub converged: bool,
    /// Completion took at least one retry (a persistent drop absorbed
    /// silently would mean the tooth never bit).
    pub recovered: bool,
    /// Divergence of the recovered memory from the sequential oracle.
    pub diff: f64,
    /// Executions spent.
    pub attempts_used: u32,
    /// The full recovery timeline (for `recovery.json` bundles).
    pub report: obs::RecoveryReport,
}

/// Recovery campaign verdict for one (program, plan).
#[derive(Debug)]
pub struct RecoveryCheckReport {
    /// Program name.
    pub program: String,
    /// Chaos seed used throughout.
    pub seed: u64,
    /// Tolerance the diffs were checked against.
    pub tol: f64,
    /// The benign seeded run completed (retries allowed — self-healing
    /// may absorb an unlucky stall) and matched the oracle.
    pub benign_ok: bool,
    /// Divergence of the benign run from the sequential oracle.
    pub benign_diff: f64,
    /// One verdict per droppable post.
    pub teeth: Vec<RecoveredTooth>,
}

impl RecoveryCheckReport {
    /// True when the benign run passed and every tooth was absorbed by
    /// recovery with oracle-exact results.
    pub fn ok(&self) -> bool {
        self.benign_ok
            && self
                .teeth
                .iter()
                .all(|t| t.converged && t.recovered && t.diff <= self.tol)
    }

    /// Human-readable failure lines (empty when [`RecoveryCheckReport::ok`]).
    pub fn failures(&self) -> Vec<String> {
        let mut out = Vec::new();
        if !self.benign_ok {
            out.push(format!(
                "benign recovering run failed (seed {}, diff {:e})",
                self.seed, self.benign_diff
            ));
        }
        for t in &self.teeth {
            if !t.converged {
                out.push(format!(
                    "dropped {} post at s{} (P{}) exhausted the retry budget ({} attempts)",
                    t.kind, t.spec.site, t.spec.pid, t.attempts_used
                ));
            } else if !t.recovered {
                out.push(format!(
                    "dropped {} post at s{} (P{}) was absorbed without any retry (tooth never bit)",
                    t.kind, t.spec.site, t.spec.pid
                ));
            } else if t.diff > self.tol {
                out.push(format!(
                    "recovered run for dropped {} post at s{} diverged from the oracle by {:e}",
                    t.kind, t.spec.site, t.diff
                ));
            }
        }
        out
    }
}

/// Run the chaos campaign under the self-healing executor: a benign
/// seeded run, then one targeted persistent drop per droppable post —
/// each must *converge via recovery* (per-site barrier fallback,
/// quarantine, isolation) with memory matching the sequential oracle,
/// instead of merely being detected as [`chaos_check`] demands.
#[allow(clippy::too_many_arguments)]
pub fn recovery_check(
    prog: &Arc<Program>,
    bind: &Arc<Bindings>,
    plan: &SpmdProgram,
    team: &Team,
    seed: u64,
    deadline: Duration,
    tol: f64,
    policy: &runtime::RetryPolicy,
) -> RecoveryCheckReport {
    recovery_check_with(
        prog,
        bind,
        plan,
        team,
        seed,
        deadline,
        tol,
        policy,
        &ObserveOptions::default(),
    )
}

/// As [`recovery_check`], but layering the drop campaign on top of a
/// caller-provided [`ObserveOptions`] base — so the same drop matrix
/// can be replayed against tuned fabrics (tree barriers of any fan-in,
/// eager-park spin policies, …). The base's `deadline` and `chaos`
/// fields are overwritten by the campaign; everything else is honored.
#[allow(clippy::too_many_arguments)]
pub fn recovery_check_with(
    prog: &Arc<Program>,
    bind: &Arc<Bindings>,
    plan: &SpmdProgram,
    team: &Team,
    seed: u64,
    deadline: Duration,
    tol: f64,
    policy: &runtime::RetryPolicy,
    base: &ObserveOptions,
) -> RecoveryCheckReport {
    let oracle = Mem::new(prog, bind);
    run_sequential(prog, bind, &oracle);

    let mem = Arc::new(Mem::new(prog, bind));
    let benign = interp::run_parallel_recovering(
        prog,
        bind,
        plan,
        &mem,
        team,
        &ObserveOptions {
            deadline: Some(deadline),
            chaos: Some(Arc::new(ChaosInjector::new(seed))),
            ..base.clone()
        },
        policy,
    );
    let benign_diff = mem.max_abs_diff(&oracle);
    let benign_ok = benign.ok() && benign_diff <= tol;

    let mut teeth = Vec::new();
    for cand in droppable_posts(prog, bind, plan) {
        let inj = ChaosInjector::with_config(
            seed,
            ChaosConfig {
                drop: Some(cand.spec),
                ..ChaosConfig::default()
            },
        );
        let mem = Arc::new(Mem::new(prog, bind));
        let r = interp::run_parallel_recovering(
            prog,
            bind,
            plan,
            &mem,
            team,
            &ObserveOptions {
                deadline: Some(deadline),
                chaos: Some(Arc::new(inj)),
                ..base.clone()
            },
            policy,
        );
        teeth.push(RecoveredTooth {
            spec: cand.spec,
            kind: cand.kind,
            converged: r.ok(),
            recovered: r.recovered(),
            diff: mem.max_abs_diff(&oracle),
            attempts_used: r.attempts_used,
            report: r.report(Some(seed)),
        });
    }

    RecoveryCheckReport {
        program: prog.name.clone(),
        seed,
        tol,
        benign_ok,
        benign_diff,
        teeth,
    }
}

/// How a permanently lost processor dies.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum KillMode {
    /// The pid silently drops the post half of *every* sync event it
    /// reaches, at every site, forever — a stuck or fenced-off core.
    /// Peers wedge waiting for arrivals that never come.
    Silent,
    /// The pid panics at its first sync event, every attempt — a core
    /// that reliably faults.
    Panic,
}

impl KillMode {
    /// Stable lower-case name (report vocabulary).
    pub fn as_str(&self) -> &'static str {
        match self {
            KillMode::Silent => "silent",
            KillMode::Panic => "panic",
        }
    }
}

/// Permanent kill-pid chaos policy: processor `pid` is dead for the
/// whole campaign, in the chosen [`KillMode`]. Unlike [`DropSpec`]
/// this is not a per-site fault, so it reports itself *unmaskable*
/// ([`SyncChaos::maskable`]): quarantining a sync site cannot revive
/// hardware, and the recovery ladder must not be fooled into thinking
/// it absorbed the fault.
pub struct KillPidChaos {
    /// The dead processor.
    pub pid: usize,
    /// How it dies.
    pub mode: KillMode,
}

impl SyncChaos for KillPidChaos {
    fn at_sync(&self, _site: usize, pid: usize, _visit: u64) -> ChaosAction {
        if pid == self.pid {
            match self.mode {
                KillMode::Silent => return ChaosAction::Drop,
                KillMode::Panic => panic!("injected: permanent processor fault on P{pid}"),
            }
        }
        ChaosAction::None
    }

    fn maskable(&self) -> bool {
        false
    }
}

/// One kill-pid run's verdict under the *degrading* executor.
#[derive(Debug)]
pub struct DegradedRun {
    /// The processor that was killed.
    pub pid: usize,
    /// How it was killed.
    pub mode: KillMode,
    /// The run completed (the availability guarantee held).
    pub completed: bool,
    /// Completion needed something beyond a clean first attempt (a
    /// kill that was absorbed silently would mean the policy never
    /// bit).
    pub degraded: bool,
    /// The rung that completed the run (`"recovered"`, `"shrunk"`, or
    /// `"serial"` — `"clean"` would fail the check).
    pub rung: String,
    /// Width the run completed at.
    pub nprocs_final: usize,
    /// Permanent losses classified along the way.
    pub procs_lost: usize,
    /// Divergence of the final memory from the sequential oracle.
    pub diff: f64,
    /// The full degradation timeline (for `degrade.json` bundles).
    pub report: obs::DegradationReport,
}

/// Degradation campaign verdict for one (program, plan): every pid
/// killed silently, plus pid 0 killed by panic (the forced worst case
/// — it exists at every width, so the run must descend to the serial
/// tail).
#[derive(Debug)]
pub struct DegradeCheckReport {
    /// Program name.
    pub program: String,
    /// Tolerance the diffs were checked against.
    pub tol: f64,
    /// One verdict per kill.
    pub runs: Vec<DegradedRun>,
}

impl DegradeCheckReport {
    /// True when every kill completed, degraded, and matched the
    /// oracle.
    pub fn ok(&self) -> bool {
        !self.runs.is_empty()
            && self
                .runs
                .iter()
                .all(|r| r.completed && r.degraded && r.diff <= self.tol)
    }

    /// Human-readable failure lines (empty when [`DegradeCheckReport::ok`]).
    pub fn failures(&self) -> Vec<String> {
        let mut out = Vec::new();
        if self.runs.is_empty() {
            out.push("degrade campaign ran no kills".to_string());
        }
        for r in &self.runs {
            if !r.completed {
                out.push(format!(
                    "{} kill of P{} did not complete (availability guarantee violated)",
                    r.mode.as_str(),
                    r.pid
                ));
            } else if !r.degraded {
                out.push(format!(
                    "{} kill of P{} was absorbed without degrading (policy never bit)",
                    r.mode.as_str(),
                    r.pid
                ));
            } else if r.diff > self.tol {
                out.push(format!(
                    "{} kill of P{} completed on rung '{}' but diverged from the oracle by {:e}",
                    r.mode.as_str(),
                    r.pid,
                    r.rung,
                    r.diff
                ));
            }
        }
        out
    }
}

/// Run the total-availability campaign for one program and plan: for
/// every pid a run with that processor permanently silent-killed, plus
/// one run with pid 0 panic-killed (which survives every shrink and
/// forces the serial tail). Each run must *complete with oracle-exact
/// memory* via the degradation ladder — shrink rounds re-plan through
/// `replan`, so pass the same plan family that produced `plan`.
#[allow(clippy::too_many_arguments)]
pub fn degrade_check(
    prog: &Arc<Program>,
    bind: &Arc<Bindings>,
    plan: &SpmdProgram,
    team: &Team,
    deadline: Duration,
    tol: f64,
    policy: &runtime::RetryPolicy,
    replan: &dyn Fn(&Program, &Bindings) -> SpmdProgram,
) -> DegradeCheckReport {
    let oracle = Mem::new(prog, bind);
    run_sequential(prog, bind, &oracle);

    let nprocs = bind.nprocs.max(0) as usize;
    let mut kills: Vec<(usize, KillMode)> =
        (0..nprocs).map(|pid| (pid, KillMode::Silent)).collect();
    kills.push((0, KillMode::Panic));

    let mut runs = Vec::new();
    for (pid, mode) in kills {
        let mem = Arc::new(Mem::new(prog, bind));
        let d = interp::run_parallel_degrading(
            prog,
            bind,
            plan,
            &mem,
            team,
            &ObserveOptions {
                deadline: Some(deadline),
                chaos: Some(Arc::new(KillPidChaos { pid, mode })),
                ..ObserveOptions::default()
            },
            policy,
            replan,
        );
        runs.push(DegradedRun {
            pid,
            mode,
            completed: d.completed(),
            degraded: d.degraded(),
            rung: d.rung.name().to_string(),
            nprocs_final: d.nprocs_final,
            procs_lost: d.procs_lost,
            diff: mem.max_abs_diff(&oracle),
            report: d.report(None),
        });
    }

    DegradeCheckReport {
        program: prog.name.clone(),
        tol,
        runs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    #[test]
    fn same_seed_same_schedule_different_seed_differs() {
        let a = ChaosInjector::new(7);
        let b = ChaosInjector::new(7);
        let c = ChaosInjector::new(8);
        let sa = injection_schedule(&a, 6, 4, 32);
        let sb = injection_schedule(&b, 6, 4, 32);
        let sc = injection_schedule(&c, 6, 4, 32);
        assert!(!sa.is_empty(), "default rates must inject something");
        assert_eq!(sa, sb);
        assert_ne!(sa, sc);
    }

    #[test]
    fn drop_spec_overrides_the_draw() {
        let inj = ChaosInjector::with_config(
            3,
            ChaosConfig {
                drop: Some(DropSpec {
                    site: 2,
                    pid: 1,
                    from_visit: 4,
                }),
                ..ChaosConfig::default()
            },
        );
        assert_eq!(inj.at_sync(2, 1, 4), ChaosAction::Drop);
        assert_eq!(inj.at_sync(2, 1, 9), ChaosAction::Drop);
        assert_ne!(inj.at_sync(2, 1, 3), ChaosAction::Drop);
        assert_ne!(inj.at_sync(2, 0, 4), ChaosAction::Drop);
    }

    #[test]
    fn generated_program_recovers_from_every_tooth() {
        use spmd_opt::optimize;
        let g = gen::generate(5);
        let bind = Arc::new(g.bindings(4));
        let prog = Arc::new(g.prog.clone());
        let plan = optimize(&prog, &bind);
        let team = Team::new(4);
        let policy = runtime::RetryPolicy {
            backoff_base: Duration::from_millis(1),
            backoff_cap: Duration::from_millis(4),
            ..runtime::RetryPolicy::default()
        };
        let r = recovery_check(
            &prog,
            &bind,
            &plan,
            &team,
            11,
            Duration::from_millis(150),
            0.0,
            &policy,
        );
        assert!(r.ok(), "recovery check failed: {:?}", r.failures());
        for t in &r.teeth {
            assert!(t.attempts_used <= policy.max_attempts);
            assert!(t.report.recovered);
            // The ladder actually engaged: something was demoted.
            assert!(!t.report.demoted.is_empty());
        }
    }

    #[test]
    fn generated_program_survives_every_kill_pid_policy() {
        use spmd_opt::optimize;
        let g = gen::generate(5);
        let bind = Arc::new(g.bindings(3));
        let prog = Arc::new(g.prog.clone());
        let plan = optimize(&prog, &bind);
        let team = Team::new(3);
        let policy = runtime::RetryPolicy {
            max_attempts: 4,
            backoff_base: Duration::from_millis(1),
            backoff_cap: Duration::from_millis(2),
            sticky_pid_k: 2,
            ..runtime::RetryPolicy::default()
        };
        let r = degrade_check(
            &prog,
            &bind,
            &plan,
            &team,
            Duration::from_millis(150),
            0.0,
            &policy,
            &|p, b| optimize(p, b),
        );
        assert!(r.ok(), "degrade check failed: {:?}", r.failures());
        // 3 silent kills + the forced-serial panic kill of P0.
        assert_eq!(r.runs.len(), 4);
        let worst = r.runs.last().unwrap();
        assert_eq!((worst.pid, worst.mode), (0, KillMode::Panic));
        assert_eq!(worst.rung, "serial", "P0 exists at every width");
        assert_eq!(worst.nprocs_final, 1);
        for run in &r.runs {
            assert_eq!(run.diff, 0.0, "bitwise availability guarantee");
            assert_eq!(run.report.rung, run.rung);
        }
    }

    #[test]
    fn generated_program_survives_benign_and_fails_teeth() {
        use spmd_opt::optimize;
        let g = gen::generate(5);
        let bind = Arc::new(g.bindings(4));
        let prog = Arc::new(g.prog.clone());
        let plan = optimize(&prog, &bind);
        let team = Team::new(4);
        let r = chaos_check(
            &prog,
            &bind,
            &plan,
            &team,
            11,
            Duration::from_millis(150),
            0.0,
        );
        assert!(r.benign_ok, "benign run failed: diff {:e}", r.benign_diff);
        for t in &r.teeth {
            assert!(t.detected, "{} drop at s{} undetected", t.kind, t.spec.site);
            assert!(
                t.named_site,
                "{} drop at s{} attributed to {:?}",
                t.kind, t.spec.site, t.attributed_site
            );
            assert!(t.elapsed < Duration::from_secs(30));
        }
    }
}
