//! The `beoptd` TCP front end: accept loop, per-connection handlers,
//! admission control, and the shard supervisor.
//!
//! Connection handling is deliberately thread-per-connection over
//! blocking sockets — client counts are small (build farms, not web
//! traffic) and the compile work dominates. The interesting parts are
//! the contracts:
//!
//! * **Admission is non-blocking.** A full shard queue means an
//!   immediate `overloaded` reply with a `retry_after_ms` hint sized
//!   to the backlog, never a stalled socket. Saturation degrades into
//!   fast sheds instead of timeouts.
//! * **Every request carries a deadline.** Expired work is answered
//!   (`deadline_exceeded`), not silently compiled late.
//! * **Crashes are answered too.** If the owning shard dies
//!   mid-request the reply channel drops and the handler answers
//!   `shard_crashed` — a retryable error the client backs off on,
//!   while the supervisor restarts the shard from its last snapshot.

use crate::chaos::{ServiceChaos, ServiceFault};
use crate::proto::{
    decode_request, encode_reply, ErrorCode, ErrorReply, Reply, Request, PROTO_VERSION,
};
use crate::queue::PushError;
use crate::shard::{route, Job, Shard, ShardConfig};
use obs::{service_stats_json, Json, ServiceStats};
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Service-wide configuration.
#[derive(Clone)]
pub struct ServiceConfig {
    /// Bind address (use port 0 for an ephemeral test port).
    pub addr: String,
    /// Worker shard count.
    pub nshards: usize,
    /// Per-shard admission queue bound.
    pub queue_cap: usize,
    /// Per-shard feasibility-memo capacity.
    pub feas_capacity: usize,
    /// Snapshot directory; `None` disables persistence.
    pub snapshot_dir: Option<PathBuf>,
    /// Snapshot after this many served requests per shard (0 = only
    /// explicit/shutdown snapshots).
    pub snapshot_every: u64,
    /// Deadline applied when a request does not carry one.
    pub default_deadline: Duration,
    /// How often the supervisor checks for dead workers.
    pub supervisor_poll: Duration,
    /// Service-plane fault schedule (None = quiet).
    pub chaos: Option<Arc<dyn ServiceChaos>>,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            addr: "127.0.0.1:0".to_string(),
            nshards: 2,
            queue_cap: 64,
            feas_capacity: ineq::cache::FEAS_MEMO_CAP,
            snapshot_dir: None,
            snapshot_every: 8,
            default_deadline: Duration::from_secs(10),
            supervisor_poll: Duration::from_millis(20),
            chaos: None,
        }
    }
}

struct Inner {
    shards: Vec<Arc<Shard>>,
    shutdown: AtomicBool,
    accepted: AtomicU64,
    dropped_connections: AtomicU64,
    transport_seq: AtomicU64,
    default_deadline: Duration,
    chaos: Option<Arc<dyn ServiceChaos>>,
}

impl Inner {
    fn stats(&self) -> ServiceStats {
        ServiceStats {
            nshards: self.shards.len(),
            accepted: self.accepted.load(Ordering::Relaxed),
            dropped_connections: self.dropped_connections.load(Ordering::Relaxed),
            shards: self.shards.iter().map(|s| s.stats()).collect(),
        }
    }
}

/// A running service instance.
pub struct Service {
    inner: Arc<Inner>,
    /// The actually bound address (resolves port 0).
    pub addr: SocketAddr,
    accept_thread: Mutex<Option<JoinHandle<()>>>,
    supervisor_thread: Mutex<Option<JoinHandle<()>>>,
}

impl Service {
    /// Bind, start the shard pool, the supervisor, and the accept
    /// loop. Returns once the listener is live.
    pub fn start(cfg: ServiceConfig) -> std::io::Result<Service> {
        let listener = TcpListener::bind(&cfg.addr)?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let shard_cfg = ShardConfig {
            queue_cap: cfg.queue_cap,
            feas_capacity: cfg.feas_capacity,
            snapshot_dir: cfg.snapshot_dir.clone(),
            snapshot_every: cfg.snapshot_every,
            chaos: cfg.chaos.clone(),
        };
        let shards: Vec<Arc<Shard>> = (0..cfg.nshards.max(1))
            .map(|id| Shard::start(id, shard_cfg.clone()))
            .collect();
        let inner = Arc::new(Inner {
            shards,
            shutdown: AtomicBool::new(false),
            accepted: AtomicU64::new(0),
            dropped_connections: AtomicU64::new(0),
            transport_seq: AtomicU64::new(0),
            default_deadline: cfg.default_deadline,
            chaos: cfg.chaos.clone(),
        });
        let supervisor = {
            let inner = inner.clone();
            let poll = cfg.supervisor_poll;
            std::thread::Builder::new()
                .name("beoptd-supervisor".to_string())
                .spawn(move || supervisor_main(inner, poll))
                .expect("spawn supervisor")
        };
        let acceptor = {
            let inner = inner.clone();
            std::thread::Builder::new()
                .name("beoptd-accept".to_string())
                .spawn(move || accept_main(inner, listener))
                .expect("spawn acceptor")
        };
        Ok(Service {
            inner,
            addr,
            accept_thread: Mutex::new(Some(acceptor)),
            supervisor_thread: Mutex::new(Some(supervisor)),
        })
    }

    /// Point-in-time service stats.
    pub fn stats(&self) -> ServiceStats {
        self.inner.stats()
    }

    /// True once a shutdown has been requested (by [`Service::stop`]
    /// or a wire `shutdown` op).
    pub fn is_shutting_down(&self) -> bool {
        self.inner.shutdown.load(Ordering::Relaxed)
    }

    /// Request a graceful shutdown: refuse new work, drain queues,
    /// snapshot every shard, stop the threads.
    pub fn stop(&self) {
        self.inner.shutdown.store(true, Ordering::Relaxed);
        for s in &self.inner.shards {
            s.close();
        }
    }

    /// Block until the service has fully stopped (threads joined,
    /// final snapshots written). Call after [`Service::stop`] — or
    /// alone, to wait for a wire-initiated shutdown.
    pub fn wait(&self) {
        if let Some(h) = self.accept_thread.lock().unwrap().take() {
            let _ = h.join();
        }
        if let Some(h) = self.supervisor_thread.lock().unwrap().take() {
            let _ = h.join();
        }
        for s in &self.inner.shards {
            s.join();
        }
    }
}

/// Restart dead shard workers until shutdown; then stop supervising
/// (the workers exit through their drain path, not through us).
fn supervisor_main(inner: Arc<Inner>, poll: Duration) {
    while !inner.shutdown.load(Ordering::Relaxed) {
        for s in &inner.shards {
            if s.restart_if_dead() {
                eprintln!(
                    "beoptd: shard {} worker died; restarted from snapshot",
                    s.id
                );
            }
        }
        std::thread::sleep(poll);
    }
}

fn accept_main(inner: Arc<Inner>, listener: TcpListener) {
    let mut handlers: Vec<JoinHandle<()>> = Vec::new();
    while !inner.shutdown.load(Ordering::Relaxed) {
        match listener.accept() {
            Ok((stream, _)) => {
                let inner = inner.clone();
                let h = std::thread::Builder::new()
                    .name("beoptd-conn".to_string())
                    .spawn(move || handle_connection(inner, stream))
                    .expect("spawn connection handler");
                handlers.push(h);
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(2)),
        }
        handlers.retain(|h| !h.is_finished());
    }
    for h in handlers {
        let _ = h.join();
    }
}

fn send_line(stream: &mut TcpStream, line: &str) -> std::io::Result<()> {
    stream.write_all(line.as_bytes())?;
    stream.write_all(b"\n")
}

fn error_reply(id: u64, code: ErrorCode, message: String, retry_after_ms: Option<u64>) -> Reply {
    Reply::Error(ErrorReply {
        id,
        code,
        message,
        retry_after_ms,
    })
}

fn handle_connection(inner: Arc<Inner>, mut stream: TcpStream) {
    let _ = stream.set_read_timeout(Some(Duration::from_secs(30)));
    let _ = stream.set_nodelay(true);
    let reader = match stream.try_clone() {
        Ok(s) => BufReader::new(s),
        Err(_) => return,
    };
    for line in reader.lines() {
        let Ok(line) = line else { return };
        if line.trim().is_empty() {
            continue;
        }
        let req = match decode_request(&line) {
            Ok(r) => r,
            Err(msg) => {
                let reply = error_reply(0, ErrorCode::BadRequest, msg, None);
                let _ = send_line(&mut stream, &encode_reply(&reply));
                continue;
            }
        };
        let reply = match req {
            Request::Ping => Reply::Ok(Json::obj().set("op", "ping").set("v", PROTO_VERSION)),
            Request::Stats => Reply::Stats(service_stats_json(&inner.stats())),
            Request::Snapshot => {
                let mut entries = 0u64;
                let mut errors = 0u64;
                for s in &inner.shards {
                    match s.snapshot_now() {
                        Ok(n) => entries += n as u64,
                        Err(_) => errors += 1,
                    }
                }
                Reply::Ok(
                    Json::obj()
                        .set("op", "snapshot")
                        .set("entries", entries)
                        .set("errors", errors),
                )
            }
            Request::Shutdown => {
                inner.shutdown.store(true, Ordering::Relaxed);
                for s in &inner.shards {
                    s.close();
                }
                let reply = Reply::Ok(Json::obj().set("op", "shutdown"));
                let _ = send_line(&mut stream, &encode_reply(&reply));
                return;
            }
            Request::Optimize(opt) => {
                if inner.shutdown.load(Ordering::Relaxed) {
                    let reply = error_reply(
                        opt.id,
                        ErrorCode::ShuttingDown,
                        "service is draining".to_string(),
                        Some(50),
                    );
                    let _ = send_line(&mut stream, &encode_reply(&reply));
                    continue;
                }
                let seq = inner.transport_seq.fetch_add(1, Ordering::Relaxed);
                match inner.chaos.as_ref().and_then(|c| c.at_transport(seq)) {
                    Some(ServiceFault::DropConnection) => {
                        inner.dropped_connections.fetch_add(1, Ordering::Relaxed);
                        return; // no reply: the client's read fails and it retries
                    }
                    Some(ServiceFault::Delay(d)) => std::thread::sleep(d),
                    _ => {}
                }
                inner.accepted.fetch_add(1, Ordering::Relaxed);
                let shard = &inner.shards[route(&opt.program, inner.shards.len())];
                let deadline_in = opt
                    .deadline_ms
                    .map(Duration::from_millis)
                    .unwrap_or(inner.default_deadline);
                let accepted = Instant::now();
                let deadline = accepted + deadline_in;
                let (tx, rx) = mpsc::channel();
                let id = opt.id;
                let job = Job {
                    req: opt,
                    accepted,
                    deadline,
                    reply: tx,
                };
                match shard.admit(job) {
                    Ok(()) => {
                        // Wait past the deadline by a grace period so the
                        // worker's structured deadline_exceeded wins when
                        // it is merely late, not stuck.
                        let wait = deadline_in + Duration::from_millis(250);
                        match rx.recv_timeout(wait) {
                            Ok(reply) => reply,
                            Err(mpsc::RecvTimeoutError::Timeout) => error_reply(
                                id,
                                ErrorCode::DeadlineExceeded,
                                "no reply within deadline".to_string(),
                                Some(5),
                            ),
                            // Sender dropped: the worker died mid-request.
                            Err(mpsc::RecvTimeoutError::Disconnected) => error_reply(
                                id,
                                ErrorCode::ShardCrashed,
                                format!("shard {} crashed mid-request", shard.id),
                                Some(10),
                            ),
                        }
                    }
                    Err(PushError::Full(_)) => {
                        // Hint scales with the backlog: a saturated queue
                        // pushes retries further out.
                        let hint = 5 + 2 * shard.backlog() as u64;
                        error_reply(
                            id,
                            ErrorCode::Overloaded,
                            format!(
                                "shard {} queue full ({} waiting)",
                                shard.id,
                                shard.backlog()
                            ),
                            Some(hint),
                        )
                    }
                    Err(PushError::Closed(_)) => error_reply(
                        id,
                        ErrorCode::ShuttingDown,
                        "service is draining".to_string(),
                        Some(50),
                    ),
                }
            }
        };
        if send_line(&mut stream, &encode_reply(&reply)).is_err() {
            return;
        }
    }
}
