//! Array privatization showcase (the paper's §5/"future work" item,
//! implemented here): a per-step gather into a work vector followed by a
//! rank-1-style update.
//!
//! With the work vector **privatizable**, the gather loop becomes a
//! *replicated computation* (every processor fills its own copy) and the
//! gather → update barrier disappears — accesses to private storage
//! never communicate. With a plain shared work vector the same program
//! needs a barrier per step: `build_shared` exists so tests and the
//! ablation can measure exactly what privatization buys.

use crate::{Built, Scale};
use ir::build::*;

fn build_impl(scale: Scale, private: bool) -> Built {
    let nv = match scale {
        Scale::Test => 12,
        Scale::Small => 48,
        Scale::Full => 192,
    };
    let mut pb = ProgramBuilder::new(if private { "workvec" } else { "workvec_shared" });
    let n = pb.sym("n");
    let a = pb.array("A", &[sym(n), sym(n)], dist_block());
    let d = if private {
        pb.private_array("D", &[sym(n)])
    } else {
        pb.array("D", &[sym(n)], dist_repl())
    };

    let i0 = pb.begin_par("i0", con(0), sym(n) - 1);
    let j0 = pb.begin_seq("j0", con(0), sym(n) - 1);
    pb.assign(
        elem(a, [idx(i0), idx(j0)]),
        ival(idx(i0) * 3 + idx(j0)).sin(),
    );
    pb.end();
    pb.end();

    let k = pb.begin_seq("k", con(0), sym(n) - 2);
    // Gather row k into the work vector.
    let j1 = pb.begin_par("j1", con(0), sym(n) - 1);
    pb.assign(elem(d, [idx(j1)]), arr(a, [idx(k), idx(j1)]) * ex(0.5));
    pb.end();
    // Update trailing rows from the work vector.
    let i2 = pb.begin_par("i2", con(0), sym(n) - 1);
    let j2 = pb.begin_seq("j2", con(0), sym(n) - 1);
    pb.begin_guard(vec![ge0(idx(i2) - idx(k) - 1)]);
    pb.assign(
        elem(a, [idx(i2), idx(j2)]),
        arr(a, [idx(i2), idx(j2)]) * ex(0.9) + arr(d, [idx(i2)]) * arr(d, [idx(j2)]) * ex(0.01),
    );
    pb.end();
    pb.end();
    pb.end();
    pb.end(); // k

    Built {
        prog: pb.finish(),
        values: vec![(n, nv)],
    }
}

/// The privatized variant (the suite entry).
pub fn build(scale: Scale) -> Built {
    build_impl(scale, true)
}

/// The shared-work-vector variant (for the privatization ablation).
pub fn build_shared(scale: Scale) -> Built {
    build_impl(scale, false)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn privatization_eliminates_the_gather_barrier() {
        let bindp = |b: &Built| b.bindings(4);
        let private = build(Scale::Test);
        let shared = build_shared(Scale::Test);
        let st_p = spmd_opt::optimize(&private.prog, &bindp(&private)).static_stats();
        let st_s = spmd_opt::optimize(&shared.prog, &bindp(&shared)).static_stats();
        assert!(
            st_p.barriers < st_s.barriers,
            "private {st_p:?} vs shared {st_s:?}"
        );
    }

    #[test]
    fn gather_phase_is_replicated_when_private() {
        use spmd_opt::{PhaseKind, RItem, TopItem};
        let built = build(Scale::Test);
        let bind = built.bindings(4);
        let plan = spmd_opt::optimize(&built.prog, &bind);
        let mut saw_replicated_loop = false;
        fn walk(items: &[RItem], saw: &mut bool) {
            for it in items {
                match it {
                    RItem::Phase(p) => {
                        if matches!(p.kind, PhaseKind::Replicated) {
                            *saw = true;
                        }
                    }
                    RItem::Seq { body, .. } => walk(body, saw),
                }
            }
        }
        for item in &plan.items {
            if let TopItem::Region(r) = item {
                walk(&r.items, &mut saw_replicated_loop);
            }
        }
        assert!(saw_replicated_loop, "gather loop should be replicated");
    }
}
