//! Self-healing execution: checkpoint, bounded retry, and per-site
//! barrier fallback.
//!
//! [`run_parallel_recovering`] wraps the guarded executor
//! ([`crate::par::run_parallel_observed_on`]) in a supervisor loop that
//! turns a detected region failure (deadline, stale generation, panic
//! poison) into a bounded, observable retry instead of a terminal
//! report:
//!
//! 1. before the first attempt, the live-in memory is checkpointed
//!    ([`crate::checkpoint`]) — pre-images of exactly the schedule's
//!    write set — and one [`SyncFabric`] is built for the whole
//!    session;
//! 2. each failed attempt rolls memory back to the checkpoint, re-arms
//!    the fabric ([`SyncFabric::reset`] — barriers re-zeroed, counter
//!    generations bumped, stats cleared so attempts never conflate),
//!    sleeps a deterministic exponential backoff, and re-executes;
//! 3. every *implicated* sync site (all primary per-processor faults,
//!    not just whichever one won the race into the headline) climbs the
//!    escalation ladder of [`runtime::recovery::Quarantine`]: first
//!    fault *demotes* the site's optimized sync op to a full barrier
//!    (`spmd_opt::demote_site` — the paper's conservative fork-join
//!    placement), a second fault *quarantines* it, which additionally
//!    masks injected dropped posts there ([`SiteMaskedChaos`]) so a
//!    deterministic injector cannot re-kill every retry, and a third
//!    fault *isolates* the run (masks every injected drop — a fault
//!    that survives quarantine is barrier aliasing from another site);
//!    faults with no attributable site (worker panics, dispatch
//!    timeouts) are plainly retried.
//!
//! The loop is bounded by [`RetryPolicy::max_attempts`]; when the
//! budget runs out the last failure is returned as the residual. The
//! whole timeline is summarized by [`RecoveryOutcome::report`] as a
//! deterministic [`obs::RecoveryReport`] (planned backoffs, no
//! wall-clock).

use crate::checkpoint::Checkpoint;
use crate::events::unroll;
use crate::mem::Mem;
use crate::par::{
    run_parallel_observed_on, ChaosAction, ObserveOptions, ParallelOutcome, SyncChaos, SyncFabric,
};
use analysis::Bindings;
use ir::Program;
use obs::{AttemptReport, RecoveryReport, SiteActionReport};
use runtime::events::{EventKind, NO_SITE};
use runtime::fault::DISPATCH_SITE;
use runtime::recovery::{FaultDisposition, Quarantine, RetryPolicy};
use runtime::stats::StatsSnapshot;
use runtime::Team;
use spmd_opt::{demote_site, sync_sites, SpmdProgram};
use std::collections::BTreeSet;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};

/// Chaos pass-through that masks [`ChaosAction::Drop`] at quarantined
/// sites (benign perturbations — delays, stalls, spurious wakes — still
/// flow). Without this, a deterministic injector that drops every visit
/// of a site would defeat any finite retry budget.
struct SiteMaskedChaos {
    inner: Arc<dyn SyncChaos>,
    masked: Mutex<BTreeSet<usize>>,
    isolated: AtomicBool,
}

impl SiteMaskedChaos {
    fn new(inner: Arc<dyn SyncChaos>) -> Self {
        SiteMaskedChaos {
            inner,
            masked: Mutex::new(BTreeSet::new()),
            isolated: AtomicBool::new(false),
        }
    }

    /// Mask drops at `site` for every later attempt. Only called
    /// between attempts (no workers running).
    fn mask(&self, site: usize) {
        self.masked.lock().unwrap().insert(site);
    }

    /// Mask drops everywhere (the ladder's last rung before giving
    /// up — a fault that survives per-site quarantine is aliasing from
    /// somewhere else).
    fn isolate(&self) {
        self.isolated.store(true, Ordering::Release);
    }
}

impl SyncChaos for SiteMaskedChaos {
    fn at_sync(&self, site: usize, pid: usize, visit: u64) -> ChaosAction {
        let action = self.inner.at_sync(site, pid, visit);
        if matches!(action, ChaosAction::Drop)
            && (self.isolated.load(Ordering::Acquire)
                || self.masked.lock().unwrap().contains(&site))
        {
            ChaosAction::None
        } else {
            action
        }
    }
}

/// What a supervised execution produced: the final attempt's outcome
/// plus the full recovery timeline.
pub struct RecoveryOutcome {
    /// The final attempt (success, or the residual failure when the
    /// budget ran out). Its stats/telemetry cover that attempt only —
    /// the fabric is reset between attempts.
    pub outcome: ParallelOutcome,
    /// The failed-and-retried attempts, in order.
    pub attempts: Vec<AttemptReport>,
    /// Total executions spent (1 = clean first run).
    pub attempts_used: u32,
    /// Sites demoted to a full barrier, with labels, in demotion order.
    pub demoted: Vec<(usize, String)>,
    /// Sites quarantined after demotion did not help.
    pub quarantined: Vec<usize>,
    /// Fault count per site, sorted by site.
    pub fault_counts: Vec<(usize, u32)>,
    /// The plan the final attempt ran (demotions applied).
    pub final_plan: SpmdProgram,
    /// Array cells in the write-set checkpoint.
    pub checkpoint_cells: usize,
    /// Sync stats summed over *every* attempt (the fabric clears its
    /// counters on reset, so [`RecoveryOutcome::outcome`] covers only
    /// the final attempt; metrics totals must use this field).
    pub total_stats: StatsSnapshot,
    program: String,
    nprocs: usize,
    deadline_ms: f64,
    max_attempts: u32,
}

impl RecoveryOutcome {
    /// True when the final attempt completed.
    pub fn ok(&self) -> bool {
        self.outcome.ok()
    }

    /// True when completion took at least one retry.
    pub fn recovered(&self) -> bool {
        self.ok() && !self.attempts.is_empty()
    }

    /// The deterministic recovery report (pass the chaos seed when a
    /// seeded injector was active, so repro bundles carry it).
    pub fn report(&self, chaos_seed: Option<u64>) -> RecoveryReport {
        RecoveryReport {
            program: self.program.clone(),
            nprocs: self.nprocs,
            deadline_ms: self.deadline_ms,
            max_attempts: self.max_attempts,
            attempts_used: self.attempts_used,
            recovered: self.recovered(),
            ok: self.ok(),
            attempts: self.attempts.clone(),
            demoted: self.demoted.clone(),
            quarantined: self.quarantined.clone(),
            fault_counts: self.fault_counts.clone(),
            checkpoint_cells: self.checkpoint_cells,
            chaos_seed,
            residual: self.outcome.failure.clone(),
        }
    }
}

/// Execute `plan` under the recovery supervisor (see the module docs).
///
/// `opts.deadline` must be armed — without a watchdog a fault is a hang,
/// not a detected, retryable failure. Memory is rolled back to the
/// entry checkpoint before every retry, so on success `mem` holds a
/// result indistinguishable from a clean run.
pub fn run_parallel_recovering(
    prog: &Arc<Program>,
    bind: &Arc<Bindings>,
    plan: &SpmdProgram,
    mem: &Arc<Mem>,
    team: &Team,
    opts: &ObserveOptions,
    policy: &RetryPolicy,
) -> RecoveryOutcome {
    let deadline = opts
        .deadline
        .expect("run_parallel_recovering needs an armed deadline (opts.deadline)");
    let site_labels: Vec<String> = sync_sites(prog, plan)
        .into_iter()
        .map(|s| s.label)
        .collect();
    let events = unroll(prog, bind, plan);
    let checkpoint = Checkpoint::capture(prog, bind, &events, mem);
    let fabric = SyncFabric::for_plan_with(opts, prog, bind, plan);
    // Supervisor-side profile marks go on the extra track past the
    // workers' (index `nprocs`), so they never race a worker's ring.
    if let Some(p) = fabric.profiler() {
        p.record(
            p.supervisor_track(),
            EventKind::Checkpoint,
            NO_SITE,
            checkpoint.elem_cells() as u64,
        );
    }
    let mut working = plan.clone();
    let masked = opts
        .chaos
        .as_ref()
        .map(|c| Arc::new(SiteMaskedChaos::new(Arc::clone(c))));
    let mut ledger = Quarantine::new();
    let mut attempts: Vec<AttemptReport> = Vec::new();
    let mut demoted: Vec<(usize, String)> = Vec::new();
    let max_attempts = policy.max_attempts.max(1);
    let mut attempt = 0u32;
    let mut total_stats = StatsSnapshot::default();
    loop {
        attempt += 1;
        let mut aopts = opts.clone();
        if let Some(m) = &masked {
            aopts.chaos = Some(Arc::clone(m) as Arc<dyn SyncChaos>);
        }
        let out = run_parallel_observed_on(prog, bind, &working, mem, team, &aopts, &fabric);
        total_stats.merge(&out.stats);
        let failed = out.failure.is_some();
        if !failed || attempt >= max_attempts {
            return RecoveryOutcome {
                outcome: out,
                attempts,
                attempts_used: attempt,
                demoted,
                quarantined: ledger.quarantined().to_vec(),
                fault_counts: ledger.fault_counts(),
                final_plan: working,
                checkpoint_cells: checkpoint.elem_cells(),
                total_stats,
                program: prog.name.clone(),
                nprocs: bind.nprocs as usize,
                deadline_ms: deadline.as_secs_f64() * 1e3,
                max_attempts,
            };
        }
        let failure = out.failure.as_ref().unwrap();
        // Every implicated site: the headline plus all primary
        // per-processor faults (poison observations are victims, not
        // causes; the dispatch sentinel is outside the site walk).
        let mut sites_hit = BTreeSet::new();
        if let Some(s) = failure.cause.site() {
            if s != DISPATCH_SITE {
                sites_hit.insert(s);
            }
        }
        for e in out.proc_errors.iter().flatten() {
            if e.is_primary() && e.site() != DISPATCH_SITE {
                sites_hit.insert(e.site());
            }
        }
        let mut actions = Vec::new();
        for &site in &sites_hit {
            let label = site_labels
                .get(site)
                .cloned()
                .unwrap_or_else(|| format!("s{site}"));
            let action = match ledger.record_fault(site) {
                FaultDisposition::Demote => {
                    demote_site(&mut working, site);
                    demoted.push((site, label.clone()));
                    "demote"
                }
                FaultDisposition::Quarantine => {
                    if let Some(m) = &masked {
                        m.mask(site);
                    }
                    "quarantine"
                }
                FaultDisposition::Isolate => {
                    if let Some(m) = &masked {
                        m.isolate();
                    }
                    "isolate"
                }
                FaultDisposition::Retry => "retry",
            };
            actions.push(SiteActionReport {
                site,
                label,
                action: action.to_string(),
            });
        }
        let backoff = policy.backoff_before(attempt);
        attempts.push(AttemptReport {
            attempt,
            headline: failure.headline(),
            actions,
            backoff_ms: backoff.as_millis() as u64,
            barrier_episodes: out.stats.barrier_episodes,
            counter_increments: out.stats.counter_increments,
            neighbor_posts: out.stats.neighbor_posts,
            spin_rounds: out.stats.spin_rounds,
            yield_rounds: out.stats.yield_rounds,
            parks: out.stats.parks,
        });
        checkpoint.rollback(mem);
        if let Some(p) = fabric.profiler() {
            let track = p.supervisor_track();
            p.record(
                track,
                EventKind::Rollback,
                NO_SITE,
                checkpoint.elem_cells() as u64,
            );
            p.record(track, EventKind::Retry, NO_SITE, attempt as u64);
        }
        fabric.reset();
        std::thread::sleep(backoff);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::par::BarrierKind;
    use crate::run_sequential;
    use ir::build::*;
    use spmd_opt::{fork_join, optimize};
    use std::time::Duration;

    fn sweep(n_val: i64, steps: i64, nprocs: i64) -> (Arc<Program>, Arc<Bindings>) {
        let mut pb = ProgramBuilder::new("sweep");
        let n = pb.sym("n");
        let a = pb.array("A", &[sym(n)], dist_block());
        let b = pb.array("B", &[sym(n)], dist_block());
        let _t = pb.begin_seq("t", con(0), con(steps - 1));
        let i = pb.begin_par("i", con(1), sym(n) - 2);
        pb.assign(
            elem(b, [idx(i)]),
            ex(0.5) * (arr(a, [idx(i) - 1]) + arr(a, [idx(i) + 1])),
        );
        pb.end();
        let j = pb.begin_par("j", con(1), sym(n) - 2);
        pb.assign(elem(a, [idx(j)]), arr(b, [idx(j)]));
        pb.end();
        pb.end();
        let prog = Arc::new(pb.finish());
        let bind = Arc::new(Bindings::new(nprocs).set(n, n_val));
        (prog, bind)
    }

    fn guarded(chaos: Option<Arc<dyn SyncChaos>>) -> ObserveOptions {
        ObserveOptions {
            barrier: BarrierKind::Central,
            deadline: Some(Duration::from_millis(120)),
            chaos,
            ..ObserveOptions::default()
        }
    }

    fn fast_policy() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 7,
            backoff_base: Duration::from_millis(1),
            backoff_cap: Duration::from_millis(4),
        }
    }

    /// Drops every visit of one (site, pid) — a persistent fault a
    /// single retry cannot outrun; only the full ladder converges.
    ///
    /// The site must be one whose dropped post actually wedges the
    /// region: with one shared barrier across sites, a skipped arrival
    /// mid-run is backfilled by the dropper's *next* arrival (episode
    /// aliasing), so the tests drop at the run's final barrier site,
    /// where no later arrival can paper over the hole.
    struct DropAt {
        site: usize,
        pid: usize,
    }

    impl SyncChaos for DropAt {
        fn at_sync(&self, site: usize, pid: usize, _visit: u64) -> ChaosAction {
            if site == self.site && pid == self.pid {
                ChaosAction::Drop
            } else {
                ChaosAction::None
            }
        }
    }

    #[test]
    fn persistent_dropped_arrival_converges_via_the_ladder() {
        let (prog, bind) = sweep(32, 3, 4);
        let team = Team::new(4);
        let oracle = Mem::new(&prog, &bind);
        oracle.fill(ir::ArrayId(0), |s| (s[0] % 5) as f64);
        run_sequential(&prog, &bind, &oracle);

        let plan = fork_join(&prog, &bind);
        let last = sync_sites(&prog, &plan).len() - 1;
        let mem = Arc::new(Mem::new(&prog, &bind));
        mem.fill(ir::ArrayId(0), |s| (s[0] % 5) as f64);
        let chaos: Arc<dyn SyncChaos> = Arc::new(DropAt { site: last, pid: 0 });
        let r = run_parallel_recovering(
            &prog,
            &bind,
            &plan,
            &mem,
            &team,
            &guarded(Some(chaos)),
            &fast_policy(),
        );
        assert!(r.ok(), "must converge: {:?}", r.outcome.failure);
        assert!(r.recovered());
        // Fault 1 → demote s0, fault 2 → quarantine s0, attempt 3 is
        // clean: exactly two failed attempts.
        assert_eq!(r.attempts.len(), 2);
        assert_eq!(r.attempts_used, 3);
        assert_eq!(r.attempts[0].actions[0].action, "demote");
        assert_eq!(r.attempts[0].actions[0].site, last);
        assert_eq!(r.attempts[1].actions[0].action, "quarantine");
        assert!(r.quarantined.contains(&last));
        assert_eq!(r.demoted[0].0, last);
        // Rolled-back retries leave no trace in memory: the recovered
        // result is bit-identical to the sequential oracle.
        assert_eq!(mem.max_abs_diff(&oracle), 0.0);
        // Backoffs in the report are the planned policy values.
        assert_eq!(r.attempts[0].backoff_ms, 1);
        assert_eq!(r.attempts[1].backoff_ms, 2);
    }

    #[test]
    fn clean_run_spends_one_attempt_and_is_not_a_recovery() {
        let (prog, bind) = sweep(32, 3, 4);
        let team = Team::new(4);
        let plan = optimize(&prog, &bind);
        let mem = Arc::new(Mem::new(&prog, &bind));
        let r = run_parallel_recovering(
            &prog,
            &bind,
            &plan,
            &mem,
            &team,
            &guarded(None),
            &fast_policy(),
        );
        assert!(r.ok() && !r.recovered());
        assert_eq!(r.attempts_used, 1);
        assert!(r.attempts.is_empty() && r.demoted.is_empty());
        let rep = r.report(None);
        assert!(rep.ok && !rep.recovered);
    }

    #[test]
    fn exhausted_budget_surfaces_the_residual_failure() {
        let (prog, bind) = sweep(32, 2, 4);
        let team = Team::new(4);
        let plan = fork_join(&prog, &bind);
        let last = sync_sites(&prog, &plan).len() - 1;
        let mem = Arc::new(Mem::new(&prog, &bind));
        let chaos: Arc<dyn SyncChaos> = Arc::new(DropAt { site: last, pid: 0 });
        let policy = RetryPolicy {
            max_attempts: 1,
            ..fast_policy()
        };
        let r = run_parallel_recovering(
            &prog,
            &bind,
            &plan,
            &mem,
            &team,
            &guarded(Some(chaos)),
            &policy,
        );
        assert!(!r.ok());
        assert_eq!(r.attempts_used, 1);
        let rep = r.report(Some(9));
        assert!(!rep.ok && rep.residual.is_some());
        assert_eq!(rep.chaos_seed, Some(9));
    }

    /// Satellite: per-attempt telemetry isolation. The final outcome's
    /// stats must equal the final attempt's schedule-derived counts —
    /// nothing from the abandoned attempts leaks through the reset.
    #[test]
    fn final_attempt_stats_are_not_conflated_with_retries() {
        let (prog, bind) = sweep(32, 3, 4);
        let team = Team::new(4);
        let plan = fork_join(&prog, &bind);
        let last = sync_sites(&prog, &plan).len() - 1;
        let mem = Arc::new(Mem::new(&prog, &bind));
        let chaos: Arc<dyn SyncChaos> = Arc::new(DropAt { site: last, pid: 0 });
        let r = run_parallel_recovering(
            &prog,
            &bind,
            &plan,
            &mem,
            &team,
            &guarded(Some(chaos)),
            &fast_policy(),
        );
        assert!(r.ok());
        assert_eq!(r.outcome.stats.barrier_episodes, r.outcome.counts.barriers);
        assert_eq!(
            r.outcome.stats.counter_increments,
            r.outcome.counts.counter_increments
        );
        // Each failed attempt recorded its own (partial) numbers; a
        // doubled-up count would exceed one schedule's worth.
        for a in &r.attempts {
            assert!(a.barrier_episodes <= r.outcome.counts.barriers);
        }
    }
}
