//! Crash-safe persistence for [`FmeCache`] feasibility memos.
//!
//! A snapshot is a single versioned, checksummed binary file holding
//! every memoized `(canonical system, verdict, scan cost)` triple. The
//! durability contract is *cold-start, never crash*:
//!
//! * **Writes are atomic.** The snapshot is written to a temp file in
//!   the same directory and `rename`d over the target, so a reader (or
//!   a restarted process) only ever sees the previous complete snapshot
//!   or the new complete snapshot — never a torn write. A process
//!   killed mid-write leaves a stale temp file that later writers sweep
//!   and loaders ignore.
//! * **Loads validate everything before trusting anything.** Magic,
//!   schema version, entry count, per-entry structure, and a trailing
//!   whole-file checksum are checked; any mismatch (truncation,
//!   bit-flip, stale schema, zero-length file) yields a structured
//!   [`SnapshotLoad::Rejected`] — the caller cold-starts with an empty
//!   memo and reports the reason. Loading never panics and never
//!   partially applies a bad snapshot.
//!
//! Soundness note: a bit-flip that survived the checksum *and* decoded
//! to a structurally valid entry could at worst seed a key whose flat
//! encoding matches no live query (the canonical form is self-
//! delimiting), so a corrupt snapshot can cost hits, not correctness —
//! but the checksum rejects it long before that.

use crate::cache::{CanonicalSystem, FmeCache};
use crate::system::Feasibility;
use std::hash::Hasher;
use std::io::Write;
use std::path::Path;

/// Bump when the byte layout below changes; loaders refuse (and
/// cold-start on) every other version.
pub const SNAPSHOT_SCHEMA_VERSION: u32 = 1;

/// File magic: identifies an FME feasibility snapshot.
pub const SNAPSHOT_MAGIC: [u8; 8] = *b"BEFMESNP";

fn checksum(bytes: &[u8]) -> u64 {
    let mut h = crate::cache::FxHasher::default();
    h.write(bytes);
    h.finish()
}

/// Serialize feasibility-memo entries into the snapshot byte format:
/// `magic | schema_version | entry_count | entries... | checksum`,
/// all integers little-endian, the checksum covering every preceding
/// byte.
pub fn encode_snapshot(entries: &[(CanonicalSystem, Feasibility, u64)]) -> Vec<u8> {
    let mut out = Vec::with_capacity(32 + entries.len() * 64);
    out.extend_from_slice(&SNAPSHOT_MAGIC);
    out.extend_from_slice(&SNAPSHOT_SCHEMA_VERSION.to_le_bytes());
    out.extend_from_slice(&(entries.len() as u64).to_le_bytes());
    for (key, f, cost) in entries {
        let (contradictory, count, flat) = key.parts();
        out.push(contradictory as u8);
        out.extend_from_slice(&count.to_le_bytes());
        out.extend_from_slice(&(flat.len() as u32).to_le_bytes());
        for w in flat {
            out.extend_from_slice(&w.to_le_bytes());
        }
        out.push(match f {
            Feasibility::Feasible => 0,
            Feasibility::Infeasible => 1,
            Feasibility::Unknown => 2,
        });
        out.extend_from_slice(&cost.to_le_bytes());
    }
    let sum = checksum(&out);
    out.extend_from_slice(&sum.to_le_bytes());
    out
}

/// Why a snapshot failed to decode. The message names the first
/// integrity violation found (for reports and logs).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SnapshotCorrupt(pub String);

impl std::fmt::Display for SnapshotCorrupt {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "snapshot rejected: {}", self.0)
    }
}

struct Reader<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8], SnapshotCorrupt> {
        if self.bytes.len() - self.at < n {
            return Err(SnapshotCorrupt(format!(
                "truncated: need {n} byte(s) for {what} at offset {}, have {}",
                self.at,
                self.bytes.len() - self.at
            )));
        }
        let s = &self.bytes[self.at..self.at + n];
        self.at += n;
        Ok(s)
    }

    fn u8(&mut self, what: &str) -> Result<u8, SnapshotCorrupt> {
        Ok(self.take(1, what)?[0])
    }

    fn u32(&mut self, what: &str) -> Result<u32, SnapshotCorrupt> {
        Ok(u32::from_le_bytes(self.take(4, what)?.try_into().unwrap()))
    }

    fn u64(&mut self, what: &str) -> Result<u64, SnapshotCorrupt> {
        Ok(u64::from_le_bytes(self.take(8, what)?.try_into().unwrap()))
    }

    fn i128(&mut self, what: &str) -> Result<i128, SnapshotCorrupt> {
        Ok(i128::from_le_bytes(
            self.take(16, what)?.try_into().unwrap(),
        ))
    }
}

/// Decode and fully validate a snapshot byte buffer. Every integrity
/// violation — wrong magic, wrong schema version, truncation anywhere,
/// checksum mismatch, trailing garbage, out-of-range enum bytes —
/// returns `Err` with the reason; nothing is applied partially.
pub fn decode_snapshot(
    bytes: &[u8],
) -> Result<Vec<(CanonicalSystem, Feasibility, u64)>, SnapshotCorrupt> {
    if bytes.is_empty() {
        return Err(SnapshotCorrupt("zero-length file".to_string()));
    }
    if bytes.len() < SNAPSHOT_MAGIC.len() + 4 + 8 + 8 {
        return Err(SnapshotCorrupt(format!(
            "file too short for a snapshot header ({} byte(s))",
            bytes.len()
        )));
    }
    // Checksum first: it covers every other field, so a bit-flip
    // anywhere (header or body) is caught here with one message.
    let (body, tail) = bytes.split_at(bytes.len() - 8);
    let stored = u64::from_le_bytes(tail.try_into().unwrap());
    let computed = checksum(body);
    let mut r = Reader { bytes: body, at: 0 };
    let magic = r.take(SNAPSHOT_MAGIC.len(), "magic")?;
    if magic != SNAPSHOT_MAGIC {
        return Err(SnapshotCorrupt(
            "bad magic (not an FME snapshot)".to_string(),
        ));
    }
    let version = r.u32("schema_version")?;
    if version != SNAPSHOT_SCHEMA_VERSION {
        return Err(SnapshotCorrupt(format!(
            "schema_version {version} does not match this build's {SNAPSHOT_SCHEMA_VERSION}"
        )));
    }
    if computed != stored {
        return Err(SnapshotCorrupt(format!(
            "checksum mismatch (stored {stored:#018x}, computed {computed:#018x})"
        )));
    }
    let n = r.u64("entry_count")?;
    let mut out = Vec::new();
    for k in 0..n {
        let contradictory = match r.u8("contradictory flag")? {
            0 => false,
            1 => true,
            b => {
                return Err(SnapshotCorrupt(format!(
                    "entry {k}: contradictory flag {b} out of range"
                )))
            }
        };
        let count = r.u32("constraint count")?;
        let flat_len = r.u32("flat length")? as usize;
        let mut flat = Vec::with_capacity(flat_len.min(1 << 16));
        for _ in 0..flat_len {
            flat.push(r.i128("flat word")?);
        }
        let f = match r.u8("feasibility verdict")? {
            0 => Feasibility::Feasible,
            1 => Feasibility::Infeasible,
            2 => Feasibility::Unknown,
            b => {
                return Err(SnapshotCorrupt(format!(
                    "entry {k}: feasibility byte {b} out of range"
                )))
            }
        };
        let cost = r.u64("scan cost")?;
        out.push((
            CanonicalSystem::from_parts(contradictory, count, flat),
            f,
            cost,
        ));
    }
    if r.at != body.len() {
        return Err(SnapshotCorrupt(format!(
            "{} trailing byte(s) after the last entry",
            body.len() - r.at
        )));
    }
    Ok(out)
}

/// Sweep stale temp files left by writers killed mid-snapshot. Best
/// effort: I/O errors are ignored (the files are ignored by loaders
/// either way).
fn sweep_stale_temps(path: &Path) {
    let (Some(dir), Some(name)) = (path.parent(), path.file_name().and_then(|n| n.to_str())) else {
        return;
    };
    let prefix = format!("{name}.tmp.");
    let Ok(rd) = std::fs::read_dir(if dir.as_os_str().is_empty() {
        Path::new(".")
    } else {
        dir
    }) else {
        return;
    };
    for e in rd.flatten() {
        if let Some(n) = e.file_name().to_str() {
            if n.starts_with(&prefix) {
                let _ = std::fs::remove_file(e.path());
            }
        }
    }
}

/// Persist `cache`'s feasibility memo to `path` atomically: encode,
/// write to a same-directory temp file, fsync, rename. Returns the
/// number of entries written. A crash at any point leaves either the
/// previous snapshot or the new one at `path`, never a torn file.
pub fn write_snapshot(cache: &FmeCache, path: &Path) -> std::io::Result<usize> {
    let entries = cache.export_feas();
    let bytes = encode_snapshot(&entries);
    sweep_stale_temps(path);
    let tmp = path.with_file_name(format!(
        "{}.tmp.{}",
        path.file_name()
            .and_then(|n| n.to_str())
            .unwrap_or("fme-snapshot"),
        std::process::id()
    ));
    if let Some(dir) = path.parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir)?;
        }
    }
    let mut f = std::fs::File::create(&tmp)?;
    f.write_all(&bytes)?;
    f.sync_all()?;
    drop(f);
    std::fs::rename(&tmp, path)?;
    Ok(entries.len())
}

/// The outcome of [`load_snapshot`] — never an error, never a panic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotLoad {
    /// A valid snapshot was applied.
    Loaded {
        /// Entries preloaded into the memo.
        entries: usize,
        /// Size of the snapshot file.
        bytes: usize,
    },
    /// No snapshot file exists (first boot): cold start.
    Missing,
    /// The file exists but failed validation (truncated, bit-flipped,
    /// stale schema, zero-length, unreadable): cold start, with the
    /// reason for reports.
    Rejected {
        /// First integrity violation found.
        reason: String,
    },
}

impl SnapshotLoad {
    /// Entries applied (0 unless `Loaded`).
    pub fn entries(&self) -> usize {
        match self {
            SnapshotLoad::Loaded { entries, .. } => *entries,
            _ => 0,
        }
    }
}

/// Load `path` into `cache` under the cold-start-never-crash policy:
/// a valid snapshot preloads the memo, a missing file is a cold start,
/// and *any* invalid file is a reported cold start. Stale temp files
/// from writers killed mid-snapshot are never read (they live under a
/// different name) and are swept on the next write.
pub fn load_snapshot(cache: &FmeCache, path: &Path) -> SnapshotLoad {
    let bytes = match std::fs::read(path) {
        Ok(b) => b,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return SnapshotLoad::Missing,
        Err(e) => {
            return SnapshotLoad::Rejected {
                reason: format!("unreadable: {e}"),
            }
        }
    };
    match decode_snapshot(&bytes) {
        Ok(entries) => {
            let n = entries.len();
            cache.preload_feas(entries);
            SnapshotLoad::Loaded {
                entries: n,
                bytes: bytes.len(),
            }
        }
        Err(e) => SnapshotLoad::Rejected { reason: e.0 },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linexpr::LinExpr;
    use crate::system::System;
    use crate::var::{VarKind, VarTable};

    fn warmed_cache(tags: usize) -> (FmeCache, VarTable) {
        let mut vt = VarTable::new();
        let cache = FmeCache::new();
        for t in 0..tags {
            let i = vt.fresh(format!("i{t}"), VarKind::LoopIndex);
            let j = vt.fresh(format!("j{t}"), VarKind::LoopIndex);
            let mut s = System::new();
            s.add_range(
                LinExpr::var(i),
                LinExpr::constant(0),
                LinExpr::constant(3 + t as i128),
            );
            s.add_eq(LinExpr::var(j) - LinExpr::var(i) - LinExpr::constant(2 * t as i128));
            cache.feasibility(&s, &vt);
        }
        (cache, vt)
    }

    #[test]
    fn snapshot_round_trips_exactly() {
        let (cache, _) = warmed_cache(5);
        let entries = cache.export_feas();
        assert!(!entries.is_empty());
        let bytes = encode_snapshot(&entries);
        let back = decode_snapshot(&bytes).unwrap();
        assert_eq!(entries, back);
    }

    #[test]
    fn preloaded_cache_hits_where_the_original_hit() {
        let (cache, vt) = warmed_cache(3);
        let restarted = FmeCache::new();
        restarted.preload_feas(decode_snapshot(&encode_snapshot(&cache.export_feas())).unwrap());
        // Re-ask one of the warmed questions: pure hit, no scan.
        let mut vt2 = vt;
        let i = vt2.fresh("fresh_i", VarKind::LoopIndex);
        let j = vt2.fresh("fresh_j", VarKind::LoopIndex);
        let mut s = System::new();
        s.add_range(LinExpr::var(i), LinExpr::constant(0), LinExpr::constant(3));
        s.add_eq(LinExpr::var(j) - LinExpr::var(i));
        let direct = s.feasibility(&vt2);
        assert_eq!(restarted.feasibility(&s, &vt2), direct);
        let st = restarted.stats();
        assert_eq!(st.feas_hits, 1, "preloaded entry must hit: {st:?}");
        assert_eq!(st.feas_misses, 0);
    }

    #[test]
    fn every_single_byte_flip_is_detected_or_harmless() {
        // Exhaustive single-bit-flip matrix over a small snapshot:
        // every flip must either be rejected by validation or decode to
        // the identical entry set (impossible for a single flip — the
        // checksum covers every byte, so all flips must be rejected).
        let (cache, _) = warmed_cache(2);
        let bytes = encode_snapshot(&cache.export_feas());
        for k in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[k] ^= 0x40;
            assert!(
                decode_snapshot(&bad).is_err(),
                "flip at byte {k}/{} was not detected",
                bytes.len()
            );
        }
    }

    #[test]
    fn truncation_zero_length_and_schema_mismatch_are_rejected() {
        let (cache, _) = warmed_cache(2);
        let bytes = encode_snapshot(&cache.export_feas());
        assert!(decode_snapshot(&[]).is_err(), "zero-length accepted");
        for cut in [1, 8, 19, bytes.len() / 2, bytes.len() - 1] {
            assert!(
                decode_snapshot(&bytes[..cut]).is_err(),
                "truncation to {cut} bytes accepted"
            );
        }
        let mut stale = bytes.clone();
        stale[8..12].copy_from_slice(&(SNAPSHOT_SCHEMA_VERSION + 1).to_le_bytes());
        let err = decode_snapshot(&stale).unwrap_err();
        assert!(err.0.contains("schema_version"), "{err}");
    }

    #[test]
    fn trailing_garbage_is_rejected() {
        let (cache, _) = warmed_cache(1);
        let mut bytes = encode_snapshot(&cache.export_feas());
        bytes.extend_from_slice(&[0u8; 5]);
        assert!(decode_snapshot(&bytes).is_err());
    }
}
