//! The optimizer explain pass: structured and human-readable rendering
//! of the greedy algorithm's [`Decision`] log.
//!
//! Each decision maps onto the paper's Section-4 elimination conditions:
//! the communication classification (`analysis`) is the evidence, the
//! placed [`SyncOp`] is the verdict, and `reason` spells out which
//! condition fired. The JSON form is deterministic — object keys are
//! emitted in insertion order and the optimizer itself is deterministic,
//! so two runs over the same program produce byte-identical documents.

use crate::json::Json;
use analysis::{AnalysisStats, CommPattern, ProducerSpec};
use ir::Program;
use spmd_opt::{sync_sites, Decision, SpmdProgram, SyncOp};

/// Render a producer spec with the program's symbol names.
pub fn producer_str(prog: &Program, p: &ProducerSpec) -> String {
    match p {
        ProducerSpec::Master => "master (processor 0)".to_string(),
        ProducerSpec::BlockOwner { block, sub } => {
            format!(
                "block owner of [{}] (block {block})",
                ir::pretty::affine_str(prog, sub)
            )
        }
        ProducerSpec::CyclicOwner { sub } => {
            format!("cyclic owner of [{}]", ir::pretty::affine_str(prog, sub))
        }
        ProducerSpec::BlockCyclicOwner { block, sub } => {
            format!(
                "block-cyclic owner of [{}] (block {block})",
                ir::pretty::affine_str(prog, sub)
            )
        }
    }
}

fn sync_json(op: &SyncOp) -> Json {
    match op {
        SyncOp::None => Json::obj().set("kind", "none"),
        SyncOp::Barrier => Json::obj().set("kind", "barrier"),
        SyncOp::Neighbor { fwd, bwd } => Json::obj()
            .set("kind", "neighbor")
            .set("fwd", *fwd)
            .set("bwd", *bwd),
        SyncOp::Counter { id, .. } => Json::obj().set("kind", "counter").set("id", *id),
        SyncOp::PairCounter { dists, producers } => Json::obj()
            .set("kind", "pair-counter")
            .set("dists", dists.render())
            .set("producers", producers.len()),
    }
}

fn analysis_json(prog: &Program, d: &Decision) -> Json {
    let Some(pat) = d.outcome else {
        return Json::Null;
    };
    let mut j = Json::obj().set("pattern", pat.as_str());
    if let CommPattern::Neighbor { fwd, bwd } = pat {
        j = j.set("fwd", fwd).set("bwd", bwd);
    }
    if let CommPattern::PairWise { dists } = pat {
        j = j.set("dists", dists.render());
    }
    if let Some(p) = &d.producer {
        j = j.set("producer", producer_str(prog, p));
    }
    j.set("evidence", pat.evidence())
}

fn decision_json(prog: &Program, d: &Decision) -> Json {
    Json::obj()
        .set("site", d.site)
        .set("slot", d.kind.as_str())
        .set("label", d.label.as_str())
        .set("analysis", analysis_json(prog, d))
        .set("src_stmts", d.src_stmts)
        .set("dst_stmts", d.dst_stmts)
        .set("placed", d.placed_str())
        .set("sync", sync_json(&d.placed))
        .set("reason", d.reason.as_str())
}

/// The explain document: program identity, the optimizer's decisions
/// (one per examined sync slot, canonical site ids), the plan's full
/// site walk, and the static stats both for the optimized plan and a
/// baseline for comparison.
pub fn explain_json(
    prog: &Program,
    nprocs: i64,
    plan: &SpmdProgram,
    baseline: &SpmdProgram,
    decisions: &[Decision],
) -> Json {
    let st_o = plan.static_stats();
    let st_b = baseline.static_stats();
    let stats = |st: &spmd_opt::StaticStats| {
        Json::obj()
            .set("regions", st.regions)
            .set("barriers", st.barriers)
            .set("neighbor_syncs", st.neighbor_syncs)
            .set("counter_syncs", st.counter_syncs)
            .set("pair_syncs", st.pair_syncs)
            .set("eliminated", st.eliminated)
    };
    let sites: Vec<Json> = sync_sites(prog, plan)
        .iter()
        .map(|s| {
            Json::obj()
                .set("site", s.id)
                .set("slot", s.kind.as_str())
                .set("label", s.label.as_str())
                .set("sync", sync_json(&s.op))
        })
        .collect();
    Json::obj()
        .set("program", prog.name.as_str())
        .set("nprocs", nprocs)
        .set(
            "decisions",
            Json::Arr(decisions.iter().map(|d| decision_json(prog, d)).collect()),
        )
        .set("sites", Json::Arr(sites))
        .set(
            "static",
            Json::obj()
                .set("optimized", stats(&st_o))
                .set("baseline", stats(&st_b)),
        )
}

/// Human-readable rendering of the decision log (what `beopt --explain`
/// prints).
pub fn render_decisions(prog: &Program, decisions: &[Decision]) -> String {
    let mut out = String::new();
    out.push_str("--- sync decisions (explain pass) ---\n");
    for d in decisions {
        out.push_str(&format!(
            "s{:<3} {:<34} {}\n",
            d.site,
            d.label,
            d.placed_str()
        ));
        if let Some(pat) = d.outcome {
            out.push_str(&format!(
                "     analysis: {} over {} x {} statement pair(s)\n",
                pat.as_str(),
                d.src_stmts,
                d.dst_stmts
            ));
            if let Some(p) = &d.producer {
                out.push_str(&format!("     producer: {}\n", producer_str(prog, p)));
            }
        }
        out.push_str(&format!("     why: {}\n", d.reason));
    }
    out
}

/// Human-readable footer for the analysis cache counters.
///
/// This stays out of [`explain_json`]: hit counts depend on thread
/// interleaving, and the JSON document must remain byte-identical
/// across runs and configurations.
pub fn render_analysis_stats(stats: &AnalysisStats) -> String {
    let mut out = String::new();
    out.push_str("--- analysis cache (diagnostics; never affects decisions) ---\n");
    out.push_str(&format!(
        "statement pairs: {} memoized hits, {} analyzed ({:.0}% hit rate)\n",
        stats.pair_hits,
        stats.pair_misses,
        stats.pair_hit_rate() * 100.0
    ));
    out.push_str(&format!(
        "FME feasibility: {} hits, {} scans ({:.0}% hit rate), {} memo entries\n",
        stats.fme.feas_hits,
        stats.fme.feas_misses,
        stats.fme.feas_hit_rate() * 100.0,
        stats.fme.entries
    ));
    out.push_str(&format!(
        "FME memo bound: {} of {} entry capacity, {} second-chance eviction(s)\n",
        stats.fme.entries, stats.fme.feas_capacity, stats.fme.feas_evictions
    ));
    out.push_str(&format!(
        "scan health: peak {} constraints, {} unknown verdict(s) (overflow/budget -> barrier kept)\n",
        stats.fme.peak_constraints, stats.fme.unknown_verdicts
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use analysis::Bindings;
    use ir::build::*;
    use spmd_opt::{fork_join, optimize_logged};

    fn two_loop_chain() -> Program {
        let mut pb = ProgramBuilder::new("chain");
        let n = pb.sym("n");
        let a = pb.array("A", &[sym(n)], dist_block());
        let b = pb.array("B", &[sym(n)], dist_block());
        let i = pb.begin_par("i", con(0), sym(n) - 1);
        pb.assign(elem(b, [idx(i)]), arr(a, [idx(i)]) * ex(2.0));
        pb.end();
        let j = pb.begin_par("j", con(0), sym(n) - 1);
        pb.assign(elem(a, [idx(j)]), arr(b, [idx(j)]) + ex(1.0));
        pb.end();
        pb.finish()
    }

    #[test]
    fn explain_document_has_one_decision_per_examined_slot() {
        let prog = two_loop_chain();
        let bind = Bindings::new(4).set(ir::SymId(0), 64);
        let (plan, log) = optimize_logged(&prog, &bind);
        let base = fork_join(&prog, &bind);
        let doc = explain_json(&prog, 4, &plan, &base, &log);
        let ds = doc.get("decisions").unwrap().as_arr().unwrap();
        assert_eq!(ds.len(), log.len());
        // The eliminated inter-loop boundary is decision 0 at site 0.
        assert_eq!(ds[0].get("site").unwrap().as_u64(), Some(0));
        assert_eq!(ds[0].get("placed").unwrap().as_str(), Some("eliminated"));
        let analysis = ds[0].get("analysis").unwrap();
        assert_eq!(analysis.get("pattern").unwrap().as_str(), Some("no-comm"));
        // Site ids in the document are valid indices into "sites".
        let sites = doc.get("sites").unwrap().as_arr().unwrap();
        for d in ds {
            let id = d.get("site").unwrap().as_u64().unwrap() as usize;
            assert!(id < sites.len());
            assert_eq!(sites[id].get("label"), d.get("label"));
        }
    }

    #[test]
    fn json_is_byte_identical_across_runs() {
        let prog = two_loop_chain();
        let bind = Bindings::new(4).set(ir::SymId(0), 64);
        let render = || {
            let (plan, log) = optimize_logged(&prog, &bind);
            let base = fork_join(&prog, &bind);
            explain_json(&prog, 4, &plan, &base, &log).to_string_pretty()
        };
        assert_eq!(render(), render());
    }

    #[test]
    fn human_rendering_names_every_site() {
        let prog = two_loop_chain();
        let bind = Bindings::new(4).set(ir::SymId(0), 64);
        let (_, log) = optimize_logged(&prog, &bind);
        let text = render_decisions(&prog, &log);
        for d in &log {
            assert!(text.contains(&d.label), "missing {}", d.label);
            assert!(text.contains(&d.reason));
        }
    }

    /// Cache counters live in their own human-readable footer — and the
    /// deterministic explain JSON is byte-identical whether the analysis
    /// ran cached+parallel or sequential+uncached.
    #[test]
    fn stats_footer_renders_and_json_ignores_analysis_config() {
        use spmd_opt::{optimize_explained, AnalysisConfig, OptimizeOptions};
        let prog = two_loop_chain();
        let bind = Bindings::new(4).set(ir::SymId(0), 64);
        let render = |cfg: AnalysisConfig| {
            let opts = OptimizeOptions {
                analysis: cfg,
                ..Default::default()
            };
            let (plan, log, stats) = optimize_explained(&prog, &bind, opts);
            let base = fork_join(&prog, &bind);
            let doc = explain_json(&prog, 4, &plan, &base, &log).to_string_pretty();
            (doc, stats)
        };
        let (ref_doc, _) = render(AnalysisConfig::sequential_uncached());
        let (cached_doc, stats) = render(AnalysisConfig::default());
        assert_eq!(ref_doc, cached_doc);
        let footer = render_analysis_stats(&stats);
        assert!(footer.contains("statement pairs"), "{footer}");
        assert!(footer.contains("FME feasibility"), "{footer}");
        // The JSON document must not carry interleaving-dependent counters.
        assert!(!ref_doc.contains("hit"), "{ref_doc}");
    }
}
