//! Erlebacher-style tridiagonal solve along the distributed dimension
//! (forward elimination + backward substitution), repeated over time
//! steps. Both sweeps pipeline: the carried dependence moves one row at
//! a time, so owner boundaries are crossed with neighbor flags and the
//! time loop overlaps the sweeps of different processors.

use crate::{Built, Scale};
use ir::build::*;

/// Build at the given scale.
pub fn build(scale: Scale) -> Built {
    let (nv, tv) = match scale {
        Scale::Test => (12, 2),
        Scale::Small => (48, 6),
        Scale::Full => (256, 12),
    };
    let mut pb = ProgramBuilder::new("erlebacher");
    let n = pb.sym("n");
    let tmax = pb.sym("tmax");
    let x = pb.array("X", &[sym(n), sym(n)], dist_block());
    let l = pb.array("L", &[sym(n), sym(n)], dist_block());

    let i0 = pb.begin_par("i0", con(0), sym(n) - 1);
    let j0 = pb.begin_seq("j0", con(0), sym(n) - 1);
    pb.assign(
        elem(x, [idx(i0), idx(j0)]),
        ival(idx(i0) * 11 + idx(j0)).sin(),
    );
    pb.assign(
        elem(l, [idx(i0), idx(j0)]),
        ex(0.2) + ival(idx(i0) * 3 - idx(j0)).cos() * ex(0.05),
    );
    pb.end();
    pb.end();

    let _t = pb.begin_seq("t", con(0), sym(tmax) - 1);

    // Forward elimination along i (distributed): pipeline downward.
    let i1 = pb.begin_seq("i1", con(1), sym(n) - 1);
    let j1 = pb.begin_par("j1", con(0), sym(n) - 1);
    // Convex elimination step (numerically bounded).
    pb.assign(
        elem(x, [idx(i1), idx(j1)]),
        ex(0.75) * arr(x, [idx(i1), idx(j1)])
            + arr(l, [idx(i1), idx(j1)]) * arr(x, [idx(i1) - 1, idx(j1)]),
    );
    pb.end();
    pb.end();

    // Backward substitution along i (index-flipped so the loop still
    // increments): pipeline upward.
    let i2 = pb.begin_seq("i2", con(1), sym(n) - 1);
    let j2 = pb.begin_par("j2", con(0), sym(n) - 1);
    // row = n-1-i2 reads row n-i2 (= row+1).
    pb.assign(
        elem(x, [sym(n) - 1 - idx(i2), idx(j2)]),
        ex(0.75) * arr(x, [sym(n) - 1 - idx(i2), idx(j2)])
            + arr(l, [sym(n) - 1 - idx(i2), idx(j2)]) * arr(x, [sym(n) - idx(i2), idx(j2)]),
    );
    pb.end();
    pb.end();

    pb.end(); // t

    Built {
        prog: pb.finish(),
        values: vec![(n, nv), (tmax, tv)],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn both_sweeps_pipeline_without_barriers() {
        let built = build(Scale::Test);
        let bind = built.bindings(4);
        let st = spmd_opt::optimize(&built.prog, &bind).static_stats();
        assert_eq!(st.regions, 1, "{st:?}");
        assert!(st.neighbor_syncs >= 2, "{st:?}");
        // Fork-join executes a barrier per inner-iteration phase.
        let fj = spmd_opt::fork_join(&built.prog, &bind).static_stats();
        assert!(st.barriers < fj.barriers + 2);
    }
}
