//! Table 2 — static synchronization points: fork-join baseline versus
//! the optimized schedule, with the replacement kinds.

use spmd_bench::{instance, pct_reduction, Table};
use suite::Scale;

fn main() {
    let mut t = Table::new(&[
        "program",
        "barriers (base)",
        "barriers (opt)",
        "eliminated",
        "neighbor",
        "counter",
        "pairwise",
        "% barriers removed",
    ]);
    let (mut sum_base, mut sum_opt) = (0u64, 0u64);
    for def in suite::all() {
        let (built, bind) = instance(&def, Scale::Small, 8);
        let base = spmd_opt::fork_join(&built.prog, &bind).static_stats();
        let opt = spmd_opt::optimize(&built.prog, &bind).static_stats();
        sum_base += base.barriers as u64;
        sum_opt += opt.barriers as u64;
        t.row(vec![
            def.name.to_string(),
            base.barriers.to_string(),
            opt.barriers.to_string(),
            opt.eliminated.to_string(),
            opt.neighbor_syncs.to_string(),
            opt.counter_syncs.to_string(),
            opt.pair_syncs.to_string(),
            format!(
                "{:.0}%",
                pct_reduction(base.barriers as u64, opt.barriers as u64)
            ),
        ]);
    }
    println!("Table 2: static synchronization (P = 8, Small scale)\n");
    print!("{}", t.render());
    println!(
        "\ntotal static barriers: base {sum_base}, optimized {sum_opt} ({:.0}% removed)",
        pct_reduction(sum_base, sum_opt)
    );
}
