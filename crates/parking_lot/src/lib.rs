//! Offline stand-in for the `parking_lot` crate.
//!
//! Wraps `std::sync::{Mutex, Condvar}` behind parking_lot's
//! non-poisoning API (infallible `lock()`, `Condvar::wait(&mut guard)`),
//! which is all the worker team uses. Lock poisoning is translated to a
//! panic, matching parking_lot's behavior of not tracking poison at all
//! for the purposes of this workspace (a panicked worker already aborts
//! the test).

use std::sync::{self, MutexGuard as StdGuard};

/// A mutex with an infallible `lock`.
#[derive(Debug, Default)]
pub struct Mutex<T> {
    inner: sync::Mutex<T>,
}

/// RAII guard returned by [`Mutex::lock`].
pub struct MutexGuard<'a, T> {
    guard: StdGuard<'a, T>,
}

impl<T> Mutex<T> {
    /// New mutex holding `value`.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Acquire the lock (panics if a previous holder panicked).
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            guard: self.inner.lock().unwrap_or_else(|e| e.into_inner()),
        }
    }

    /// Consume the mutex, returning the value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.guard
    }
}

impl<T> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.guard
    }
}

/// A condition variable working with [`MutexGuard`].
#[derive(Debug, Default)]
pub struct Condvar {
    inner: sync::Condvar,
}

impl Condvar {
    /// New condition variable.
    pub const fn new() -> Self {
        Condvar {
            inner: sync::Condvar::new(),
        }
    }

    /// Block until notified, releasing the guard's lock while waiting.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        // Temporarily move the std guard out to satisfy the std wait
        // signature, then put the reacquired guard back.
        replace_with(&mut guard.guard, |g| {
            self.inner.wait(g).unwrap_or_else(|e| e.into_inner())
        });
    }

    /// Wake one waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wake all waiters.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

/// Replace `*slot` with `f(old)`, aborting on panic in `f` (the std
/// condvar wait cannot panic outside poisoning, which we unwrap).
fn replace_with<T>(slot: &mut T, f: impl FnOnce(T) -> T) {
    unsafe {
        let old = std::ptr::read(slot);
        let new = match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(old))) {
            Ok(v) => v,
            Err(_) => std::process::abort(),
        };
        std::ptr::write(slot, new);
    }
}

#[cfg(test)]
mod tests {
    use super::{Condvar, Mutex};
    use std::sync::Arc;

    #[test]
    fn lock_and_mutate() {
        let m = Mutex::new(vec![1, 2]);
        m.lock().push(3);
        assert_eq!(*m.lock(), vec![1, 2, 3]);
    }

    #[test]
    fn condvar_handshake() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let h = std::thread::spawn(move || {
            let (m, cv) = &*p2;
            let mut ready = m.lock();
            while !*ready {
                cv.wait(&mut ready);
            }
        });
        {
            let (m, cv) = &*pair;
            *m.lock() = true;
            cv.notify_all();
        }
        h.join().unwrap();
    }
}
