//! Whole-daemon crash tests against the real `beoptd` binary: SIGKILL
//! the process and prove a restart rejoins from the last good snapshot
//! with the warm path intact (the PR's ">=80% warm hit-rate after
//! rejoin" acceptance bar).

use served::{OptimizeRequest, PlanKind, ServiceClient};
use std::io::{BufRead, BufReader};
use std::process::{Child, Command, Stdio};
use std::time::Duration;

const TINY: &str = "program tiny\n\
sym n\n\
array A(n) block\n\
array B(n) block\n\
doall i = 0, n-1\n\
  B(i) = A(i) * 2.0\n\
end\n\
doall j = 0, n-1\n\
  A(j) = B(j) + 1.0\n\
end\n";

fn tiny_request(id: u64) -> OptimizeRequest {
    OptimizeRequest {
        id,
        program: TINY.to_string(),
        nprocs: 4,
        binds: vec![("n".to_string(), 24)],
        plan: PlanKind::Optimized,
        deadline_ms: None,
    }
}

struct Daemon {
    child: Child,
    addr: String,
}

impl Daemon {
    /// Start `beoptd` on an ephemeral port and scrape the bound
    /// address from its banner line.
    fn start(snapshot_dir: &std::path::Path) -> Daemon {
        let mut child = Command::new(env!("CARGO_BIN_EXE_beoptd"))
            .args([
                "--addr",
                "127.0.0.1:0",
                "--shards",
                "1",
                "--snapshot-every",
                "1",
                "--snapshot-dir",
            ])
            .arg(snapshot_dir)
            .stdout(Stdio::piped())
            .stderr(Stdio::null())
            .spawn()
            .expect("spawn beoptd");
        let stdout = child.stdout.take().expect("beoptd stdout");
        let mut banner = String::new();
        BufReader::new(stdout)
            .read_line(&mut banner)
            .expect("read beoptd banner");
        let addr = banner
            .trim()
            .strip_prefix("beoptd listening on ")
            .unwrap_or_else(|| panic!("unexpected banner: {banner:?}"))
            .to_string();
        Daemon { child, addr }
    }

    fn client(&self) -> ServiceClient {
        ServiceClient::new(self.addr.clone())
    }

    /// SIGKILL: no drain, no final snapshot, no goodbye.
    fn kill9(&mut self) {
        self.child.kill().expect("kill -9 beoptd");
        let _ = self.child.wait();
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

#[test]
fn sigkilled_daemon_restarts_warm_from_the_last_good_snapshot() {
    let dir = std::env::temp_dir().join(format!("beoptd-kill9-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    // Warm phase: --snapshot-every 1 persists after every request, so
    // by the end a good snapshot is on disk regardless of kill timing.
    let mut daemon = Daemon::start(&dir);
    let client = daemon.client();
    client.ping().expect("daemon must answer pings");
    for id in 0..4 {
        client.optimize(&tiny_request(id)).unwrap();
    }
    daemon.kill9();

    // Restart over the same directory: the shard must rejoin from the
    // last good snapshot and serve the same program warm.
    let mut daemon = Daemon::start(&dir);
    let client = daemon.client();
    let probes = 5u64;
    let mut warm = 0u64;
    for id in 0..probes {
        if client.optimize(&tiny_request(100 + id)).unwrap().warm_hint {
            warm += 1;
        }
    }
    let stats = client.stats().expect("stats after rejoin");
    daemon.kill9();
    let _ = std::fs::remove_dir_all(&dir);

    assert!(
        warm * 100 >= probes * 80,
        "post-rejoin warm hit-rate {warm}/{probes} below the 80% bar"
    );
    let shard = &stats.get("shards").unwrap().as_arr().unwrap()[0];
    assert!(
        shard.get("entries_loaded").unwrap().as_u64().unwrap() > 0,
        "restart must have loaded snapshot entries: {}",
        stats.to_string_pretty()
    );
    assert_eq!(
        shard.get("snapshot_rejects").unwrap().as_u64(),
        Some(0),
        "the surviving snapshot must be the last *good* one"
    );
}

#[test]
fn wire_shutdown_drains_and_exits() {
    let dir = std::env::temp_dir().join(format!("beoptd-shutdown-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let mut daemon = Daemon::start(&dir);
    let client = daemon.client();
    client.optimize(&tiny_request(1)).unwrap();
    client.shutdown().expect("shutdown ack");
    // The process must exit on its own (drain + final snapshot).
    let deadline = std::time::Instant::now() + Duration::from_secs(30);
    loop {
        match daemon.child.try_wait().expect("try_wait") {
            Some(status) => {
                assert!(status.success(), "clean exit after drain: {status:?}");
                break;
            }
            None if std::time::Instant::now() > deadline => {
                panic!("beoptd did not exit after wire shutdown")
            }
            None => std::thread::sleep(Duration::from_millis(20)),
        }
    }
    assert!(
        dir.join("shard-0.fme").is_file(),
        "graceful exit leaves a final snapshot"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
