//! Parser corpus tests: valid-program shapes and every diagnostic path.

use frontend::parse;

fn ok(src: &str) -> ir::Program {
    match parse(src) {
        Ok(p) => p,
        Err(e) => panic!("expected parse success, got: {e}\nsource:\n{src}"),
    }
}

fn err(src: &str) -> frontend::ParseError {
    match parse(src) {
        Ok(_) => panic!("expected parse failure\nsource:\n{src}"),
        Err(e) => e,
    }
}

#[test]
fn minimal_program() {
    let p = ok("\nprogram tiny\nsym n\narray A(n) block\ndoall i = 0, n-1\n  A(i) = 1.0\nend\n");
    assert_eq!(p.name, "tiny");
    assert_eq!(p.num_statements(), 1);
}

#[test]
fn all_distribution_spellings() {
    let p = ok("
program dists
sym n
array A(n) block
array B(n) cyclic
array C(n) cyclic(4)
array D(n, n) block@1
array E(n, n) cyclic(2)@1
array F(n) repl
array G(n) private
doall i = 0, n-1
  A(i) = 0.0
end
");
    use ir::DimDist::*;
    assert_eq!(p.arrays[0].dist.dims[0], Block);
    assert_eq!(p.arrays[1].dist.dims[0], Cyclic);
    assert_eq!(p.arrays[2].dist.dims[0], BlockCyclic(4));
    assert_eq!(p.arrays[3].dist.dims[1], Block);
    assert_eq!(p.arrays[4].dist.dims[1], BlockCyclic(2));
    assert!(p.arrays[5].dist.is_replicated());
    assert!(p.arrays[6].privatizable);
}

#[test]
fn expressions_and_builtins() {
    let p = ok("
program exprs
sym n
array A(n) block
scalar s = -2.5
doall i = 0, n-1
  A(i) = sqrt(abs(sin(i) * cos(i))) + exp(0.1) / (1.0 + s) - min(s, max(s, 2))
end
");
    assert_eq!(p.scalars[0].init, -2.5);
}

#[test]
fn nested_loops_guards_reductions() {
    let p = ok("
program nest
sym n
array A(n, n) block
scalar acc = 0.0
do k = 0, n-1
  doall i = 0, n-1
    do j = 0, n-1
      if i - j >= 0 and k == 0 then
        A(i, j) = i * 2 - j + k
      end
    end
  end
  doall i2 = 0, n-1
    acc += A(i2, k)
  end
  minreduce acc = A(k, k)
end
");
    assert_eq!(p.parallel_loops().len(), 2);
    assert!(p.validate().is_empty());
}

#[test]
fn undeclared_sym_in_bound() {
    let e = err("\nprogram p\narray A(m) block\ndoall i = 0, 3\n  A(i) = 1.0\nend\n");
    assert!(e.msg.contains("m"), "{e}");
}

#[test]
fn wrong_rank_subscript_rejected() {
    let e = err("\nprogram p\nsym n\narray A(n, n) block\ndoall i = 0, n-1\n  A(i) = 1.0\nend\n");
    assert!(e.msg.contains("rank"), "{e}");
}

#[test]
fn reserved_statement_shapes() {
    // `end` too many times.
    let e = err("\nprogram p\nsym n\ndoall i = 0, n\nend\nend\n");
    assert!(e.msg.contains("nothing open"), "{e}");
    // condition must use ==, >=, <=.
    let e2 = err("\nprogram p\nsym n\ndoall i = 0, n\n  if i = 0 then\n  end\nend\n");
    assert!(e2.msg.contains("=="), "{e2}");
}

#[test]
fn duplicate_declarations_rejected() {
    let e = err("\nprogram p\nsym n, n\n");
    assert!(e.msg.contains("duplicate"), "{e}");
    let e2 = err("\nprogram p\nsym n\narray A(n) block\narray A(n) block\n");
    assert!(e2.msg.contains("duplicate"), "{e2}");
    let e3 = err("\nprogram p\nscalar s\nscalar s\n");
    assert!(e3.msg.contains("duplicate"), "{e3}");
}

#[test]
fn division_in_affine_context_rejected() {
    let e = err("\nprogram p\nsym n\narray A(n) block\ndoall i = 0, n/2\n  A(i) = 0.0\nend\n");
    assert!(e.msg.contains("affine"), "{e}");
}

#[test]
fn float_in_subscript_rejected() {
    let e = err("\nprogram p\nsym n\narray A(n) block\ndoall i = 0, n-1\n  A(0.5) = 1.0\nend\n");
    assert!(e.msg.contains("affine") || e.msg.contains("float"), "{e}");
}

#[test]
fn shadowed_loop_names_resolve_innermost() {
    // Two sibling loops may reuse a name; inner references bind to the
    // innermost open loop.
    let p = ok("
program shadow
sym n
array A(n) block
doall i = 0, n-1
  A(i) = 1.0
end
doall i = 0, n-1
  A(i) = A(i) + 1.0
end
");
    assert_eq!(p.parallel_loops().len(), 2);
}

#[test]
fn comments_and_blank_lines_everywhere() {
    ok("
! leading comment
program c   ! trailing
! between
sym n

array A(n) block  ! dist comment

doall i = 0, n-1   ! loop
  ! inside
  A(i) = 1.0       ! stmt
end
! after
");
}
