//! Offline stand-in for the `crossbeam` crate.
//!
//! The runtime only uses `crossbeam::utils::{Backoff, CachePadded}`;
//! this local crate provides both with the same semantics (exponential
//! spin backoff, cache-line-aligned padding) on top of `std`.

/// Utilities mirroring `crossbeam::utils`.
pub mod utils {
    use std::cell::Cell;

    /// Pads and aligns a value to 128 bytes so adjacent instances never
    /// share a cache line (the false-sharing guard the barrier and
    /// counter banks rely on).
    #[derive(Debug, Default)]
    #[repr(align(128))]
    pub struct CachePadded<T> {
        value: T,
    }

    impl<T> CachePadded<T> {
        /// Wrap a value.
        pub const fn new(value: T) -> Self {
            CachePadded { value }
        }

        /// Unwrap.
        pub fn into_inner(self) -> T {
            self.value
        }
    }

    impl<T> std::ops::Deref for CachePadded<T> {
        type Target = T;

        fn deref(&self) -> &T {
            &self.value
        }
    }

    impl<T> std::ops::DerefMut for CachePadded<T> {
        fn deref_mut(&mut self) -> &mut T {
            &mut self.value
        }
    }

    const SPIN_LIMIT: u32 = 6;
    const YIELD_LIMIT: u32 = 10;

    /// Exponential backoff for spin loops: spin with `spin_loop` hints
    /// first, then escalate to `yield_now`; [`Backoff::is_completed`]
    /// tells the caller to park or plain-yield instead.
    #[derive(Debug, Default)]
    pub struct Backoff {
        step: Cell<u32>,
    }

    impl Backoff {
        /// Fresh backoff state.
        pub fn new() -> Self {
            Backoff { step: Cell::new(0) }
        }

        /// Reset to the initial (pure spin) state.
        pub fn reset(&self) {
            self.step.set(0);
        }

        /// Back off once: spin for `2^step` hint instructions while cheap,
        /// yield the thread once past [`SPIN_LIMIT`].
        pub fn snooze(&self) {
            let step = self.step.get();
            if step <= SPIN_LIMIT {
                for _ in 0..(1u32 << step) {
                    std::hint::spin_loop();
                }
            } else {
                std::thread::yield_now();
            }
            if step <= YIELD_LIMIT {
                self.step.set(step + 1);
            }
        }

        /// True once backoff has escalated past yielding — callers should
        /// switch to their own blocking strategy.
        pub fn is_completed(&self) -> bool {
            self.step.get() > YIELD_LIMIT
        }
    }
}

#[cfg(test)]
mod tests {
    use super::utils::{Backoff, CachePadded};

    #[test]
    fn cache_padded_is_aligned_and_transparent() {
        let c = CachePadded::new(7u64);
        assert_eq!(*c, 7);
        assert_eq!(std::mem::align_of::<CachePadded<u64>>(), 128);
        assert_eq!(c.into_inner(), 7);
    }

    #[test]
    fn backoff_completes_after_enough_snoozes() {
        let b = Backoff::new();
        assert!(!b.is_completed());
        for _ in 0..32 {
            b.snooze();
        }
        assert!(b.is_completed());
        b.reset();
        assert!(!b.is_completed());
    }
}
