//! Bounded MPMC work queue for shard admission.
//!
//! A deliberately boring `Mutex<VecDeque>` + `Condvar`: the queue is
//! the *admission control* point, not a throughput bottleneck — each
//! entry is one compile request that costs orders of magnitude more
//! than the lock. What matters here is the overload contract:
//! [`BoundedQueue::try_push`] never blocks and reports fullness so the
//! caller can shed with a retry-after hint, and the receiving side
//! survives its consumer crashing (the queue is owned by the shard,
//! not the worker thread, so a restarted worker resumes the backlog).

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};
use std::time::Duration;

/// Why [`BoundedQueue::try_push`] refused an item.
#[derive(Debug, PartialEq, Eq)]
pub enum PushError<T> {
    /// The queue is at capacity; shed the request.
    Full(T),
    /// The queue is closed (service shutting down).
    Closed(T),
}

/// What [`BoundedQueue::pop_timeout`] produced.
#[derive(Debug)]
pub enum Pop<T> {
    /// An item.
    Item(T),
    /// Nothing arrived within the timeout (queue still open).
    TimedOut,
    /// The queue is closed and fully drained: the consumer should exit.
    Closed,
}

struct Inner<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// A bounded multi-producer multi-consumer queue.
pub struct BoundedQueue<T> {
    inner: Mutex<Inner<T>>,
    not_empty: Condvar,
    cap: usize,
}

impl<T> BoundedQueue<T> {
    /// A queue admitting at most `cap` waiting items (`cap >= 1`).
    pub fn new(cap: usize) -> Self {
        BoundedQueue {
            inner: Mutex::new(Inner {
                items: VecDeque::new(),
                closed: false,
            }),
            not_empty: Condvar::new(),
            cap: cap.max(1),
        }
    }

    /// Admission capacity.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Items currently waiting.
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().items.len()
    }

    /// True when nothing is waiting.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Non-blocking enqueue: `Err(Full)` at capacity (the load-shedding
    /// signal), `Err(Closed)` after [`BoundedQueue::close`].
    pub fn try_push(&self, item: T) -> Result<(), PushError<T>> {
        let mut g = self.inner.lock().unwrap();
        if g.closed {
            return Err(PushError::Closed(item));
        }
        if g.items.len() >= self.cap {
            return Err(PushError::Full(item));
        }
        g.items.push_back(item);
        drop(g);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Blocking dequeue with a bounded wait. After `close()`, drains
    /// the backlog before reporting [`Pop::Closed`] — a restarted
    /// worker picks up exactly where the crashed one left off.
    pub fn pop_timeout(&self, timeout: Duration) -> Pop<T> {
        let mut g = self.inner.lock().unwrap();
        loop {
            if let Some(item) = g.items.pop_front() {
                return Pop::Item(item);
            }
            if g.closed {
                return Pop::Closed;
            }
            let (next, res) = self.not_empty.wait_timeout(g, timeout).unwrap();
            g = next;
            if res.timed_out() {
                return match g.items.pop_front() {
                    Some(item) => Pop::Item(item),
                    None if g.closed => Pop::Closed,
                    None => Pop::TimedOut,
                };
            }
        }
    }

    /// Close the queue: producers are refused from now on; consumers
    /// drain the backlog and then observe [`Pop::Closed`].
    pub fn close(&self) {
        self.inner.lock().unwrap().closed = true;
        self.not_empty.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sheds_at_capacity_and_drains_after_close() {
        let q = BoundedQueue::new(2);
        assert!(q.try_push(1).is_ok());
        assert!(q.try_push(2).is_ok());
        assert!(matches!(q.try_push(3), Err(PushError::Full(3))));
        q.close();
        assert!(matches!(q.try_push(4), Err(PushError::Closed(4))));
        assert!(matches!(
            q.pop_timeout(Duration::from_millis(1)),
            Pop::Item(1)
        ));
        assert!(matches!(
            q.pop_timeout(Duration::from_millis(1)),
            Pop::Item(2)
        ));
        assert!(matches!(
            q.pop_timeout(Duration::from_millis(1)),
            Pop::Closed
        ));
    }

    #[test]
    fn pop_times_out_on_an_open_empty_queue() {
        let q: BoundedQueue<u32> = BoundedQueue::new(1);
        assert!(matches!(
            q.pop_timeout(Duration::from_millis(5)),
            Pop::TimedOut
        ));
    }
}
