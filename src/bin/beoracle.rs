//! Fuzz-campaign driver for the barrier-elimination correctness
//! tooling.
//!
//! ```text
//! beoracle fuzz    [--count N] [--seed S] [--threads] [--nprocs 1,3,4] [--repro-dir DIR]
//!                  [--deadline MS] [--chaos] [--chaos-seed S]
//! beoracle mutate  [--count N] [--seed S]
//! beoracle kernels [--threads]
//! beoracle chaos   [--chaos-seed S] [--deadline MS] [--nprocs P] [--repro-dir DIR]
//!                  [--no-recover] [--recovery-json PATH] [--profile]
//!                  [--degrade] [--degrade-json PATH] [--max-attempts N]
//! beoracle service-chaos [--chaos-seed S] [--rounds N] [--nprocs P] [--json PATH]
//!                  [--snapshot-dir DIR]
//! ```
//!
//! * `fuzz` — generate `N` random programs and differentially execute
//!   each (sequential vs fork-join vs optimized; virtual interleavings
//!   and, with `--threads`, real threads with both barrier kinds),
//!   validating every schedule race-free. Real-thread runs are
//!   deadline-guarded (`--deadline`, default 10000 ms) and can be
//!   perturbed with benign seeded chaos (`--chaos`). Each failure is
//!   dumped as a repro bundle (program text, explain-pass decision
//!   log, timeline trace, structured failure reports) under
//!   `--repro-dir` (default `beoracle-repro/`).
//! * `mutate` — for `N` generated programs, delete each sync op of the
//!   optimized schedule in turn and report what the race validator and
//!   the differential oracle caught.
//! * `kernels` — run the differential oracle over every suite kernel.
//! * `chaos` — run the seeded fault-injection campaign over the five
//!   shipped `.be` kernels. By default every droppable sync post
//!   (final counter increment, neighbor post, barrier arrival) is
//!   injected as a *persistent* fault and the self-healing supervisor
//!   must absorb it — rolling back to the region checkpoint, demoting
//!   the blamed site, retrying within the budget — with recovered
//!   memory matching the sequential oracle; the aggregated recovery
//!   timelines are written to `--recovery-json` (default
//!   `recovery.json`). With `--no-recover`, the older detect-only
//!   campaign runs instead: every dropped post must be detected
//!   within the deadline with a failure report naming the dropped
//!   site. With `--profile`, each kernel x plan additionally does one
//!   profiled benign run and its event-ring accounting (`events +
//!   dropped == attempted`) is checked and embedded in the JSON.
//!   With `--degrade`, the *total-availability* campaign runs instead:
//!   every pid of every kernel x plan is permanently killed (silent
//!   post-drops for each pid, plus a panic kill of P0 that survives
//!   every team shrink and forces the sequential tail) and the
//!   degradation supervisor must complete each run — classifying the
//!   loss, shrinking the team, re-planning, and at worst finishing
//!   serially — with memory matching the sequential oracle; the
//!   aggregated degradation timelines are written to `--degrade-json`
//!   (default `degrade.json`).
//! * `service-chaos` — run the *service-plane* chaos campaign: start an
//!   in-process `beoptd` service under a seeded fault schedule (shard
//!   kills mid-request and mid-snapshot, snapshot corruption, dropped
//!   and delayed connections) and drive every kernel x both plans for
//!   `--rounds` rounds through a retrying client. Every answer's
//!   explain document must be byte-identical to a clean
//!   single-process run; the report (verdicts + service fault
//!   counters) is written to `--json` (default `service.json`).
//!
//! Exits nonzero on any mismatch, race, uncaught mutant, or missed
//! fault.

use barrier_elim::analysis::Bindings;
use barrier_elim::ir::SymId;
use barrier_elim::oracle::{self, DiffConfig};
use barrier_elim::runtime::Team;
use barrier_elim::spmd_opt::{fork_join, optimize};
use barrier_elim::suite::{self, Scale};
use barrier_elim::{frontend, obs};
use std::sync::Arc;
use std::time::Duration;

fn parse_flag(args: &[String], name: &str) -> bool {
    args.iter().any(|a| a == name)
}

fn parse_opt(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|k| args.get(k + 1))
        .cloned()
}

fn parse_u64(args: &[String], name: &str, default: u64) -> u64 {
    parse_opt(args, name)
        .map(|v| v.parse().unwrap_or_else(|_| panic!("bad {name}: {v}")))
        .unwrap_or(default)
}

fn parse_nprocs(args: &[String]) -> Vec<i64> {
    parse_opt(args, "--nprocs")
        .map(|v| {
            v.split(',')
                .map(|p| p.parse().unwrap_or_else(|_| panic!("bad --nprocs: {v}")))
                .collect()
        })
        .unwrap_or_else(|| vec![1, 3, 4])
}

fn cmd_fuzz(args: &[String]) -> i32 {
    let count = parse_u64(args, "--count", 200);
    let seed = parse_u64(args, "--seed", 0);
    let repro_dir = std::path::PathBuf::from(
        parse_opt(args, "--repro-dir").unwrap_or_else(|| "beoracle-repro".to_string()),
    );
    let chaos_seed = if parse_flag(args, "--chaos") || parse_opt(args, "--chaos-seed").is_some() {
        Some(parse_u64(args, "--chaos-seed", seed))
    } else {
        None
    };
    let cfg = DiffConfig {
        nprocs: parse_nprocs(args),
        threads: parse_flag(args, "--threads") || chaos_seed.is_some(),
        deadline: Some(Duration::from_millis(parse_u64(args, "--deadline", 10_000))),
        chaos_seed,
        ..DiffConfig::default()
    };
    println!(
        "fuzzing {count} programs from seed {seed} (nprocs {:?}, threads {}, deadline {:?}, chaos {:?})",
        cfg.nprocs, cfg.threads, cfg.deadline, cfg.chaos_seed
    );
    let s = oracle::fuzz_campaign(seed, count, &cfg);
    for (shape, n) in &s.shape_counts {
        println!("  {shape:?}: {n} programs");
    }
    let repro_nprocs = cfg.nprocs.iter().copied().max().unwrap_or(4);
    for (seed, shape, failures) in &s.failures {
        println!("FAIL seed {seed} ({shape:?}):");
        for f in failures {
            println!("  {f}");
        }
        // Bundle everything a triager needs: program text, the explain
        // pass's decision log, an adversarial-order timeline, and the
        // structured failure reports of any faulted thread runs
        // (re-derived here — the campaign summary keeps only strings).
        let g = oracle::generate(*seed);
        let r = oracle::check_program(&g.prog, &|p| g.bindings(p), &cfg);
        match oracle::dump_repro(&repro_dir, &g, repro_nprocs, failures, &r.failure_reports) {
            Ok(bundle) => println!("  repro bundle: {}", bundle.display()),
            Err(e) => eprintln!("  cannot write repro bundle: {e}"),
        }
    }
    println!("{}/{} programs passed", s.cases - s.failures.len(), s.cases);
    if s.ok() {
        0
    } else {
        1
    }
}

fn mutate_one(
    label: &str,
    prog: &barrier_elim::ir::Program,
    bind: &barrier_elim::analysis::Bindings,
    tol: f64,
) -> u32 {
    let plan = barrier_elim::spmd_opt::optimize(prog, bind);
    let teeth = oracle::mutation_teeth(prog, bind, &plan, tol);
    let flagged = teeth.flagged();
    let diverged = teeth.sites.iter().filter(|t| t.diverged.is_some()).count();
    println!(
        "{label}: {} sites, {flagged} flagged by validator, {diverged} diverged dynamically",
        teeth.sites.len()
    );
    let mut bad = 0;
    for t in &teeth.sites {
        let mark = if t.flagged() { "caught " } else { "MISSED " };
        let dyn_mark = match t.diverged {
            Some(d) => format!("diverged {d:.2e}"),
            None => "no divergence".to_string(),
        };
        println!(
            "  {mark} {:40} {} racing pairs, {dyn_mark}",
            t.site.desc, t.racing_pairs
        );
        if !t.flagged() && t.diverged.is_some() {
            bad += 1;
        }
    }
    if teeth.clean_racing_pairs > 0 {
        println!(
            "  BAD: unmutated plan reports {} races",
            teeth.clean_racing_pairs
        );
        bad += 1;
    }
    bad
}

fn cmd_mutate(args: &[String]) -> i32 {
    let mut bad = 0;
    if parse_flag(args, "--kernels") {
        for def in suite::all() {
            let built = (def.build)(Scale::Test);
            let bind = built.bindings(4);
            bad += mutate_one(def.name, &built.prog, &bind, 1e-9);
        }
    } else {
        let count = parse_u64(args, "--count", 10);
        let seed = parse_u64(args, "--seed", 0);
        for s in seed..seed + count {
            let g = oracle::generate(s);
            let bind = g.bindings(4);
            bad += mutate_one(&format!("seed {s} ({:?})", g.shape), &g.prog, &bind, 0.0);
        }
    }
    if bad == 0 {
        0
    } else {
        println!("{bad} mutants escaped the validator");
        1
    }
}

fn cmd_kernels(args: &[String]) -> i32 {
    let cfg = DiffConfig {
        threads: parse_flag(args, "--threads"),
        tol: 1e-9, // suite reductions reassociate
        ..DiffConfig::default()
    };
    let mut failed = 0;
    for def in suite::all() {
        let built = (def.build)(Scale::Test);
        let r = oracle::check_program(&built.prog, &|p| built.bindings(p), &cfg);
        if r.ok() {
            println!("ok   {}", def.name);
        } else {
            failed += 1;
            println!("FAIL {}:", def.name);
            for f in &r.failures {
                println!("  {f}");
            }
        }
    }
    if failed == 0 {
        0
    } else {
        1
    }
}

/// The five shipped `.be` kernels with the bindings the golden tests
/// pin (small enough for sub-second runs, large enough to exercise
/// every placed sync kind).
const CHAOS_KERNELS: &[(&str, &[(&str, i64)])] = &[
    ("broadcast.be", &[("n", 12)]),
    ("jacobi.be", &[("n", 48), ("tmax", 4)]),
    ("pipeline.be", &[("n", 16), ("tmax", 3)]),
    ("private_gather.be", &[("n", 10)]),
    ("shallow.be", &[("n", 12), ("tmax", 2)]),
];

/// Suite kernels whose optimized plans place distance-vector pairwise
/// counters — the chaos campaign includes them (at `Scale::Test`) so
/// dropped pairwise cell posts get teeth alongside the `.be` corpus.
const PAIRWISE_CHAOS_KERNELS: &[&str] = &[
    "wavepipe2d",
    "trisolve_pipe",
    "multihop",
    "pivot_shift",
    "shift_bcast",
];

fn bind_by_name(prog: &barrier_elim::ir::Program, nprocs: i64, sets: &[(&str, i64)]) -> Bindings {
    let mut b = Bindings::new(nprocs);
    for (name, v) in sets {
        let pos = prog
            .syms
            .iter()
            .position(|s| &s.name == name)
            .unwrap_or_else(|| panic!("sym {name} missing"));
        b.bind(SymId(pos as u32), *v);
    }
    b
}

/// One profiled benign run of `plan`; returns the ring-accounting
/// summary `(events, dropped, attempted)` for the campaign report.
fn profile_benign(
    prog: &Arc<barrier_elim::ir::Program>,
    bind: &Arc<Bindings>,
    plan: &barrier_elim::spmd_opt::SpmdProgram,
    team: &Team,
) -> (usize, u64, u64) {
    use barrier_elim::interp::{run_parallel_observed, Mem, ObserveOptions};
    let mem = Arc::new(Mem::new(prog, bind));
    let opts = ObserveOptions {
        profile: Some(barrier_elim::runtime::events::ProfileOptions::default()),
        ..ObserveOptions::default()
    };
    let out = run_parallel_observed(prog, bind, plan, &mem, team, &opts);
    match out.profile {
        Some(d) => (d.events.len(), d.dropped, d.attempted()),
        None => (0, 0, 0),
    }
}

/// The `chaos --degrade` campaign: every pid of every kernel x plan is
/// permanently kill-pid'ed (silent drops, plus a panic kill of P0 that
/// forces the serial tail) and the degradation supervisor must finish
/// each run with memory matching the sequential oracle. Writes the
/// aggregated timelines to `degrade_json`.
fn cmd_chaos_degrade(
    seed: u64,
    deadline: Duration,
    nprocs: i64,
    degrade_json: &str,
    max_attempts: u32,
) -> i32 {
    println!(
        "degrade campaign over {} kernels (deadline {deadline:?}, P={nprocs}, kill-pid: every pid silent + P0 panic)",
        CHAOS_KERNELS.len()
    );
    let team = Team::new(nprocs as usize);
    let policy = barrier_elim::runtime::RetryPolicy {
        max_attempts,
        sticky_pid_k: 2,
        ..barrier_elim::runtime::RetryPolicy::default()
    };
    let mut runs: Vec<obs::Json> = Vec::new();
    let mut failed = 0;
    for (kernel, sets) in CHAOS_KERNELS {
        let src = match std::fs::read_to_string(format!("kernels/{kernel}")) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("FAIL {kernel}: cannot read kernel file: {e}");
                failed += 1;
                continue;
            }
        };
        let prog = Arc::new(frontend::parse(&src).unwrap_or_else(|e| panic!("{kernel}: {e}")));
        let bind = Arc::new(bind_by_name(&prog, nprocs, sets));
        type Replan =
            fn(&barrier_elim::ir::Program, &Bindings) -> barrier_elim::spmd_opt::SpmdProgram;
        let plans: [(&str, barrier_elim::spmd_opt::SpmdProgram, Replan); 2] = [
            ("fork-join", fork_join(&prog, &bind), fork_join),
            ("optimized", optimize(&prog, &bind), optimize),
        ];
        for (label, plan, replan) in plans {
            let r =
                oracle::degrade_check(&prog, &bind, &plan, &team, deadline, 1e-9, &policy, &replan);
            if r.ok() {
                let worst = r
                    .runs
                    .iter()
                    .find(|k| k.rung == "serial")
                    .map(|k| format!("P{} {} kill -> serial", k.pid, k.mode.as_str()))
                    .unwrap_or_else(|| "no serial tail needed".to_string());
                println!(
                    "ok   {kernel} {label}: {} kills absorbed, worst case {worst}",
                    r.runs.len()
                );
            } else {
                failed += 1;
                println!("FAIL {kernel} {label}:");
                for f in r.failures() {
                    println!("  {f}");
                }
                for k in &r.runs {
                    if !(k.completed && k.degraded && k.diff <= 1e-9) {
                        print!("{}", obs::render_degradation(&k.report));
                    }
                }
            }
            let kills: Vec<obs::Json> = r
                .runs
                .iter()
                .map(|k| {
                    obs::Json::obj()
                        .set("pid", k.pid)
                        .set("mode", k.mode.as_str())
                        .set("completed", k.completed)
                        .set("degraded", k.degraded)
                        .set("rung", k.rung.as_str())
                        .set("nprocs_final", k.nprocs_final)
                        .set("procs_lost", k.procs_lost)
                        .set("diff", k.diff)
                        .set("report", obs::degradation_json(&k.report))
                })
                .collect();
            runs.push(
                obs::Json::obj()
                    .set("kernel", *kernel)
                    .set("plan", label)
                    .set("ok", r.ok())
                    .set("kills", kills),
            );
        }
    }
    let doc = obs::Json::obj()
        .set("campaign", "chaos-degrade")
        .set("seed", seed)
        .set("deadline_ms", deadline.as_millis() as u64)
        .set("nprocs", nprocs)
        .set("max_attempts", policy.max_attempts)
        .set("sticky_pid_k", policy.sticky_pid_k)
        .set("ok", failed == 0)
        .set("runs", runs);
    match std::fs::write(degrade_json, doc.to_string_pretty()) {
        Ok(()) => println!("degrade: aggregated timelines written to {degrade_json}"),
        Err(e) => {
            eprintln!("beoracle: cannot write {degrade_json}: {e}");
            failed += 1;
        }
    }
    if failed == 0 {
        0
    } else {
        println!("{failed} kernel plans failed the degrade campaign");
        1
    }
}

fn cmd_chaos(args: &[String]) -> i32 {
    let seed = parse_u64(args, "--chaos-seed", 0);
    let deadline = Duration::from_millis(parse_u64(args, "--deadline", 250));
    let nprocs = parse_u64(args, "--nprocs", 4) as i64;
    let no_recover = parse_flag(args, "--no-recover");
    let profile = parse_flag(args, "--profile");
    if parse_flag(args, "--degrade") {
        let degrade_json =
            parse_opt(args, "--degrade-json").unwrap_or_else(|| "degrade.json".to_string());
        let max_attempts = parse_u64(args, "--max-attempts", 4) as u32;
        return cmd_chaos_degrade(seed, deadline, nprocs, &degrade_json, max_attempts);
    }
    let repro_dir = std::path::PathBuf::from(
        parse_opt(args, "--repro-dir").unwrap_or_else(|| "beoracle-repro".to_string()),
    );
    let recovery_json =
        parse_opt(args, "--recovery-json").unwrap_or_else(|| "recovery.json".to_string());
    println!(
        "chaos campaign over {} kernels (seed {seed}, deadline {deadline:?}, P={nprocs}, mode {})",
        CHAOS_KERNELS.len() + PAIRWISE_CHAOS_KERNELS.len(),
        if no_recover {
            "detect-only"
        } else {
            "self-healing"
        }
    );
    let team = Team::new(nprocs as usize);
    let policy = barrier_elim::runtime::RetryPolicy::default();
    let mut runs: Vec<obs::Json> = Vec::new();
    let mut failed = 0;
    // The .be corpus plus the pipelined suite kernels, so the drop
    // matrix covers every sync kind — including pairwise cell posts.
    let mut programs: Vec<(String, Arc<barrier_elim::ir::Program>, Arc<Bindings>)> = Vec::new();
    for (kernel, sets) in CHAOS_KERNELS {
        let src = match std::fs::read_to_string(format!("kernels/{kernel}")) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("FAIL {kernel}: cannot read kernel file: {e}");
                failed += 1;
                continue;
            }
        };
        let prog = Arc::new(frontend::parse(&src).unwrap_or_else(|e| panic!("{kernel}: {e}")));
        let bind = Arc::new(bind_by_name(&prog, nprocs, sets));
        programs.push((kernel.to_string(), prog, bind));
    }
    for name in PAIRWISE_CHAOS_KERNELS {
        let b = (suite::by_name(name).expect("suite kernel").build)(Scale::Test);
        let bind = Arc::new(b.bindings(nprocs));
        programs.push((name.to_string(), Arc::new(b.prog), bind));
    }
    for (kernel, prog, bind) in &programs {
        for (label, plan) in [
            ("fork-join", fork_join(&prog, &bind)),
            ("optimized", optimize(&prog, &bind)),
        ] {
            if no_recover {
                // Detection-only: every dropped post must surface as a
                // failure report naming the dropped site.
                let r = oracle::chaos_check(&prog, &bind, &plan, &team, seed, deadline, 1e-9);
                if r.ok() {
                    println!(
                        "ok   {kernel} {label}: benign passed, {} teeth bit",
                        r.teeth.len()
                    );
                } else {
                    failed += 1;
                    println!("FAIL {kernel} {label}:");
                    for f in r.failures() {
                        println!("  {f}");
                    }
                    // Persist every structured report for triage.
                    let dir =
                        repro_dir.join(format!("chaos-{}-{label}", kernel.trim_end_matches(".be")));
                    if let Err(e) = std::fs::create_dir_all(&dir) {
                        eprintln!("  cannot write repro bundle: {e}");
                        continue;
                    }
                    for (k, t) in r.teeth.iter().enumerate() {
                        if let Some(report) = &t.failure {
                            let doc = obs::failure_json(report);
                            let path = dir.join(format!("failure-{k}.json"));
                            if std::fs::write(&path, doc.to_string_pretty()).is_ok() {
                                println!("  report: {}", path.display());
                            }
                        }
                    }
                }
                continue;
            }
            // Self-healing (default): every dropped post must be
            // absorbed by the recovery supervisor within its retry
            // budget, with memory matching the sequential oracle.
            let r =
                oracle::recovery_check(&prog, &bind, &plan, &team, seed, deadline, 1e-9, &policy);
            let worst = r.teeth.iter().map(|t| t.attempts_used).max().unwrap_or(1);
            if r.ok() {
                println!(
                    "ok   {kernel} {label}: benign passed, {} teeth absorbed (worst case {worst} attempts)",
                    r.teeth.len()
                );
            } else {
                failed += 1;
                println!("FAIL {kernel} {label}:");
                for f in r.failures() {
                    println!("  {f}");
                }
                for t in &r.teeth {
                    if !(t.converged && t.recovered && t.diff <= 1e-9) {
                        print!("{}", obs::render_recovery(&t.report));
                    }
                }
            }
            let teeth: Vec<obs::Json> = r
                .teeth
                .iter()
                .map(|t| {
                    obs::Json::obj()
                        .set("site", t.spec.site)
                        .set("pid", t.spec.pid)
                        .set("from_visit", t.spec.from_visit)
                        .set("kind", t.kind)
                        .set("converged", t.converged)
                        .set("recovered", t.recovered)
                        .set("diff", t.diff)
                        .set("attempts", t.attempts_used)
                        .set("report", obs::recovery_json(&t.report))
                })
                .collect();
            let mut run = obs::Json::obj()
                .set("kernel", kernel.as_str())
                .set("plan", label)
                .set("ok", r.ok())
                .set("benign_ok", r.benign_ok)
                .set("benign_diff", r.benign_diff)
                .set("teeth", teeth);
            if profile {
                let (events, dropped, attempted) = profile_benign(&prog, &bind, &plan, &team);
                println!(
                    "  profile {kernel} {label}: {events} events, {dropped} dropped \
                     (attempted {attempted})"
                );
                if events as u64 + dropped != attempted {
                    failed += 1;
                    println!("FAIL {kernel} {label}: ring accounting broken");
                }
                run = run.set(
                    "profile",
                    obs::Json::obj()
                        .set("events", events as u64)
                        .set("dropped", dropped)
                        .set("attempted", attempted),
                );
            }
            runs.push(run);
        }
    }
    if !no_recover {
        let doc = obs::Json::obj()
            .set("campaign", "chaos-recovery")
            .set("seed", seed)
            .set("deadline_ms", deadline.as_millis() as u64)
            .set("nprocs", nprocs)
            .set("max_attempts", policy.max_attempts)
            .set("ok", failed == 0)
            .set("runs", runs);
        match std::fs::write(&recovery_json, doc.to_string_pretty()) {
            Ok(()) => println!("recovery: aggregated timelines written to {recovery_json}"),
            Err(e) => {
                eprintln!("beoracle: cannot write {recovery_json}: {e}");
                failed += 1;
            }
        }
    }
    if failed == 0 {
        0
    } else {
        println!("{failed} kernel plans failed the chaos campaign");
        1
    }
}

fn cmd_service_chaos(args: &[String]) -> i32 {
    let seed = parse_u64(args, "--chaos-seed", 0);
    let rounds = parse_u64(args, "--rounds", 3) as u32;
    let nprocs = parse_u64(args, "--nprocs", 4) as i64;
    let json_path = parse_opt(args, "--json").unwrap_or_else(|| "service.json".to_string());
    let snapshot_dir = std::path::PathBuf::from(
        parse_opt(args, "--snapshot-dir")
            .unwrap_or_else(|| format!("beoptd-snapshots-{}", std::process::id())),
    );
    let mut cases = Vec::new();
    for (kernel, sets) in CHAOS_KERNELS {
        let src = match std::fs::read_to_string(format!("kernels/{kernel}")) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("FAIL {kernel}: cannot read kernel file: {e}");
                return 1;
            }
        };
        cases.push(oracle::ServiceChaosCase {
            name: kernel.to_string(),
            src,
            binds: sets.iter().map(|(n, v)| (n.to_string(), *v)).collect(),
        });
    }
    println!(
        "service-chaos campaign: {} kernels x 2 plans x {rounds} rounds (seed {seed}, P={nprocs})",
        cases.len()
    );
    let cfg = oracle::ServiceChaosConfig {
        seed,
        ..Default::default()
    };
    let r = oracle::service_chaos_check(&cases, nprocs, cfg, rounds, Some(snapshot_dir.clone()));
    let _ = std::fs::remove_dir_all(&snapshot_dir);
    println!(
        "service-chaos: {}/{} answers bitwise-identical to the clean reference, {} fault(s) absorbed",
        r.matched,
        r.requests,
        r.faults_absorbed()
    );
    for f in &r.failures {
        println!("FAIL {f}");
    }
    let doc = oracle::service_chaos_json(&r);
    match std::fs::write(&json_path, doc.to_string_pretty()) {
        Ok(()) => println!("service-chaos: report written to {json_path}"),
        Err(e) => {
            eprintln!("beoracle: cannot write {json_path}: {e}");
            return 1;
        }
    }
    if r.ok() {
        0
    } else {
        1
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let code = match args.first().map(String::as_str) {
        Some("fuzz") => cmd_fuzz(&args[1..]),
        Some("mutate") => cmd_mutate(&args[1..]),
        Some("kernels") => cmd_kernels(&args[1..]),
        Some("chaos") => cmd_chaos(&args[1..]),
        Some("service-chaos") => cmd_service_chaos(&args[1..]),
        _ => {
            eprintln!(
                "usage: beoracle fuzz [--count N] [--seed S] [--threads] [--nprocs 1,3,4] [--repro-dir DIR] [--deadline MS] [--chaos] [--chaos-seed S]\n       beoracle mutate [--count N] [--seed S]\n       beoracle kernels [--threads]\n       beoracle chaos [--chaos-seed S] [--deadline MS] [--nprocs P] [--repro-dir DIR] [--no-recover] [--recovery-json PATH] [--profile] [--degrade] [--degrade-json PATH] [--max-attempts N]\n       beoracle service-chaos [--chaos-seed S] [--rounds N] [--nprocs P] [--json PATH] [--snapshot-dir DIR]"
            );
            2
        }
    };
    std::process::exit(code);
}
