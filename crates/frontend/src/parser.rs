//! Recursive-descent parser lowering source text to the affine IR.

use crate::lexer::{Lexer, Token, TokenKind};
use ir::build::{DistSpec, ProgramBuilder};
use ir::{
    Affine, ArrayId, CmpOp, Expr, GuardCond, LhsRef, LoopId, Program, RedOp, ScalarId, SymId,
};
use std::collections::HashMap;
use std::fmt;

/// A parse error with its source line.
#[derive(Debug)]
pub struct ParseError {
    /// 1-based source line.
    pub line: usize,
    /// Description.
    pub msg: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.msg)
    }
}

impl std::error::Error for ParseError {}

type PResult<T> = Result<T, ParseError>;

/// Parsed-but-untyped expression tree.
#[derive(Clone, Debug)]
enum PExpr {
    Int(i64),
    Float(f64),
    Var(String),
    Call(String, Vec<PExpr>),
    Neg(Box<PExpr>),
    Bin(char, Box<PExpr>, Box<PExpr>),
}

enum OpenKind {
    Loop,
    Guard,
}

struct Parser {
    toks: Vec<Token>,
    pos: usize,
    pb: ProgramBuilder,
    syms: HashMap<String, SymId>,
    scalars: HashMap<String, ScalarId>,
    arrays: HashMap<String, ArrayId>,
    /// Innermost-last stack of (name, id) loop bindings.
    loops: Vec<(String, LoopId)>,
    open: Vec<OpenKind>,
}

/// Parse a whole program.
pub fn parse(src: &str) -> Result<Program, ParseError> {
    let toks = Lexer::new(src).tokenize().map_err(|msg| ParseError {
        line: msg
            .strip_prefix("line ")
            .and_then(|s| s.split(':').next())
            .and_then(|s| s.parse().ok())
            .unwrap_or(0),
        msg,
    })?;
    let mut p = Parser {
        toks,
        pos: 0,
        pb: ProgramBuilder::new("anonymous"),
        syms: HashMap::new(),
        scalars: HashMap::new(),
        arrays: HashMap::new(),
        loops: Vec::new(),
        open: Vec::new(),
    };
    p.program()
}

impl Parser {
    fn peek(&self) -> &Token {
        &self.toks[self.pos]
    }

    fn line(&self) -> usize {
        self.peek().line
    }

    fn err<T>(&self, msg: impl Into<String>) -> PResult<T> {
        Err(ParseError {
            line: self.line(),
            msg: msg.into(),
        })
    }

    fn bump(&mut self) -> Token {
        let t = self.toks[self.pos].clone();
        if self.pos + 1 < self.toks.len() {
            self.pos += 1;
        }
        t
    }

    fn eat(&mut self, kind: &TokenKind) -> bool {
        if &self.peek().kind == kind {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, kind: TokenKind) -> PResult<()> {
        if self.eat(&kind) {
            Ok(())
        } else {
            self.err(format!("expected {kind}, found {}", self.peek().kind))
        }
    }

    fn expect_ident(&mut self) -> PResult<String> {
        match self.peek().kind.clone() {
            TokenKind::Ident(s) => {
                self.bump();
                Ok(s)
            }
            other => self.err(format!("expected identifier, found {other}")),
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if let TokenKind::Ident(s) = &self.peek().kind {
            if s == kw {
                self.bump();
                return true;
            }
        }
        false
    }

    fn end_of_stmt(&mut self) -> PResult<()> {
        if self.eat(&TokenKind::Newline) || self.peek().kind == TokenKind::Eof {
            Ok(())
        } else {
            self.err(format!("expected end of line, found {}", self.peek().kind))
        }
    }

    fn skip_newlines(&mut self) {
        while self.eat(&TokenKind::Newline) {}
    }

    // ------------------------------------------------------------------
    // Top level
    // ------------------------------------------------------------------

    fn program(&mut self) -> PResult<Program> {
        self.skip_newlines();
        if !self.eat_keyword("program") {
            return self.err("program must start with `program <name>`");
        }
        let name = self.expect_ident()?;
        self.pb = ProgramBuilder::new(name);
        self.end_of_stmt()?;

        loop {
            self.skip_newlines();
            if self.peek().kind == TokenKind::Eof {
                break;
            }
            self.statement()?;
        }
        if !self.open.is_empty() {
            return self.err("unterminated `do`/`doall`/`if` (missing `end`)");
        }
        let pb = std::mem::replace(&mut self.pb, ProgramBuilder::new("x"));
        let prog = pb.finish_unchecked();
        let problems = prog.validate();
        if let Some(p) = problems.first() {
            return Err(ParseError {
                line: 0,
                msg: format!("invalid program: {p}"),
            });
        }
        Ok(prog)
    }

    fn statement(&mut self) -> PResult<()> {
        let TokenKind::Ident(word) = self.peek().kind.clone() else {
            return self.err(format!("expected a statement, found {}", self.peek().kind));
        };
        match word.as_str() {
            "sym" => self.sym_decl(),
            "array" => self.array_decl(),
            "scalar" => self.scalar_decl(),
            "do" | "doall" => self.loop_stmt(word == "doall"),
            "if" => self.if_stmt(),
            "end" => {
                self.bump();
                match self.open.pop() {
                    Some(OpenKind::Loop) => {
                        self.loops.pop();
                        self.pb.end();
                    }
                    Some(OpenKind::Guard) => self.pb.end(),
                    None => return self.err("`end` with nothing open"),
                }
                self.end_of_stmt()
            }
            "maxreduce" | "minreduce" => {
                self.bump();
                let op = if word == "maxreduce" {
                    RedOp::Max
                } else {
                    RedOp::Min
                };
                let lhs = self.lhs()?;
                self.expect(TokenKind::Eq)?;
                let rhs = self.value_expr()?;
                self.pb.reduce(lhs, op, rhs);
                self.end_of_stmt()
            }
            _ => self.assign_stmt(),
        }
    }

    fn sym_decl(&mut self) -> PResult<()> {
        self.bump(); // sym
        loop {
            let name = self.expect_ident()?;
            if self.syms.contains_key(&name) {
                return self.err(format!("duplicate sym `{name}`"));
            }
            let id = self.pb.sym(&name);
            self.syms.insert(name, id);
            if !self.eat(&TokenKind::Comma) {
                break;
            }
        }
        self.end_of_stmt()
    }

    fn array_decl(&mut self) -> PResult<()> {
        self.bump(); // array
        let name = self.expect_ident()?;
        if self.arrays.contains_key(&name) {
            return self.err(format!("duplicate array `{name}`"));
        }
        self.expect(TokenKind::LParen)?;
        let mut extents = Vec::new();
        loop {
            let e = self.affine_expr()?;
            extents.push(e);
            if !self.eat(&TokenKind::Comma) {
                break;
            }
        }
        self.expect(TokenKind::RParen)?;
        // Distribution keyword.
        let mut private = false;
        let dist = if self.eat_keyword("block") {
            DistSpec::Block(self.opt_dim()?)
        } else if self.eat_keyword("cyclic") {
            if self.eat(&TokenKind::LParen) {
                let b = self.expect_int()?;
                self.expect(TokenKind::RParen)?;
                DistSpec::BlockCyclic(self.opt_dim()?, b)
            } else {
                DistSpec::Cyclic(self.opt_dim()?)
            }
        } else if self.eat_keyword("repl") {
            DistSpec::Repl
        } else if self.eat_keyword("private") {
            private = true;
            DistSpec::Repl
        } else {
            DistSpec::Repl
        };
        let id = if private {
            self.pb.private_array(&name, &extents)
        } else {
            self.pb.array(&name, &extents, dist)
        };
        self.arrays.insert(name, id);
        self.end_of_stmt()
    }

    fn opt_dim(&mut self) -> PResult<usize> {
        if self.eat(&TokenKind::At) {
            Ok(self.expect_int()? as usize)
        } else {
            Ok(0)
        }
    }

    fn expect_int(&mut self) -> PResult<i64> {
        match self.peek().kind {
            TokenKind::Int(v) => {
                self.bump();
                Ok(v)
            }
            _ => self.err(format!("expected integer, found {}", self.peek().kind)),
        }
    }

    fn scalar_decl(&mut self) -> PResult<()> {
        self.bump(); // scalar
        let name = self.expect_ident()?;
        if self.scalars.contains_key(&name) {
            return self.err(format!("duplicate scalar `{name}`"));
        }
        let init = if self.eat(&TokenKind::Eq) {
            match self.peek().kind {
                TokenKind::Float(v) => {
                    self.bump();
                    v
                }
                TokenKind::Int(v) => {
                    self.bump();
                    v as f64
                }
                TokenKind::Minus => {
                    self.bump();
                    match self.peek().kind {
                        TokenKind::Float(v) => {
                            self.bump();
                            -v
                        }
                        TokenKind::Int(v) => {
                            self.bump();
                            -(v as f64)
                        }
                        _ => return self.err("expected a number after `-`"),
                    }
                }
                _ => return self.err("expected a number initializer"),
            }
        } else {
            0.0
        };
        let private = self.eat_keyword("private");
        let id = if private {
            self.pb.private_scalar(&name, init)
        } else {
            self.pb.scalar(&name, init)
        };
        self.scalars.insert(name, id);
        self.end_of_stmt()
    }

    fn loop_stmt(&mut self, parallel: bool) -> PResult<()> {
        self.bump(); // do / doall
        let var = self.expect_ident()?;
        self.expect(TokenKind::Eq)?;
        let lo = self.affine_expr()?;
        self.expect(TokenKind::Comma)?;
        let hi = self.affine_expr()?;
        self.end_of_stmt()?;
        let id = if parallel {
            self.pb.begin_par(&var, lo, hi)
        } else {
            self.pb.begin_seq(&var, lo, hi)
        };
        self.loops.push((var, id));
        self.open.push(OpenKind::Loop);
        Ok(())
    }

    fn if_stmt(&mut self) -> PResult<()> {
        self.bump(); // if
        let mut conds = Vec::new();
        loop {
            let lhs = self.affine_expr()?;
            let op = match self.peek().kind {
                TokenKind::EqEq => CmpOp::Eq,
                TokenKind::Ge => CmpOp::Ge,
                TokenKind::Le => CmpOp::Le,
                _ => return self.err("expected `==`, `>=`, or `<=` in condition"),
            };
            self.bump();
            let rhs = self.affine_expr()?;
            conds.push(GuardCond {
                expr: lhs - rhs,
                op,
            });
            if !self.eat_keyword("and") {
                break;
            }
        }
        if !self.eat_keyword("then") {
            return self.err("expected `then` after condition");
        }
        self.end_of_stmt()?;
        self.pb.begin_guard(conds);
        self.open.push(OpenKind::Guard);
        Ok(())
    }

    fn lhs(&mut self) -> PResult<LhsRef> {
        let name = self.expect_ident()?;
        if let Some(&arr) = self.arrays.get(&name) {
            self.expect(TokenKind::LParen)?;
            let mut subs = Vec::new();
            loop {
                subs.push(self.affine_expr()?);
                if !self.eat(&TokenKind::Comma) {
                    break;
                }
            }
            self.expect(TokenKind::RParen)?;
            Ok(LhsRef::Elem(arr, subs))
        } else if let Some(&s) = self.scalars.get(&name) {
            Ok(LhsRef::Scalar(s))
        } else {
            self.err(format!("`{name}` is not a declared array or scalar"))
        }
    }

    fn assign_stmt(&mut self) -> PResult<()> {
        let lhs = self.lhs()?;
        if self.eat(&TokenKind::PlusEq) {
            let rhs = self.value_expr()?;
            self.pb.reduce(lhs, RedOp::Add, rhs);
        } else {
            self.expect(TokenKind::Eq)?;
            let rhs = self.value_expr()?;
            self.pb.assign(lhs, rhs);
        }
        self.end_of_stmt()
    }

    // ------------------------------------------------------------------
    // Expressions
    // ------------------------------------------------------------------

    fn pexpr(&mut self) -> PResult<PExpr> {
        self.pexpr_add()
    }

    fn pexpr_add(&mut self) -> PResult<PExpr> {
        let mut e = self.pexpr_mul()?;
        loop {
            if self.eat(&TokenKind::Plus) {
                e = PExpr::Bin('+', Box::new(e), Box::new(self.pexpr_mul()?));
            } else if self.eat(&TokenKind::Minus) {
                e = PExpr::Bin('-', Box::new(e), Box::new(self.pexpr_mul()?));
            } else {
                return Ok(e);
            }
        }
    }

    fn pexpr_mul(&mut self) -> PResult<PExpr> {
        let mut e = self.pexpr_unary()?;
        loop {
            if self.eat(&TokenKind::Star) {
                e = PExpr::Bin('*', Box::new(e), Box::new(self.pexpr_unary()?));
            } else if self.eat(&TokenKind::Slash) {
                e = PExpr::Bin('/', Box::new(e), Box::new(self.pexpr_unary()?));
            } else {
                return Ok(e);
            }
        }
    }

    fn pexpr_unary(&mut self) -> PResult<PExpr> {
        if self.eat(&TokenKind::Minus) {
            return Ok(PExpr::Neg(Box::new(self.pexpr_unary()?)));
        }
        match self.peek().kind.clone() {
            TokenKind::Int(v) => {
                self.bump();
                Ok(PExpr::Int(v))
            }
            TokenKind::Float(v) => {
                self.bump();
                Ok(PExpr::Float(v))
            }
            TokenKind::LParen => {
                self.bump();
                let e = self.pexpr()?;
                self.expect(TokenKind::RParen)?;
                Ok(e)
            }
            TokenKind::Ident(name) => {
                self.bump();
                if self.eat(&TokenKind::LParen) {
                    let mut args = Vec::new();
                    if self.peek().kind != TokenKind::RParen {
                        loop {
                            args.push(self.pexpr()?);
                            if !self.eat(&TokenKind::Comma) {
                                break;
                            }
                        }
                    }
                    self.expect(TokenKind::RParen)?;
                    Ok(PExpr::Call(name, args))
                } else {
                    Ok(PExpr::Var(name))
                }
            }
            other => self.err(format!("expected an expression, found {other}")),
        }
    }

    /// Parse an affine expression (bounds, subscripts, conditions).
    fn affine_expr(&mut self) -> PResult<Affine> {
        let line = self.line();
        let p = self.pexpr()?;
        self.to_affine(&p).map_err(|msg| ParseError { line, msg })
    }

    fn lookup_atom(&self, name: &str) -> Option<Affine> {
        if let Some((_, id)) = self.loops.iter().rev().find(|(n, _)| n == name) {
            return Some(Affine::index(*id));
        }
        self.syms.get(name).map(|&s| Affine::sym(s))
    }

    fn to_affine(&self, p: &PExpr) -> Result<Affine, String> {
        match p {
            PExpr::Int(v) => Ok(Affine::constant(*v)),
            PExpr::Float(_) => Err("float literal in an affine context".into()),
            PExpr::Var(name) => self
                .lookup_atom(name)
                .ok_or_else(|| format!("`{name}` is not a loop index or sym")),
            PExpr::Neg(e) => Ok(-self.to_affine(e)?),
            PExpr::Bin('+', a, b) => Ok(self.to_affine(a)? + self.to_affine(b)?),
            PExpr::Bin('-', a, b) => Ok(self.to_affine(a)? - self.to_affine(b)?),
            PExpr::Bin('*', a, b) => {
                // One side must be an integer constant.
                let ea = self.to_affine(a)?;
                let eb = self.to_affine(b)?;
                if ea.is_constant() {
                    Ok(eb * ea.constant_term())
                } else if eb.is_constant() {
                    Ok(ea * eb.constant_term())
                } else {
                    Err("non-affine product of two variables".into())
                }
            }
            PExpr::Bin('/', ..) => Err("division is not affine".into()),
            PExpr::Bin(op, ..) => Err(format!("operator `{op}` is not affine")),
            PExpr::Call(name, _) => Err(format!("call to `{name}` in an affine context")),
        }
    }

    /// Parse a value (floating-point) expression.
    fn value_expr(&mut self) -> PResult<Expr> {
        let line = self.line();
        let p = self.pexpr()?;
        self.to_value(&p).map_err(|msg| ParseError { line, msg })
    }

    fn to_value(&self, p: &PExpr) -> Result<Expr, String> {
        use ir::{BinOp, UnOp};
        Ok(match p {
            PExpr::Int(v) => Expr::Lit(*v as f64),
            PExpr::Float(v) => Expr::Lit(*v),
            PExpr::Var(name) => {
                if let Some(&s) = self.scalars.get(name) {
                    Expr::Scalar(s)
                } else if let Some(a) = self.lookup_atom(name) {
                    Expr::Idx(a)
                } else {
                    return Err(format!("`{name}` is not declared"));
                }
            }
            PExpr::Neg(e) => Expr::Un(UnOp::Neg, Box::new(self.to_value(e)?)),
            PExpr::Bin(op, a, b) => {
                let bop = match op {
                    '+' => BinOp::Add,
                    '-' => BinOp::Sub,
                    '*' => BinOp::Mul,
                    '/' => BinOp::Div,
                    _ => return Err(format!("unknown operator `{op}`")),
                };
                Expr::Bin(
                    bop,
                    Box::new(self.to_value(a)?),
                    Box::new(self.to_value(b)?),
                )
            }
            PExpr::Call(name, args) => {
                if let Some(&arr) = self.arrays.get(name) {
                    let subs: Result<Vec<Affine>, String> =
                        args.iter().map(|a| self.to_affine(a)).collect();
                    return Ok(Expr::Elem(arr, subs?));
                }
                let un = match name.as_str() {
                    "sqrt" => Some(UnOp::Sqrt),
                    "abs" => Some(UnOp::Abs),
                    "exp" => Some(UnOp::Exp),
                    "sin" => Some(UnOp::Sin),
                    "cos" => Some(UnOp::Cos),
                    _ => None,
                };
                if let Some(u) = un {
                    if args.len() != 1 {
                        return Err(format!("`{name}` takes one argument"));
                    }
                    return Ok(Expr::Un(u, Box::new(self.to_value(&args[0])?)));
                }
                match name.as_str() {
                    "min" | "max" => {
                        if args.len() != 2 {
                            return Err(format!("`{name}` takes two arguments"));
                        }
                        let b = match name.as_str() {
                            "min" => BinOp::Min,
                            _ => BinOp::Max,
                        };
                        Expr::Bin(
                            b,
                            Box::new(self.to_value(&args[0])?),
                            Box::new(self.to_value(&args[1])?),
                        )
                    }
                    _ => return Err(format!("`{name}` is not an array or builtin function")),
                }
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const JACOBI: &str = "
program jacobi
sym n, tmax
array A(n) block
array B(n) block

doall i0 = 0, n-1
  A(i0) = sin(i0)
end

do t = 0, tmax-1
  doall i = 1, n-2
    B(i) = 0.5 * (A(i-1) + A(i+1))
  end
  doall j = 1, n-2
    A(j) = B(j)
  end
end
";

    #[test]
    fn parses_jacobi() {
        let prog = parse(JACOBI).unwrap();
        assert_eq!(prog.name, "jacobi");
        assert_eq!(prog.arrays.len(), 2);
        assert_eq!(prog.parallel_loops().len(), 3);
        assert!(prog.validate().is_empty());
    }

    #[test]
    fn parsed_program_round_trips_through_the_optimizer() {
        let prog = parse(JACOBI).unwrap();
        let n = prog
            .syms
            .iter()
            .position(|s| s.name == "n")
            .map(|k| ir::SymId(k as u32))
            .unwrap();
        let t = ir::SymId(1);
        let bind = analysis::Bindings::new(4).set(n, 64).set(t, 5);
        let plan = spmd_opt_optimize_shim(&prog, &bind);
        assert_eq!(plan, (1, 1));
    }

    // The frontend crate doesn't depend on spmd-opt; integration tests at
    // the workspace root exercise the full pipeline. This shim keeps a
    // semantic check here without the dependency.
    fn spmd_opt_optimize_shim(prog: &Program, bind: &analysis::Bindings) -> (usize, usize) {
        // Use analysis only: the parsed stencil pair must classify as
        // neighbor communication.
        let q = analysis::CommQuery::new(prog, bind.clone());
        let st = prog.all_statements();
        let pat = q.comm_stmts(&st[1], &st[2], analysis::CommMode::LoopIndependent);
        match pat {
            analysis::CommPattern::NoComm => (1, 1),
            analysis::CommPattern::Neighbor { .. } => (1, 1),
            other => panic!("unexpected pattern {other:?}"),
        }
    }

    #[test]
    fn reductions_guards_and_distributions() {
        let src = "
program kitchen
sym n
array A(n, n) cyclic(2)@1
array D(n) private
scalar acc = 0.0
scalar tmp = 1.5 private

do k = 0, n-1
  doall j = 0, n-1
    D(j) = A(k, j)
  end
  doall i = 0, n-1
    if i - k >= 1 then
      acc += D(i) * D(i)
    end
  end
  maxreduce acc = D(k)
end
";
        let prog = parse(src).unwrap();
        assert!(prog.validate().is_empty());
        assert!(prog.arrays[1].privatizable);
        assert!(prog.scalars[1].privatizable);
        assert_eq!(prog.arrays[0].dist.dims[1], ir::DimDist::BlockCyclic(2));
    }

    #[test]
    fn error_reports_line_numbers() {
        let src = "
program bad
sym n
array A(n) block
doall i = 0, n-1
  A(i) = B(i)
end
";
        let e = parse(src).unwrap_err();
        assert_eq!(e.line, 6, "{e}");
        assert!(e.msg.contains("B"), "{e}");
    }

    #[test]
    fn non_affine_subscript_rejected() {
        let src = "
program bad2
sym n
array A(n) block
doall i = 0, n-1
  A(i * i) = 1.0
end
";
        let e = parse(src).unwrap_err();
        assert!(e.msg.contains("non-affine"), "{e}");
    }

    #[test]
    fn unbalanced_end_rejected() {
        let e = parse("\nprogram p\nsym n\nend\n").unwrap_err();
        assert!(e.msg.contains("nothing open"), "{e}");
        let e2 = parse("\nprogram p\nsym n\ndo i = 0, n\n").unwrap_err();
        assert!(e2.msg.contains("unterminated"), "{e2}");
    }
}
