//! Service-plane fault injection hooks.
//!
//! The execution-plane chaos harness (`oracle::chaos`) perturbs sync
//! primitives *inside* a running plan; this module is its service-plane
//! counterpart: faults aimed at the compile service itself — shard
//! crashes mid-request, corrupted snapshots, delayed or dropped
//! connections. `served` defines only the hook points; the seeded
//! deterministic injector lives in `oracle` (which depends on this
//! crate), keeping the dependency graph acyclic.
//!
//! Hooks fire at three points, each identified by deterministic
//! coordinates so a seeded injector reproduces the same fault schedule
//! on every run:
//!
//! * `at_request(shard, seq)` — just before shard `shard` compiles its
//!   `seq`-th admitted request.
//! * `at_snapshot(shard, snap_seq)` — just before shard `shard` writes
//!   its `snap_seq`-th snapshot.
//! * `at_transport(seq)` — when the listener admits its `seq`-th
//!   optimize request, before it is queued.

use std::time::Duration;

/// A fault the injector may demand at a hook point.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ServiceFault {
    /// Kill the owning shard's worker thread (panic mid-request). The
    /// supervisor must restart it and rejoin from the last snapshot.
    KillShard,
    /// Stall for the given duration before proceeding (exercises
    /// deadlines and queue backpressure).
    Delay(Duration),
    /// Drop the client connection without a reply (client must retry).
    DropConnection,
    /// Corrupt the snapshot file after it is written (the next load
    /// must reject it and cold-start).
    CorruptSnapshot,
}

/// A deterministic service-plane fault schedule. All methods default
/// to "no fault": implementors override only the hooks they target.
pub trait ServiceChaos: Send + Sync {
    /// Fault before shard `shard` compiles its `seq`-th request.
    fn at_request(&self, shard: usize, seq: u64) -> Option<ServiceFault> {
        let _ = (shard, seq);
        None
    }

    /// Fault around shard `shard`'s `snap_seq`-th snapshot write.
    fn at_snapshot(&self, shard: usize, snap_seq: u64) -> Option<ServiceFault> {
        let _ = (shard, snap_seq);
        None
    }

    /// Fault when the listener admits its `seq`-th optimize request.
    fn at_transport(&self, seq: u64) -> Option<ServiceFault> {
        let _ = seq;
        None
    }
}

/// The quiet schedule: no faults anywhere.
pub struct NoChaos;

impl ServiceChaos for NoChaos {}
