//! Criterion benches for the optimizer itself: how long the greedy
//! elimination takes per kernel (the paper notes its incremental greedy
//! algorithm is cheaper than all-pairs approaches).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use suite::Scale;

fn bench_optimize(c: &mut Criterion) {
    let mut group = c.benchmark_group("optimize");
    for name in ["jacobi2d", "shallow", "lu", "tred2", "adi"] {
        let def = suite::by_name(name).unwrap();
        let built = (def.build)(Scale::Small);
        let bind = built.bindings(8);
        group.bench_with_input(BenchmarkId::from_parameter(name), &name, |b, _| {
            b.iter(|| spmd_opt::optimize(&built.prog, &bind))
        });
    }
    group.finish();
}

fn bench_dependence_check(c: &mut Criterion) {
    let def = suite::by_name("shallow").unwrap();
    let built = (def.build)(Scale::Small);
    let bind = built.bindings(8);
    c.bench_function("check_parallel_loops_shallow", |b| {
        b.iter(|| analysis::check_parallel_loops(&built.prog, &bind))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_optimize, bench_dependence_check
}
criterion_main!(benches);
