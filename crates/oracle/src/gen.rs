//! Seeded random generator of IR programs with cross-processor
//! dependences.
//!
//! Every generated program is a *valid* input to the optimizer: `DOALL`
//! loops carry no loop-level dependence (the generator never writes and
//! reads the same array at misaligned subscripts inside one parallel
//! loop), and all subscripts and guards are affine. Programs
//! self-initialize — their first phases fill every array they later
//! read — so no external setup is needed before execution.
//!
//! Six shapes cover the synchronization patterns the optimizer handles:
//! aligned chains (barrier elimination), stencils (neighbor flags),
//! row-sequential sweeps (pipelining), pivot/master broadcasts (counter
//! synchronization), privatizable work storage (replicated phases), and
//! guarded serial code. Shape and parameters are drawn from a
//! `xoshiro`-seeded RNG, so `generate(seed)` is reproducible across
//! runs and platforms.

use ir::build::*;
use ir::{Program, RedOp, SymId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The structural family of a generated program.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Shape {
    /// Chain of aligned parallel loops (all interior barriers
    /// eliminable), optionally capped by a max-reduction.
    AlignedChain,
    /// Jacobi-style stencil time sweep (neighbor-flag territory).
    Stencil,
    /// Row-sequential Gauss-Seidel sweep (wavefront pipeline).
    Pipeline,
    /// Pivot-normalization update with a unique producer per step
    /// (counter synchronization), plus guarded serial-ish code.
    Broadcast,
    /// Per-step gather into a work vector (privatizable → replicated).
    PrivateGather,
    /// Master-written scalar consumed by distributed loops, with a
    /// guarded serial statement in the time loop.
    GuardedSerial,
}

const SHAPES: [Shape; 6] = [
    Shape::AlignedChain,
    Shape::Stencil,
    Shape::Pipeline,
    Shape::Broadcast,
    Shape::PrivateGather,
    Shape::GuardedSerial,
];

/// A generated program plus the concrete sizes it was built for.
pub struct GenProgram {
    /// The program.
    pub prog: Program,
    /// Concrete values for each symbolic constant.
    pub values: Vec<(SymId, i64)>,
    /// The seed it was generated from.
    pub seed: u64,
    /// The structural family.
    pub shape: Shape,
}

impl GenProgram {
    /// Bindings for `nprocs` processors with this program's sizes.
    pub fn bindings(&self, nprocs: i64) -> analysis::Bindings {
        let mut b = analysis::Bindings::new(nprocs);
        for &(s, v) in &self.values {
            b.bind(s, v);
        }
        b
    }
}

/// Small random coefficient in `(0, 2]` with an exact binary
/// representation (keeps arithmetic reproducible across evaluation
/// orders that don't reassociate).
fn coeff(rng: &mut StdRng) -> f64 {
    rng.gen_range(1..=16) as f64 * 0.125
}

/// Generate one program from a seed.
pub fn generate(seed: u64) -> GenProgram {
    let mut rng = StdRng::seed_from_u64(seed);
    let shape = SHAPES[rng.gen_range(0..SHAPES.len())];
    let (prog, values) = match shape {
        Shape::AlignedChain => aligned_chain(&mut rng),
        Shape::Stencil => stencil(&mut rng),
        Shape::Pipeline => pipeline(&mut rng),
        Shape::Broadcast => broadcast(&mut rng),
        Shape::PrivateGather => private_gather(&mut rng),
        Shape::GuardedSerial => guarded_serial(&mut rng),
    };
    GenProgram {
        prog,
        values,
        seed,
        shape,
    }
}

/// Chain of `k` aligned parallel loops over block- or cyclic-
/// distributed arrays; every loop reads the previous arrays at the same
/// subscript it writes, so all interior barriers are eliminable. A
/// max-reduction tail (order-independent, hence exact under any
/// interleaving) is appended half the time.
fn aligned_chain(rng: &mut StdRng) -> (Program, Vec<(SymId, i64)>) {
    let nv = rng.gen_range(16..=40);
    let k = rng.gen_range(2..=4usize);
    let cyclic = rng.gen_bool(0.3);
    let mut pb = ProgramBuilder::new("gen_aligned_chain");
    let n = pb.sym("n");
    let dist = || if cyclic { dist_cyclic() } else { dist_block() };
    let arrays: Vec<_> = (0..=k)
        .map(|j| pb.array(format!("A{j}"), &[sym(n)], dist()))
        .collect();

    let c0 = rng.gen_range(1..=5);
    let i0 = pb.begin_par("i0", con(0), sym(n) - 1);
    pb.assign(elem(arrays[0], [idx(i0)]), ival(idx(i0) * c0 + 1).sin());
    pb.end();

    for j in 1..=k {
        let i = pb.begin_par(&format!("i{j}"), con(0), sym(n) - 1);
        let mut rhs = ex(coeff(rng)) * arr(arrays[j - 1], [idx(i)]);
        if j >= 2 && rng.gen_bool(0.5) {
            rhs = rhs + ex(coeff(rng)) * arr(arrays[j - 2], [idx(i)]);
        }
        pb.assign(elem(arrays[j], [idx(i)]), rhs);
        pb.end();
    }

    if rng.gen_bool(0.5) {
        let s = pb.scalar("m", 0.0);
        let i = pb.begin_par("ired", con(0), sym(n) - 1);
        pb.reduce(svar(s), RedOp::Max, arr(arrays[k], [idx(i)]));
        pb.end();
    }
    (pb.finish(), vec![(n, nv)])
}

/// Jacobi stencil with a random radius: a time loop around a relax
/// phase reading `A` at `i ± d` into `B`, and a copy-back phase. The
/// carried cross-block dependences make neighbor flags (block
/// distribution) or barriers (cyclic) necessary between phases.
fn stencil(rng: &mut StdRng) -> (Program, Vec<(SymId, i64)>) {
    let nv = rng.gen_range(16..=40);
    let tv = rng.gen_range(2..=4);
    let d = rng.gen_range(1..=2i64);
    let cyclic = rng.gen_bool(0.25);
    let mut pb = ProgramBuilder::new("gen_stencil");
    let n = pb.sym("n");
    let t = pb.sym("tmax");
    let dist = || if cyclic { dist_cyclic() } else { dist_block() };
    let a = pb.array("A", &[sym(n)], dist());
    let b = pb.array("B", &[sym(n)], dist());

    let c0 = rng.gen_range(1..=7);
    let i0 = pb.begin_par("i0", con(0), sym(n) - 1);
    pb.assign(elem(a, [idx(i0)]), ival(idx(i0) * c0 + 2).sin());
    pb.end();

    let (cl, cr, cc) = (coeff(rng), coeff(rng), coeff(rng));
    let _tl = pb.begin_seq("t", con(0), sym(t) - 1);
    let i = pb.begin_par("i", con(d), sym(n) - 1 - d);
    let mut rhs = ex(cl) * arr(a, [idx(i) - d]) + ex(cr) * arr(a, [idx(i) + d]);
    if rng.gen_bool(0.5) {
        rhs = rhs + ex(cc) * arr(a, [idx(i)]);
    }
    pb.assign(elem(b, [idx(i)]), rhs);
    pb.end();
    let j = pb.begin_par("j", con(d), sym(n) - 1 - d);
    pb.assign(elem(a, [idx(j)]), ex(coeff(rng)) * arr(b, [idx(j)]));
    pb.end();
    pb.end(); // t
    (pb.finish(), vec![(n, nv), (t, tv)])
}

/// Gauss-Seidel-style sweep: rows updated sequentially, columns in
/// parallel — each row phase belongs to one block owner, and the time
/// loop pipelines across processors with neighbor flags.
fn pipeline(rng: &mut StdRng) -> (Program, Vec<(SymId, i64)>) {
    let nv = rng.gen_range(8..=14);
    let tv = rng.gen_range(2..=3);
    let mut pb = ProgramBuilder::new("gen_pipeline");
    let n = pb.sym("n");
    let t = pb.sym("tmax");
    let x = pb.array("X", &[sym(n), sym(n)], dist_block());

    let c0 = rng.gen_range(1..=23);
    let i0 = pb.begin_par("i0", con(0), sym(n) - 1);
    let j0 = pb.begin_seq("j0", con(0), sym(n) - 1);
    pb.assign(
        elem(x, [idx(i0), idx(j0)]),
        ival(idx(i0) * c0 + idx(j0)).sin(),
    );
    pb.end();
    pb.end();

    let (cu, cd, cs) = (coeff(rng), coeff(rng), coeff(rng));
    let _tl = pb.begin_seq("t", con(0), sym(t) - 1);
    let i = pb.begin_seq("i", con(1), sym(n) - 2);
    let j = pb.begin_par("j", con(1), sym(n) - 2);
    pb.assign(
        elem(x, [idx(i), idx(j)]),
        ex(0.25)
            * (ex(cu) * arr(x, [idx(i) - 1, idx(j)])
                + ex(cd) * arr(x, [idx(i) + 1, idx(j)])
                + ex(cs) * arr(x, [idx(i), idx(j)])),
    );
    pb.end();
    pb.end();
    pb.end(); // t
    (pb.finish(), vec![(n, nv), (t, tv)])
}

/// LU-style pivot broadcast: at step `k` the owner of column `k`
/// normalizes it against the pivot `A(k,k)` and every processor's
/// update phase consumes it — a unique producer per step, the counter-
/// synchronization pattern. The diagonal is made dominant at
/// initialization so the divisions stay well-conditioned.
fn broadcast(rng: &mut StdRng) -> (Program, Vec<(SymId, i64)>) {
    let nv = rng.gen_range(8..=12);
    let mut pb = ProgramBuilder::new("gen_broadcast");
    let n = pb.sym("n");
    let a = pb.array("A", &[sym(n), sym(n)], dist_cyclic());

    let c0 = rng.gen_range(1..=4);
    let diag = 8.0 + coeff(rng);
    let i0 = pb.begin_par("i0", con(0), sym(n) - 1);
    let j0 = pb.begin_seq("j0", con(0), sym(n) - 1);
    pb.assign(
        elem(a, [idx(i0), idx(j0)]),
        ex(0.25) * ival(idx(i0) + idx(j0) * c0).sin(),
    );
    pb.begin_guard(vec![eq0(idx(i0) - idx(j0))]);
    pb.assign(elem(a, [idx(i0), idx(j0)]), ex(diag) + ival(idx(i0)).sin());
    pb.end();
    pb.end();
    pb.end();

    let k = pb.begin_seq("k", con(0), sym(n) - 2);
    let i1 = pb.begin_par("i1", con(1), sym(n) - 1);
    pb.begin_guard(vec![ge0(idx(i1) - idx(k) - 1)]);
    pb.assign(
        elem(a, [idx(i1), idx(k)]),
        arr(a, [idx(i1), idx(k)]) / arr(a, [idx(k), idx(k)]),
    );
    pb.end();
    pb.end();
    let j2 = pb.begin_par("j2", con(1), sym(n) - 1);
    let i2 = pb.begin_seq("i2", con(1), sym(n) - 1);
    pb.begin_guard(vec![ge0(idx(j2) - idx(k) - 1), ge0(idx(i2) - idx(k) - 1)]);
    pb.assign(
        elem(a, [idx(i2), idx(j2)]),
        arr(a, [idx(i2), idx(j2)]) - arr(a, [idx(i2), idx(k)]) * arr(a, [idx(k), idx(j2)]),
    );
    pb.end();
    pb.end();
    pb.end();
    pb.end(); // k
    (pb.finish(), vec![(n, nv)])
}

/// Per-step gather into a work vector followed by a guarded rank-1-ish
/// update. The vector is privatizable (gather replicated, barrier
/// disappears) or shared replicated (barrier stays) at random — both
/// are valid programs with very different schedules.
fn private_gather(rng: &mut StdRng) -> (Program, Vec<(SymId, i64)>) {
    let nv = rng.gen_range(10..=16);
    let private = rng.gen_bool(0.6);
    let mut pb = ProgramBuilder::new("gen_private_gather");
    let n = pb.sym("n");
    let a = pb.array("A", &[sym(n), sym(n)], dist_block());
    let d = if private {
        pb.private_array("D", &[sym(n)])
    } else {
        pb.array("D", &[sym(n)], dist_repl())
    };

    let c0 = rng.gen_range(1..=5);
    let i0 = pb.begin_par("i0", con(0), sym(n) - 1);
    let j0 = pb.begin_seq("j0", con(0), sym(n) - 1);
    pb.assign(
        elem(a, [idx(i0), idx(j0)]),
        ival(idx(i0) * c0 + idx(j0)).sin(),
    );
    pb.end();
    pb.end();

    let (cg, cu, cv) = (coeff(rng), coeff(rng), 0.0625 * coeff(rng));
    let k = pb.begin_seq("k", con(0), sym(n) - 2);
    let j1 = pb.begin_par("j1", con(0), sym(n) - 1);
    pb.assign(elem(d, [idx(j1)]), arr(a, [idx(k), idx(j1)]) * ex(cg));
    pb.end();
    let i2 = pb.begin_par("i2", con(0), sym(n) - 1);
    let j2 = pb.begin_seq("j2", con(0), sym(n) - 1);
    pb.begin_guard(vec![ge0(idx(i2) - idx(k) - 1)]);
    pb.assign(
        elem(a, [idx(i2), idx(j2)]),
        arr(a, [idx(i2), idx(j2)]) * ex(cu) + arr(d, [idx(i2)]) * arr(d, [idx(j2)]) * ex(cv),
    );
    pb.end();
    pb.end();
    pb.end();
    pb.end(); // k
    (pb.finish(), vec![(n, nv)])
}

/// Master-written scalar consumed by a distributed loop inside a time
/// loop, plus a guarded serial statement poking one array cell at a
/// specific step: serial code, broadcast of a scalar, and a
/// read-back dependence from the parallel phases into the master.
fn guarded_serial(rng: &mut StdRng) -> (Program, Vec<(SymId, i64)>) {
    let nv = rng.gen_range(12..=32);
    let mv = rng.gen_range(2..=4);
    let mut pb = ProgramBuilder::new("gen_guarded_serial");
    let n = pb.sym("n");
    let m = pb.sym("m");
    let a = pb.array("A", &[sym(n)], dist_block());
    let b = pb.array("B", &[sym(n)], dist_block());
    let s = pb.scalar("s", 0.0);

    let c0 = rng.gen_range(1..=6);
    let i0 = pb.begin_par("i0", con(0), sym(n) - 1);
    pb.assign(elem(a, [idx(i0)]), ival(idx(i0) * c0 + 3).sin());
    pb.assign(elem(b, [idx(i0)]), ival(idx(i0) + 1).sin());
    pb.end();

    let (cb, cs2) = (coeff(rng), coeff(rng));
    let poke = rng.gen_range(0..mv);
    let k = pb.begin_seq("k", con(0), sym(m) - 1);
    // Master reads the front of A (written by the previous step's
    // parallel phase) into the broadcast scalar.
    pb.assign(svar(s), arr(a, [con(0)]) * ex(coeff(rng)));
    // Guarded serial statement: at one specific step the master also
    // patches a cell of B directly.
    pb.begin_guard(vec![eq0(idx(k) - poke)]);
    pb.assign(elem(b, [con(1)]), ex(2.0) + sca(s));
    pb.end();
    let i = pb.begin_par("i", con(0), sym(n) - 1);
    pb.assign(
        elem(b, [idx(i)]),
        arr(b, [idx(i)]) * ex(cb) + sca(s) * arr(a, [idx(i)]) * ex(0.125),
    );
    pb.end();
    let j = pb.begin_par("j", con(0), sym(n) - 1);
    pb.assign(elem(a, [idx(j)]), arr(b, [idx(j)]) * ex(cs2));
    pb.end();
    pb.end(); // k
    (pb.finish(), vec![(n, nv), (m, mv)])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        for seed in [0u64, 1, 17, 123456] {
            let a = generate(seed);
            let b = generate(seed);
            assert_eq!(a.shape, b.shape);
            assert_eq!(a.values, b.values);
            assert_eq!(format!("{:?}", a.prog.body), format!("{:?}", b.prog.body));
        }
    }

    #[test]
    fn all_shapes_appear_within_a_small_seed_range() {
        let mut seen = std::collections::HashSet::new();
        for seed in 0..64 {
            seen.insert(generate(seed).shape);
        }
        assert_eq!(seen.len(), SHAPES.len(), "seen {seen:?}");
    }

    #[test]
    fn generated_doalls_carry_no_dependence() {
        for seed in 0..40 {
            let g = generate(seed);
            for p in [1, 3, 4] {
                let bind = g.bindings(p);
                let bad = analysis::check_parallel_loops(&g.prog, &bind);
                assert!(
                    bad.is_empty(),
                    "seed {seed} shape {:?}: dependent DOALLs {bad:?}",
                    g.shape
                );
            }
        }
    }
}
