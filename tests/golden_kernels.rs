//! Golden-file tests for the `.be` kernels: parse each shipped kernel,
//! build the fork-join and optimized schedules, and snapshot their
//! static sync points and dynamic sync counts at several processor
//! counts. Any optimizer change that shifts what gets eliminated (or
//! what synchronization replaces it) shows up as a golden diff.
//!
//! Regenerate with `UPDATE_GOLDEN=1 cargo test --test golden_kernels`.

use barrier_elim::analysis::Bindings;
use barrier_elim::frontend;
use barrier_elim::interp::{run_virtual, Mem, ScheduleOrder};
use barrier_elim::ir::SymId;
use barrier_elim::spmd_opt::{fork_join, optimize};
use std::fmt::Write as _;

fn bind_by_name(prog: &barrier_elim::ir::Program, nprocs: i64, sets: &[(&str, i64)]) -> Bindings {
    let mut b = Bindings::new(nprocs);
    for (name, v) in sets {
        let pos = prog
            .syms
            .iter()
            .position(|s| &s.name == name)
            .unwrap_or_else(|| panic!("sym {name} missing"));
        b.bind(SymId(pos as u32), *v);
    }
    b
}

fn render(kernel: &str, sets: &[(&str, i64)]) -> String {
    let src = std::fs::read_to_string(format!("kernels/{kernel}")).unwrap();
    let prog = frontend::parse(&src).unwrap_or_else(|e| panic!("{kernel}: {e}"));
    let params: Vec<String> = sets.iter().map(|(k, v)| format!("{k}={v}")).collect();
    let mut out = format!("kernel {kernel} ({})\n", params.join(", "));
    for nprocs in [2i64, 4, 8] {
        let bind = bind_by_name(&prog, nprocs, sets);
        writeln!(out, "P={nprocs}").unwrap();
        for (label, plan) in [
            ("fork-join", fork_join(&prog, &bind)),
            ("optimized", optimize(&prog, &bind)),
        ] {
            let st = plan.static_stats();
            let mem = Mem::new(&prog, &bind);
            let dy = run_virtual(&prog, &bind, &plan, &mem, ScheduleOrder::RoundRobin).counts;
            writeln!(
                out,
                "  {label:9} static : regions={} phases={} barriers={} neighbors={} counters={} eliminated={}",
                st.regions, st.phases, st.barriers, st.neighbor_syncs, st.counter_syncs, st.eliminated
            )
            .unwrap();
            writeln!(
                out,
                "  {label:9} dynamic: dispatches={} barriers={} counter_incs={} counter_waits={} posts={} waits={}",
                dy.dispatches, dy.barriers, dy.counter_increments, dy.counter_waits,
                dy.neighbor_posts, dy.neighbor_waits
            )
            .unwrap();
        }
    }
    out
}

fn check_golden(kernel: &str, sets: &[(&str, i64)]) {
    let actual = render(kernel, sets);
    let path = format!("tests/golden/{}.golden", kernel.trim_end_matches(".be"));
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::create_dir_all("tests/golden").unwrap();
        std::fs::write(&path, &actual).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("{path}: {e} (run with UPDATE_GOLDEN=1 to create)"));
    assert_eq!(
        actual, expected,
        "{kernel}: sync counts drifted from {path}; rerun with UPDATE_GOLDEN=1 if intended"
    );
}

#[test]
fn jacobi_golden() {
    check_golden("jacobi.be", &[("n", 48), ("tmax", 4)]);
}

#[test]
fn pipeline_golden() {
    check_golden("pipeline.be", &[("n", 16), ("tmax", 3)]);
}

#[test]
fn broadcast_golden() {
    check_golden("broadcast.be", &[("n", 12)]);
}

#[test]
fn shallow_golden() {
    check_golden("shallow.be", &[("n", 12), ("tmax", 2)]);
}

#[test]
fn private_gather_golden() {
    check_golden("private_gather.be", &[("n", 10)]);
}
